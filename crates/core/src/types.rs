//! Shared vocabulary of the decision loop: scenarios, plans, measurements,
//! records, and the [`ResourceManager`] contract.
//!
//! These types are the interface between three worlds — the simulated server
//! in [`crate::testbed`], the decision pipeline in [`crate::pipeline`], and
//! the experiment harness in the `bench` crate — so they live in their own
//! module with no dependency on any of them.

use serde::Serialize;
use simulator::power::CoreKind;
use simulator::{CacheAlloc, Chip, CoreConfig, JobConfig, SystemParams};
use workloads::batch::{self, SpecMix};
use workloads::latency::LcService;
use workloads::loadgen::LoadPattern;

use crate::telemetry::StageTelemetry;

/// Number of batch applications in the standard co-location.
pub const BATCH_JOBS: usize = 16;

/// The default decision quantum in milliseconds (§IV-B).
pub const TIMESLICE_MS: f64 = 100.0;

/// A complete experiment configuration.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Chip parameters (Table I).
    pub params: SystemParams,
    /// Core kind: reconfigurable for CuttleSys/Flicker, fixed for the
    /// gating/asymmetric/no-gating baselines.
    pub kind: CoreKind,
    /// The latency-critical service (JobId 0).
    pub service: LcService,
    /// The batch mix (JobIds 1..=16).
    pub mix: SpecMix,
    /// Input load of the service over time, as a fraction of its max QPS.
    pub load: LoadPattern,
    /// Power cap over time, as a fraction of the nominal budget.
    pub cap: LoadPattern,
    /// Number of 100 ms timeslices to simulate.
    pub duration_slices: usize,
    /// Relative standard deviation of measurement noise.
    pub noise: f64,
    /// Whether applications drift through execution phases.
    pub phases: bool,
    /// Cores initially assigned to the latency-critical service (§VII-A:
    /// 50 % of the chip).
    pub lc_cores: usize,
    /// Master seed.
    pub seed: u64,
}

impl Scenario {
    /// The paper's standard setup: 32 cores, 50/50 split, Xapian at 80 %
    /// load with mix 0, a 70 % power cap, one second of simulated time.
    pub fn paper_default() -> Scenario {
        Scenario {
            params: SystemParams::default(),
            kind: CoreKind::Reconfigurable,
            service: workloads::latency::service_by_name("xapian").expect("xapian exists"),
            mix: batch::mix(BATCH_JOBS, 0xC0FFEE),
            load: LoadPattern::Constant(0.8),
            cap: LoadPattern::Constant(0.7),
            duration_slices: 10,
            noise: 0.03,
            phases: true,
            lc_cores: 16,
            seed: 7,
        }
    }

    /// A fast, small configuration for doc examples and smoke tests.
    pub fn quick_demo() -> Scenario {
        Scenario {
            duration_slices: 3,
            ..Scenario::paper_default()
        }
    }

    /// Nominal (100 %) power budget in Watts: the §VII-A definition —
    /// average per-core power across all jobs on reconfigurable cores,
    /// scaled to the full chip. Identical across core kinds so every design
    /// is compared at the same Wattage.
    pub fn nominal_budget_watts(&self) -> f64 {
        let reconf = Chip::new(self.params, CoreKind::Reconfigurable);
        let mut profiles = self.mix.profiles();
        profiles.push(self.service.profile);
        reconf.nominal_power_budget(&profiles).get()
    }

    /// Number of batch jobs in the mix.
    pub fn num_batch(&self) -> usize {
        self.mix.apps.len()
    }
}

/// What a batch job does during a timeslice.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub enum BatchAction {
    /// Run on one core at this configuration.
    Run(JobConfig),
    /// The job's core is power-gated; it executes nothing.
    Gated,
}

impl BatchAction {
    /// The configuration, if running.
    pub fn config(&self) -> Option<JobConfig> {
        match self {
            BatchAction::Run(c) => Some(*c),
            BatchAction::Gated => None,
        }
    }
}

/// A steady-state plan for one timeslice.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Plan {
    /// Cores assigned to the latency-critical service.
    pub lc_cores: usize,
    /// Configuration of every LC core.
    pub lc_config: JobConfig,
    /// Action for each batch job.
    pub batch: Vec<BatchAction>,
}

impl Plan {
    /// All cores at the widest configuration with one LLC way — the
    /// no-gating reference.
    pub fn all_widest(lc_cores: usize, num_batch: usize) -> Plan {
        Plan {
            lc_cores,
            lc_config: JobConfig::new(CoreConfig::widest(), CacheAlloc::Four),
            batch: vec![BatchAction::Run(JobConfig::profiling_high()); num_batch],
        }
    }

    /// Total LLC ways this plan allocates.
    pub fn total_ways(&self) -> f64 {
        self.lc_config.cache.ways()
            + self
                .batch
                .iter()
                .filter_map(|a| a.config())
                .map(|c| c.cache.ways())
                .sum::<f64>()
    }
}

/// A profiling frame request: per-core LC configurations (so halves can be
/// split across the widest/narrowest extremes) plus per-job batch actions.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ProfilePlan {
    /// Cores assigned to the LC service.
    pub lc_cores: usize,
    /// Configuration of each LC core (length `lc_cores`).
    pub lc_configs: Vec<JobConfig>,
    /// Action for each batch job.
    pub batch: Vec<BatchAction>,
}

/// One measured sample: a job observed at a configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct SamplePoint {
    /// Job index: 0 is the LC service, `1..=num_batch` are batch jobs.
    pub job: usize,
    /// The configuration the job (or a subset of its cores) ran in.
    pub config: JobConfig,
    /// Measured per-core throughput (BIPS), with measurement noise.
    pub bips: f64,
    /// Measured per-core power (W), with measurement noise.
    pub watts: f64,
}

/// Measurements returned by a profiling frame.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ProfileSample {
    /// Frame duration in milliseconds.
    pub duration_ms: f64,
    /// Per-(job, config) samples.
    pub samples: Vec<SamplePoint>,
    /// Noisy estimate of the LC tail latency under this frame's regime —
    /// what a 10 ms Flicker profiling period would measure (ms).
    pub lc_tail_ms: f64,
}

/// Static facts a manager sees at the start of a timeslice.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct SliceInfo {
    /// Timeslice index.
    pub slice: usize,
    /// Measured arrival rate as a fraction of the service's calibrated
    /// maximum QPS — directly observable from request counters in a real
    /// deployment.
    pub load: f64,
    /// Power cap for this slice, in Watts.
    pub cap_watts: f64,
    /// Total cores on the chip.
    pub num_cores: usize,
    /// Number of batch jobs.
    pub num_batch: usize,
    /// The LC service's QoS target (ms).
    pub qos_ms: f64,
    /// Measured 99th-percentile latency of the previous slice, if any.
    pub last_tail_ms: Option<f64>,
    /// Cores the LC service held in the previous slice.
    pub last_lc_cores: usize,
}

/// Steady-state measurements a manager receives after its plan ran.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct SliceOutcome {
    /// The plan that ran.
    pub plan: Plan,
    /// Noisy per-core throughput of each job (index 0 = LC).
    pub measured_bips: Vec<f64>,
    /// Noisy per-core power of each job.
    pub measured_watts: Vec<f64>,
    /// Measured 99th-percentile latency over the whole slice (ms).
    pub tail_ms: f64,
}

/// A resource manager under test.
pub trait ResourceManager {
    /// Human-readable scheme name for reports.
    fn name(&self) -> String;

    /// Decides the steady-state plan for this timeslice. `probe` runs a
    /// profiling frame and returns its measurements; every probe consumes
    /// its duration from the slice.
    fn plan(
        &mut self,
        info: &SliceInfo,
        probe: &mut dyn FnMut(&ProfilePlan, f64) -> ProfileSample,
    ) -> Plan;

    /// Observes the steady-state outcome (default: ignore).
    fn observe(&mut self, _outcome: &SliceOutcome) {}

    /// Yields the instrumentation record of the most recent [`plan`] call,
    /// if the manager collects one (default: none). The testbed stores it in
    /// the slice's [`SliceRecord::telemetry`].
    ///
    /// [`plan`]: ResourceManager::plan
    fn take_telemetry(&mut self) -> Option<StageTelemetry> {
        None
    }
}

/// Ground-truth record of one timeslice.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct SliceRecord {
    /// Slice start time in seconds.
    pub t_s: f64,
    /// Input load fraction during the slice.
    pub load: f64,
    /// Power cap (W).
    pub cap_watts: f64,
    /// Time-weighted average chip power over the slice (W).
    pub chip_watts: f64,
    /// Whether average power exceeded the cap.
    pub power_violation: bool,
    /// True 99th-percentile latency over the slice (ms), before noise.
    pub tail_ms: f64,
    /// Whether the tail violated the service's QoS.
    pub qos_violation: bool,
    /// Instructions executed by batch jobs during the slice.
    pub batch_instructions: f64,
    /// Instructions executed by all jobs during the slice.
    pub total_instructions: f64,
    /// Per-job instructions (index 0 = LC).
    pub per_job_instructions: Vec<f64>,
    /// Cores held by the LC service.
    pub lc_cores: usize,
    /// The LC configuration of the steady phase.
    pub lc_config: JobConfig,
    /// Steady-phase batch configurations (`None` = gated).
    pub batch_configs: Vec<Option<JobConfig>>,
    /// Geometric mean of running batch jobs' throughput (BIPS).
    pub batch_gmean_bips: f64,
    /// Per-stage instrumentation of the decision that produced this slice's
    /// plan, when the manager collects it (CuttleSys does; see
    /// [`StageTelemetry`]).
    pub telemetry: Option<StageTelemetry>,
}

/// A completed scenario run.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct RunRecord {
    /// The manager's name.
    pub scheme: String,
    /// Per-slice records.
    pub slices: Vec<SliceRecord>,
}

impl RunRecord {
    /// Total instructions executed by batch jobs across the run — the
    /// paper's comparison metric (§VII-B).
    pub fn batch_instructions(&self) -> f64 {
        self.slices.iter().map(|s| s.batch_instructions).sum()
    }

    /// Number of slices whose tail latency violated QoS.
    pub fn qos_violations(&self) -> usize {
        self.slices.iter().filter(|s| s.qos_violation).count()
    }

    /// Number of slices whose average power exceeded the cap.
    pub fn power_violations(&self) -> usize {
        self.slices.iter().filter(|s| s.power_violation).count()
    }

    /// Worst tail-latency-to-QoS ratio across the run.
    pub fn worst_tail_ratio(&self, qos_ms: f64) -> f64 {
        self.slices
            .iter()
            .map(|s| s.tail_ms / qos_ms)
            .fold(0.0, f64::max)
    }

    /// Per-stage telemetry aggregated over the slices that carry it
    /// (`None` when no slice does — e.g. baseline managers).
    pub fn stage_summary(&self) -> Option<crate::telemetry::TelemetrySummary> {
        crate::telemetry::TelemetrySummary::over(
            self.slices.iter().filter_map(|s| s.telemetry.as_ref()),
        )
    }
}
