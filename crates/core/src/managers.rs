//! Baseline resource managers as [`ResourceManager`] implementations.
//!
//! These wrap the pure decision algorithms of the `baselines` crate in the
//! testbed's timeslice protocol:
//!
//! * [`NoGatingManager`] — every core at the widest configuration,
//!   ignoring the power cap: the normalization reference of Fig. 5(c).
//! * [`CoreGatingManager`] — core-level gating with the four victim
//!   orderings, with or without UCP way-partitioning (fixed cores).
//! * [`AsymmetricManager`] — the oracle-like asymmetric multicore and the
//!   realistic fixed 50-50 split (fixed cores).
//! * [`FlickerManager`] — Flicker's 3MM3 + RBF + GA pipeline on
//!   reconfigurable cores, in the paper's two evaluation variants
//!   (§VIII-E).
//!
//! Every baseline handles an arbitrary number of LC tenants: each tenant
//! keeps its reserved cores at the widest configuration (the baselines never
//! relocate cores), and per-tenant power is measured or characterized
//! per service.

use baselines::asymmetric::{oracle_plan, plan_with_big_count, AsymmetricInput, CoreChoice};
use baselines::flicker::{three_level_design, FlickerModel};
use baselines::ga::{ga_search, GaParams};
use baselines::gating::{ipc_partition, select_gated, GatingOrder};
use dds::{SearchSpace, SoftPenalty};
use simulator::power::CoreKind;
use simulator::{CacheAlloc, Chip, CoreConfig, JobConfig, NUM_CORE_CONFIGS};
use workloads::oracle::Oracle;

use crate::accounting::{gate_descending_power, steady_state_budget};
use crate::types::{
    BatchAction, LcAssignment, Plan, ProfilePlan, ProfileSample, ResourceManager, Scenario,
    SliceInfo, TIMESLICE_MS,
};

/// The LC tenants' fixed configuration in every baseline: widest core,
/// four LLC ways.
fn lc_widest() -> JobConfig {
    JobConfig::new(CoreConfig::widest(), CacheAlloc::Four)
}

/// Per-tenant widest assignments at the previous core split.
fn lc_assignments(info: &SliceInfo, config: JobConfig) -> Vec<LcAssignment> {
    info.lc
        .iter()
        .map(|l| LcAssignment {
            cores: l.last_cores,
            config,
        })
        .collect()
}

/// Nearest allocation (in log-ways space) to a fractional share.
fn nearest_alloc(ways: f64) -> CacheAlloc {
    let d = |x: &CacheAlloc| (x.ways().log2() - ways.max(0.25).log2()).abs();
    CacheAlloc::ALL
        .into_iter()
        .min_by(|a, b| d(a).total_cmp(&d(b)))
        .unwrap_or(CacheAlloc::One)
}

/// Effective per-job occupancy of an *unpartitioned* LLC.
///
/// Baselines without way-partitioning hardware still share the 32-way LLC;
/// each job occupies roughly its fair share. We approximate the share as
/// `llc_ways / jobs` rounded to the allocation alphabet, weighting each
/// multi-core latency-critical tenant double. Returns `(lc, batch)`
/// allocations.
fn unpartitioned_share(
    llc_ways: u32,
    num_lc: usize,
    active_batch: usize,
) -> (CacheAlloc, CacheAlloc) {
    let share = f64::from(llc_ways) / (2.0 * num_lc as f64 + active_batch as f64);
    (nearest_alloc(2.0 * share), nearest_alloc(share))
}

/// No gating: everything at the widest configuration regardless of the cap.
///
/// The paper's Fig. 5(c) normalizes all schemes by this reference.
#[derive(Debug, Default)]
pub struct NoGatingManager;

impl ResourceManager for NoGatingManager {
    fn name(&self) -> String {
        "no-gating".to_string()
    }

    fn plan(
        &mut self,
        info: &SliceInfo,
        _probe: &mut dyn FnMut(&ProfilePlan, f64) -> ProfileSample,
    ) -> Plan {
        let (lc_share, batch_share) = unpartitioned_share(32, info.lc.len(), info.num_batch);
        Plan {
            lc: lc_assignments(info, JobConfig::new(CoreConfig::widest(), lc_share)),
            batch: vec![
                BatchAction::Run(JobConfig::new(CoreConfig::widest(), batch_share));
                info.num_batch
            ],
        }
    }
}

/// Core-level gating (§VII-B): all cores at the widest configuration, whole
/// cores gated to meet the cap. One 1 ms profiling sample per slice measures
/// per-core power and throughput (the paper: "even core-level gating incurs
/// an overhead of 1 ms for one profiling period").
pub struct CoreGatingManager {
    order: GatingOrder,
    /// Way-partitioning of the LLC (UCP), or one way per job when absent.
    partition: Option<Vec<CacheAlloc>>,
    num_lc: usize,
    gated_watts: f64,
}

impl CoreGatingManager {
    /// Builds the manager; `way_partitioning` enables the UCP variant.
    ///
    /// UCP's hardware utility monitors are modelled by computing the
    /// partition from the mix's miss curves once, up front.
    pub fn new(scenario: &Scenario, order: GatingOrder, way_partitioning: bool) -> Self {
        let partition = way_partitioning.then(|| {
            let profiles = scenario.batch_profiles();
            let perf = simulator::PerfModel::new(scenario.params);
            // Each LC tenant holds four ways; UCP divides the rest.
            ipc_partition(
                &perf,
                &profiles,
                CoreConfig::widest(),
                scenario.params.llc_ways as f64 - 4.0 * scenario.num_lc() as f64,
            )
        });
        CoreGatingManager {
            order,
            partition,
            num_lc: scenario.num_lc(),
            gated_watts: scenario.params.gated_core_watts,
        }
    }

    /// Configuration of batch job `j` given how many batch jobs are active
    /// (the unpartitioned share grows as cores are gated).
    fn batch_config(&self, j: usize, active: usize) -> JobConfig {
        let cache = match &self.partition {
            Some(p) => p[j],
            None => unpartitioned_share(32, self.num_lc, active).1,
        };
        JobConfig::new(CoreConfig::widest(), cache)
    }

    fn lc_config(&self, active: usize) -> JobConfig {
        match self.partition {
            Some(_) => lc_widest(),
            None => JobConfig::new(
                CoreConfig::widest(),
                unpartitioned_share(32, self.num_lc, active).0,
            ),
        }
    }
}

impl ResourceManager for CoreGatingManager {
    fn name(&self) -> String {
        match self.partition {
            Some(_) => "core-gating+wp".to_string(),
            None => "core-gating".to_string(),
        }
    }

    fn plan(
        &mut self,
        info: &SliceInfo,
        probe: &mut dyn FnMut(&ProfilePlan, f64) -> ProfileSample,
    ) -> Plan {
        let num_lc = info.lc.len();
        let batch: Vec<BatchAction> = (0..info.num_batch)
            .map(|j| BatchAction::Run(self.batch_config(j, info.num_batch)))
            .collect();
        let sample = probe(
            &ProfilePlan {
                lc_configs: info
                    .lc
                    .iter()
                    .map(|l| vec![self.lc_config(info.num_batch); l.last_cores])
                    .collect(),
                batch: batch.clone(),
            },
            1.0,
        );
        let mut per_job = vec![(0.0, 0.0); info.num_batch];
        let mut lc_watts = vec![0.0; num_lc];
        for s in &sample.samples {
            // A blacked-out or corrupted reading (NaN) must not poison the
            // power budget; the job keeps its 0 W default, which gates last.
            if !s.bips.is_finite() || !s.watts.is_finite() {
                continue;
            }
            if s.job < num_lc {
                lc_watts[s.job] = s.watts;
            } else {
                per_job[s.job - num_lc] = (s.bips, s.watts);
            }
        }
        // The cap constrains the slice average, and the all-widest probe
        // frame runs hotter than the steady state it selects: gate against
        // the budget net of the probe's energy, not the raw cap. The guard
        // band covers the cache-share growth of the surviving jobs — the
        // probe measures everyone at the all-active unpartitioned share,
        // which shrinks each job's LLC slice relative to the post-gating
        // steady state.
        const SHARE_GROWTH_GUARD: f64 = 0.99;
        let lc_power: f64 = info
            .lc
            .iter()
            .zip(&lc_watts)
            .map(|(l, w)| l.last_cores as f64 * w)
            .sum();
        let probe_watts = lc_power + per_job.iter().map(|(_, w)| w).sum::<f64>();
        let budget = SHARE_GROWTH_GUARD
            * steady_state_budget(
                info.cap_watts,
                TIMESLICE_MS,
                sample.duration_ms,
                probe_watts,
            );
        let gated = select_gated(&per_job, lc_power, budget, self.gated_watts, self.order);
        let active = gated.iter().filter(|&&g| !g).count();
        let batch = gated
            .iter()
            .enumerate()
            .map(|(j, &g)| {
                if g {
                    BatchAction::Gated
                } else {
                    BatchAction::Run(self.batch_config(j, active))
                }
            })
            .collect();
        Plan {
            lc: lc_assignments(info, self.lc_config(active)),
            batch,
        }
    }
}

/// Which asymmetric design to plan for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AsymmetricMode {
    /// Oracle: the best big/small split each timeslice, migration free.
    Oracle,
    /// The realistic design: a fixed number of big cores.
    FixedBig(usize),
}

/// Asymmetric multicore (§VII-C): big {6,6,6} and small {2,2,2} fixed
/// cores. As the paper's oracle, it has perfect knowledge — supplied here by
/// the ground-truth tables — and pays no migration cost.
pub struct AsymmetricManager {
    mode: AsymmetricMode,
    choices: Vec<CoreChoice>,
    /// Per-tenant characterized per-core power on a big core (W).
    lc_watts_per_core: Vec<f64>,
    gated_watts: f64,
}

impl AsymmetricManager {
    /// Builds the planner, characterizing every job on both core types
    /// through the fixed-core oracle.
    pub fn new(scenario: &Scenario, mode: AsymmetricMode) -> Self {
        let oracle = Oracle::new(Chip::new(scenario.params, CoreKind::Fixed));
        // Characterized at the typical unpartitioned share of a fully
        // loaded chip (two ways per job).
        let big = JobConfig::new(CoreConfig::widest(), CacheAlloc::Two);
        let small = JobConfig::new(CoreConfig::narrowest(), CacheAlloc::Two);
        let choices = scenario
            .batch_profiles()
            .iter()
            .map(|p| CoreChoice {
                bips_big: oracle.bips_at(p, big),
                watts_big: oracle.power_at(p, big),
                bips_small: oracle.bips_at(p, small),
                watts_small: oracle.power_at(p, small),
            })
            .collect();
        let lc_watts_per_core = scenario
            .lc_jobs()
            .iter()
            .map(|lc| oracle.power_at(&lc.service.profile, lc_widest()))
            .collect();
        AsymmetricManager {
            mode,
            choices,
            lc_watts_per_core,
            gated_watts: scenario.params.gated_core_watts,
        }
    }
}

impl ResourceManager for AsymmetricManager {
    fn name(&self) -> String {
        match self.mode {
            AsymmetricMode::Oracle => "asymmetric-oracle".to_string(),
            AsymmetricMode::FixedBig(n) => format!("asymmetric-{n}big"),
        }
    }

    fn plan(
        &mut self,
        info: &SliceInfo,
        _probe: &mut dyn FnMut(&ProfilePlan, f64) -> ProfileSample,
    ) -> Plan {
        let lc_cores: usize = info.lc.iter().map(|l| l.last_cores).sum();
        let lc_watts: f64 = info
            .lc
            .iter()
            .zip(&self.lc_watts_per_core)
            .map(|(l, w)| l.last_cores as f64 * w)
            .sum();
        let input = AsymmetricInput {
            num_cores: info.num_cores,
            lc_cores,
            lc_watts,
            batch: self.choices.clone(),
            budget: info.cap_watts,
            gated_watts: self.gated_watts,
        };
        let plan = match self.mode {
            AsymmetricMode::Oracle => oracle_plan(&input),
            AsymmetricMode::FixedBig(n) => {
                plan_with_big_count(&input, n.max(lc_cores)).unwrap_or_else(|| oracle_plan(&input))
            }
        };
        let active = plan.gated.iter().filter(|&&g| !g).count();
        let (lc_share, batch_share) = unpartitioned_share(32, info.lc.len(), active);
        let batch = plan
            .on_big
            .iter()
            .zip(&plan.gated)
            .map(|(&big, &gated)| {
                if gated {
                    BatchAction::Gated
                } else {
                    let core = if big {
                        CoreConfig::widest()
                    } else {
                        CoreConfig::narrowest()
                    };
                    BatchAction::Run(JobConfig::new(core, batch_share))
                }
            })
            .collect();
        Plan {
            lc: lc_assignments(info, JobConfig::new(CoreConfig::widest(), lc_share)),
            batch,
        }
    }
}

/// Flicker evaluation variant (§VIII-E).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlickerVariant {
    /// (a) Everything — including the LC tenants — is profiled for 10 ms on
    /// each of the nine 3MM3 configurations (90 ms total), then GA picks the
    /// configuration for the remaining ~8 ms.
    LcProfiled,
    /// (b) The LC tenants are pinned to {6,6,6} and only batch jobs are
    /// profiled, 1 ms per configuration (9 ms total).
    LcPinned,
}

/// Flicker (§VIII-E): 3MM3 sampling + RBF surrogates + GA over core
/// configurations. No cache partitioning — every job gets its unpartitioned
/// fair share, which is precisely the memory-hierarchy interference the
/// paper calls out.
pub struct FlickerManager {
    variant: FlickerVariant,
    /// Per-tenant QoS targets (ms), in priority order.
    qos_ms: Vec<f64>,
    num_lc: usize,
    ga: GaParams,
    gated_watts: f64,
}

impl FlickerManager {
    /// Builds the manager for a scenario.
    pub fn new(scenario: &Scenario, variant: FlickerVariant) -> Self {
        FlickerManager {
            variant,
            qos_ms: scenario.lc_jobs().iter().map(|lc| lc.qos_ms).collect(),
            num_lc: scenario.num_lc(),
            ga: GaParams {
                seed: scenario.seed,
                ..GaParams::default()
            },
            gated_watts: scenario.params.gated_core_watts,
        }
    }

    /// Flicker does not partition the LLC: every batch job occupies its
    /// unpartitioned fair share of the paper's fully loaded chip.
    fn cache(&self) -> CacheAlloc {
        unpartitioned_share(32, self.num_lc, 16).1
    }

    /// An LC tenant's unpartitioned share (double weight for multi-core
    /// tenants).
    fn lc_cache(&self) -> CacheAlloc {
        unpartitioned_share(32, self.num_lc, 16).0
    }
}

impl ResourceManager for FlickerManager {
    fn name(&self) -> String {
        match self.variant {
            FlickerVariant::LcProfiled => "flicker-a".to_string(),
            FlickerVariant::LcPinned => "flicker-b".to_string(),
        }
    }

    fn plan(
        &mut self,
        info: &SliceInfo,
        probe: &mut dyn FnMut(&ProfilePlan, f64) -> ProfileSample,
    ) -> Plan {
        let num_lc = info.lc.len();
        let design = three_level_design();
        let per_config_ms = match self.variant {
            FlickerVariant::LcProfiled => 10.0,
            FlickerVariant::LcPinned => 1.0,
        };
        let mut samples: Vec<Vec<(CoreConfig, f64, f64)>> =
            vec![Vec::with_capacity(design.len()); info.num_batch];
        // Per tenant: (config, measured tail, per-core watts) per design
        // point.
        let mut lc_tails: Vec<Vec<(CoreConfig, f64, f64)>> = vec![Vec::new(); num_lc];
        let mut lc_watts = vec![0.0; num_lc];
        for config in &design {
            let lc_config = match self.variant {
                FlickerVariant::LcProfiled => JobConfig::new(*config, self.cache()),
                FlickerVariant::LcPinned => JobConfig::new(CoreConfig::widest(), self.lc_cache()),
            };
            let batch: Vec<BatchAction> = (0..info.num_batch)
                .map(|_| BatchAction::Run(JobConfig::new(*config, self.cache())))
                .collect();
            let sample = probe(
                &ProfilePlan {
                    lc_configs: info
                        .lc
                        .iter()
                        .map(|l| vec![lc_config; l.last_cores])
                        .collect(),
                    batch,
                },
                per_config_ms,
            );
            for s in &sample.samples {
                // Skip non-finite readings so a sensor fault never reaches
                // the RBF fit or the power accounting.
                if !s.bips.is_finite() || !s.watts.is_finite() {
                    continue;
                }
                if s.job < num_lc {
                    lc_watts[s.job] = s.watts;
                } else {
                    samples[s.job - num_lc].push((*config, s.bips, s.watts));
                }
            }
            for (i, tails) in lc_tails.iter_mut().enumerate() {
                let tail = sample.lc_tails_ms.get(i).copied().unwrap_or(0.0);
                tails.push((*config, tail, lc_watts[i]));
            }
        }

        // Variant (a): each tenant picks the profiled configuration that met
        // its QoS with the least power; fall back to the widest when none
        // did.
        let lc: Vec<LcAssignment> = match self.variant {
            FlickerVariant::LcProfiled => info
                .lc
                .iter()
                .enumerate()
                .map(|(i, l)| {
                    let best = lc_tails[i]
                        .iter()
                        .filter(|(_, tail, _)| *tail <= self.qos_ms[i])
                        .min_by(|a, b| a.2.total_cmp(&b.2));
                    let config = match best {
                        Some((config, _, _)) => JobConfig::new(*config, self.cache()),
                        None => JobConfig::new(CoreConfig::widest(), self.cache()),
                    };
                    LcAssignment {
                        cores: l.last_cores,
                        config,
                    }
                })
                .collect(),
            FlickerVariant::LcPinned => {
                lc_assignments(info, JobConfig::new(CoreConfig::widest(), self.lc_cache()))
            }
        };

        // RBF surrogates per batch job; a failed fit (degenerate samples,
        // possible when probes ran out of slice time) falls back to the
        // narrowest configuration for safety.
        let model = match FlickerModel::fit(&samples) {
            Ok(m) => m,
            Err(_) => {
                let narrow = JobConfig::new(CoreConfig::narrowest(), self.cache());
                let batch = vec![BatchAction::Run(narrow); info.num_batch];
                return Plan { lc, batch };
            }
        };
        let bips: Vec<Vec<f64>> = (0..info.num_batch).map(|j| model.bips_row(j)).collect();
        let watts: Vec<Vec<f64>> = (0..info.num_batch).map(|j| model.power_row(j)).collect();
        let lc_power: f64 = info
            .lc
            .iter()
            .zip(&lc_watts)
            .map(|(l, w)| l.last_cores as f64 * w)
            .sum();
        let num_batch = info.num_batch;
        let watts_for_power = watts.clone();
        let objective = SoftPenalty {
            benefit: move |x: &[usize]| {
                let log_sum: f64 = x
                    .iter()
                    .enumerate()
                    .map(|(j, &c)| bips[j][c].max(1e-9).ln())
                    .sum();
                (log_sum / num_batch as f64).exp()
            },
            power: move |x: &[usize]| {
                lc_power
                    + x.iter()
                        .enumerate()
                        .map(|(j, &c)| watts_for_power[j][c].max(0.0))
                        .sum::<f64>()
            },
            cache_ways: move |_x: &[usize]| 0.0,
            max_power: info.cap_watts,
            max_ways: f64::INFINITY,
            penalty_power: 2.0,
            penalty_cache: 2.0,
        };
        let space = SearchSpace::new(info.num_batch, NUM_CORE_CONFIGS);
        let result = ga_search(&space, &objective, &self.ga);

        // The same last-resort rule as CuttleSys: gate in descending power
        // if even the narrowest plan misses the cap.
        let lowest = CoreConfig::narrowest().index();
        let narrowest_watts: Vec<f64> = (0..info.num_batch)
            .map(|j| watts[j][lowest].max(0.0))
            .collect();
        let lowest_power: f64 = lc_power + narrowest_watts.iter().sum::<f64>();
        let batch: Vec<BatchAction> = if lowest_power > info.cap_watts {
            let narrow = JobConfig::new(CoreConfig::narrowest(), self.cache());
            gate_descending_power(&narrowest_watts, lc_power, info.cap_watts, self.gated_watts)
                .into_iter()
                .map(|g| {
                    if g {
                        BatchAction::Gated
                    } else {
                        BatchAction::Run(narrow)
                    }
                })
                .collect()
        } else {
            result
                .best_point
                .iter()
                .map(|&c| BatchAction::Run(JobConfig::new(CoreConfig::from_index(c), self.cache())))
                .collect()
        };
        Plan { lc, batch }
    }
}

/// Closed-loop PID power manager (§IV's comparison point): all batch cores
/// share one width level; a PID loop nudges it each timeslice based on the
/// measured chip power. No model, no search — and therefore several
/// timeslices of budget violation or wasted headroom after every cap or
/// load change, where CuttleSys re-solves within a single interval.
pub struct FeedbackManager {
    pid: baselines::feedback::PidController,
    level: baselines::feedback::WidthLevel,
    last_power: Option<f64>,
}

impl FeedbackManager {
    /// Builds the controller with gains tuned for the 32-core chip's
    /// ~1.5 W-per-level actuation authority. The loop is primed with the
    /// scenario's nominal chip draw: an uncontrolled all-widest chip starts
    /// near the 100 % budget, so the controller actuates from the very
    /// first timeslice instead of idling until the first measurement.
    pub fn new(scenario: &Scenario) -> FeedbackManager {
        FeedbackManager {
            pid: baselines::feedback::PidController::new(0.12, 0.03, 0.05, 200.0),
            level: baselines::feedback::WidthLevel::new(),
            last_power: Some(scenario.nominal_budget_watts()),
        }
    }
}

impl ResourceManager for FeedbackManager {
    fn name(&self) -> String {
        "pid-feedback".to_string()
    }

    fn plan(
        &mut self,
        info: &SliceInfo,
        _probe: &mut dyn FnMut(&ProfilePlan, f64) -> ProfileSample,
    ) -> Plan {
        if let Some(power) = self.last_power {
            // Aim slightly below the cap so steady-state ripple stays legal.
            let actuation = self.pid.update(info.cap_watts * 0.97 - power);
            self.level.adjust(actuation);
        }
        let (lc_share, batch_share) = unpartitioned_share(32, info.lc.len(), info.num_batch);
        Plan {
            lc: lc_assignments(info, JobConfig::new(CoreConfig::widest(), lc_share)),
            batch: vec![
                BatchAction::Run(JobConfig::new(self.level.config(), batch_share));
                info.num_batch
            ],
        }
    }

    fn observe(&mut self, outcome: &crate::types::SliceOutcome) {
        // Total chip power estimate from the per-job measurements.
        let num_lc = outcome.plan.lc.len();
        let lc: f64 = outcome
            .plan
            .lc
            .iter()
            .enumerate()
            .map(|(i, a)| outcome.measured_watts[i] * a.cores as f64)
            .sum();
        let batch: f64 = outcome.measured_watts[num_lc..].iter().sum();
        let total = lc + batch;
        // Hold the previous estimate through a telemetry blackout: a NaN
        // error term would otherwise poison the PID integrator forever.
        if total.is_finite() {
            self.last_power = Some(total);
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::testbed::run_scenario;
    use workloads::loadgen::LoadPattern;

    fn scenario(kind: CoreKind, cap: f64) -> Scenario {
        Scenario {
            kind,
            cap: LoadPattern::Constant(cap),
            duration_slices: 3,
            noise: 0.0,
            phases: false,
            ..Scenario::paper_default()
        }
    }

    #[test]
    fn no_gating_ignores_the_cap() {
        let s = scenario(CoreKind::Fixed, 0.5);
        let record = run_scenario(&s, &mut NoGatingManager);
        assert!(
            record.power_violations() > 0,
            "no-gating must bust a 50% cap"
        );
        assert_eq!(record.qos_violations(), 0);
    }

    #[test]
    fn core_gating_meets_the_cap() {
        let s = scenario(CoreKind::Fixed, 0.7);
        let mut m = CoreGatingManager::new(&s, GatingOrder::DescendingPower, false);
        let record = run_scenario(&s, &mut m);
        assert_eq!(record.power_violations(), 0, "{record:#?}");
        assert_eq!(record.qos_violations(), 0);
        // Some cores must actually be gated at 70%.
        assert!(record.slices[0].batch_configs.iter().any(|c| c.is_none()));
    }

    #[test]
    fn way_partitioning_beats_single_way_gating() {
        let s = scenario(CoreKind::Fixed, 0.7);
        let plain = run_scenario(
            &s,
            &mut CoreGatingManager::new(&s, GatingOrder::DescendingPower, false),
        );
        let wp = run_scenario(
            &s,
            &mut CoreGatingManager::new(&s, GatingOrder::DescendingPower, true),
        );
        assert!(
            wp.batch_instructions() >= plain.batch_instructions() * 0.98,
            "UCP partitioning should not lose: {} vs {}",
            wp.batch_instructions(),
            plain.batch_instructions()
        );
    }

    #[test]
    fn asymmetric_oracle_beats_core_gating_at_tight_caps() {
        let s = scenario(CoreKind::Fixed, 0.6);
        let gating = run_scenario(
            &s,
            &mut CoreGatingManager::new(&s, GatingOrder::DescendingPower, false),
        );
        let asym = run_scenario(&s, &mut AsymmetricManager::new(&s, AsymmetricMode::Oracle));
        assert!(
            asym.batch_instructions() > gating.batch_instructions(),
            "asymmetric oracle must beat gating: {} vs {}",
            asym.batch_instructions(),
            gating.batch_instructions()
        );
        assert_eq!(asym.power_violations(), 0);
    }

    #[test]
    fn oracle_beats_fixed_5050_split() {
        let s = scenario(CoreKind::Fixed, 0.8);
        let oracle = run_scenario(&s, &mut AsymmetricManager::new(&s, AsymmetricMode::Oracle));
        let fixed = run_scenario(
            &s,
            &mut AsymmetricManager::new(&s, AsymmetricMode::FixedBig(16)),
        );
        assert!(oracle.batch_instructions() >= fixed.batch_instructions() * 0.999);
    }

    #[test]
    fn feedback_controller_converges_but_slowly() {
        let s = Scenario {
            kind: CoreKind::Fixed,
            cap: LoadPattern::Constant(0.6),
            duration_slices: 12,
            noise: 0.0,
            phases: false,
            ..Scenario::paper_default()
        };
        let record = run_scenario(&s, &mut FeedbackManager::new(&s));
        // It must eventually settle under the cap...
        let last = record.slices.last().unwrap();
        assert!(
            last.chip_watts <= last.cap_watts * 1.02,
            "PID failed to settle: {} vs {}",
            last.chip_watts,
            last.cap_watts
        );
        // ...but spends several early slices out of band (the §IV claim).
        let violations = record
            .slices
            .iter()
            .take(6)
            .filter(|sl| sl.chip_watts > sl.cap_watts * 1.02)
            .count();
        assert!(
            violations >= 2,
            "expected a slow transient, got {violations}"
        );
    }

    #[test]
    fn flicker_a_violates_qos_flicker_b_runs() {
        let s = scenario(CoreKind::Reconfigurable, 0.7);
        let a = run_scenario(&s, &mut FlickerManager::new(&s, FlickerVariant::LcProfiled));
        assert!(
            a.qos_violations() > 0,
            "90 ms of narrow-config profiling must blow the tail: {a:#?}"
        );
        let b = run_scenario(&s, &mut FlickerManager::new(&s, FlickerVariant::LcPinned));
        assert!(b.batch_instructions() > 0.0);
        assert!(
            a.worst_tail_ratio() > b.worst_tail_ratio(),
            "variant (a) must violate QoS harder than (b)"
        );
    }

    #[test]
    fn baselines_handle_two_tenants() {
        let s = Scenario {
            duration_slices: 2,
            noise: 0.0,
            phases: false,
            ..Scenario::two_service()
        };
        let fixed = Scenario {
            kind: CoreKind::Fixed,
            ..s.clone()
        };
        for record in [
            run_scenario(&fixed, &mut NoGatingManager),
            run_scenario(
                &fixed,
                &mut CoreGatingManager::new(&fixed, GatingOrder::DescendingPower, false),
            ),
            run_scenario(
                &fixed,
                &mut AsymmetricManager::new(&fixed, AsymmetricMode::Oracle),
            ),
            run_scenario(&fixed, &mut FeedbackManager::new(&fixed)),
            run_scenario(&s, &mut FlickerManager::new(&s, FlickerVariant::LcPinned)),
        ] {
            assert_eq!(record.slices[0].lc.len(), 2, "{}", record.scheme);
            assert!(record.batch_instructions() > 0.0, "{}", record.scheme);
        }
    }
}
