//! The CuttleSys resource manager (§IV–§VI).
//!
//! Every 100 ms decision quantum runs the five-stage
//! [`DecisionPipeline`]:
//!
//! 1. **Profile** for 2 ms: two 1 ms frames in which half of each LC
//!    tenant's cores run the widest-issue configuration and half the
//!    narrowest (swapped in the second frame, to avoid a chip-wide power
//!    overshoot), each job holding one LLC way ([`SplitHalvesProfile`]).
//! 2. **Reconstruct** the throughput, tail-latency, and power matrices with
//!    parallel SGD, seeded by the offline-characterized training
//!    applications and all observations accumulated from previous steady
//!    states ([`CfReconstruct`]). One tail matrix is completed per LC
//!    tenant, at that tenant's current load.
//! 3. **Pin each LC configuration** in priority order: scan the tenant's
//!    reconstructed tail row for configurations meeting its QoS; take the
//!    smallest cache allocation and, among those, the lowest predicted
//!    power (§VI-A). If nothing meets QoS, reclaim one core from the batch
//!    jobs (§VI-A); once the measured tail shows ≥ 20 % slack, yield
//!    reclaimed cores back ([`TrustRegionQos`]).
//! 4. **Search** the *present* batch jobs' configuration space with
//!    parallel DDS (Alg. 2) under the soft power/cache penalty objective;
//!    optionally a GA can be substituted (the paper's Fig. 10 comparison)
//!    ([`PenaltySearch`]).
//! 5. **Repair**: if even the all-narrowest plan exceeds the cap, gate
//!    batch cores in descending predicted power (§VI-B)
//!    ([`PowerCapRepair`]).
//!
//! The manager itself only owns the pipeline state — the rating matrices,
//! the per-tenant LC core allocations, and the previous plan — and wires the
//! stages together; each stage's logic lives in [`crate::pipeline`]. The
//! pipeline driver times every stage and the manager surfaces the resulting
//! [`StageTelemetry`] through [`ResourceManager::take_telemetry`], which is
//! how the Table II overhead report gets runtime-measured numbers. On batch
//! job departure (churn) the manager retires the job's observation rows so a
//! later arrival under the same index starts cold.
//!
//! # The degradation ladder
//!
//! A decision quantum can fail: every profiling sample rejected, the
//! reconstruction diverged past the sanity gate with nothing fresh to fall
//! back to, or the compute deadline blown. [`CuttleSysManager::decide`]
//! surfaces those failures as typed [`DecisionError`]s, and
//! [`ResourceManager::plan`] walks the ladder instead of panicking:
//!
//! 1. **Replay last-good** — while the most recent successful decision is
//!    within [`ResilienceConfig::staleness_bound`] quanta old, its plan is
//!    replayed (departed batch jobs gated).
//! 2. **Safe mode** — otherwise the manager emits the maximally conservative
//!    [`safe_mode_plan`]: LC tenants keep their cores at the widest
//!    configuration, batch jobs gate (or run narrowest under the cap when
//!    last-good predictions still permit power accounting).
//! 3. **Circuit breaker** — after [`ResilienceConfig::breaker_open_after`]
//!    consecutive failures the [`CircuitBreaker`] opens and the manager stops
//!    attempting full decisions, emitting safe mode directly; every
//!    [`ResilienceConfig::breaker_probe_interval`] quanta it probes one full
//!    decision, and enough successful probes close the breaker again.
//!
//! Every rung is recorded in the quantum's
//! [`crate::telemetry::DegradationEvents`].

use std::sync::Arc;

use dds::ParallelDdsParams;
use recsys::{Reconstructor, SgdConfig, WarmStartConfig};
use simulator::power::CoreKind;
use simulator::Chip;
use util::WorkerPool;
use workloads::batch;
use workloads::oracle::Oracle;

use crate::faults::{
    safe_mode_plan, CircuitBreaker, DecisionError, FaultInjector, FaultPlan, ResilienceConfig,
};
use crate::matrices::{JobMatrices, Predictions};
pub use crate::pipeline::SearchAlgo;
use crate::pipeline::{
    CfReconstruct, DecisionCtx, DecisionPipeline, LcAllocation, PenaltySearch, PowerCapRepair,
    SplitHalvesProfile, TrustRegionQos,
};
use crate::telemetry::StageTelemetry;
use crate::types::{
    BatchAction, Plan, ProfilePlan, ProfileSample, ResourceManager, Scenario, SliceInfo,
    SliceOutcome,
};

/// Performance knobs for the decision quantum's compute path.
///
/// All three knobs change only *how fast* a quantum computes, never *what*
/// it decides — with the one deliberate exception of warm-started
/// reconstruction, whose refined factors differ numerically from a cold
/// solve (bounded by the property tests) and which therefore defaults to
/// off.
///
/// * **Worker pool** — long-lived threads reused across quanta instead of
///   spawn-per-call. The pooled DDS backend is bit-identical to the
///   spawning one at any pool width.
/// * **Warm start** — reconstruction keeps each quantum's factor models
///   and refines them with a short decayed-learning-rate schedule. State
///   invalidates on job churn and whenever the sanity gate trips.
/// * **Evaluation cache** — DDS objective scores memoized per quantum,
///   keyed by candidate point; bit-identical because the objective is pure
///   within a quantum.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PerfConfig {
    /// Threads in the shared worker pool. `0` disables the pool and
    /// reverts to the legacy spawn-per-quantum path.
    pub pool_threads: usize,
    /// Warm-started reconstruction schedule; `None` cold-starts every
    /// quantum.
    pub warm_start: Option<WarmStartConfig>,
    /// Memoize DDS objective evaluations within each quantum.
    pub evaluation_cache: bool,
}

impl Default for PerfConfig {
    fn default() -> PerfConfig {
        PerfConfig {
            pool_threads: WorkerPool::default_threads(),
            warm_start: None,
            evaluation_cache: true,
        }
    }
}

impl PerfConfig {
    /// The legacy compute path: spawn-per-quantum threads, cold-started
    /// reconstruction, uncached evaluations. The baseline the
    /// `decision_loop` bench compares against.
    #[must_use]
    pub fn cold() -> PerfConfig {
        PerfConfig {
            pool_threads: 0,
            warm_start: None,
            evaluation_cache: false,
        }
    }

    /// Everything on, including warm-started reconstruction.
    #[must_use]
    pub fn fast() -> PerfConfig {
        PerfConfig {
            warm_start: Some(WarmStartConfig::default()),
            ..PerfConfig::default()
        }
    }

    /// Replaces the worker-pool width (`0` = legacy spawn-per-quantum).
    #[must_use]
    pub fn with_pool_threads(mut self, threads: usize) -> PerfConfig {
        self.pool_threads = threads;
        self
    }

    /// Enables or disables warm-started reconstruction (the default
    /// schedule when enabled).
    #[must_use]
    pub fn with_warm_start(mut self, warm: bool) -> PerfConfig {
        self.warm_start = warm.then(WarmStartConfig::default);
        self
    }

    /// Enables or disables the per-quantum DDS evaluation cache.
    #[must_use]
    pub fn with_evaluation_cache(mut self, cache: bool) -> PerfConfig {
        self.evaluation_cache = cache;
        self
    }

    /// Builds the shared worker pool this configuration calls for, if any.
    fn pool(&self) -> Option<Arc<WorkerPool>> {
        (self.pool_threads > 0).then(|| Arc::new(WorkerPool::new(self.pool_threads)))
    }
}

/// The most recent decision that fully succeeded, kept as the fallback for
/// failed quanta while it stays within the staleness bound.
struct LastGood {
    plan: Plan,
    preds: Predictions,
    /// Quanta since the decision was made (0 = this quantum).
    age: usize,
}

/// The CuttleSys runtime: pipeline state plus the five default stages.
pub struct CuttleSysManager {
    matrices: JobMatrices,
    pipeline: DecisionPipeline,
    reconstructor: Reconstructor,
    search_algo: SearchAlgo,
    perf: PerfConfig,
    pool: Option<Arc<WorkerPool>>,
    lc: Vec<LcAllocation>,
    gated_watts: f64,
    num_batch: usize,
    name: String,
    last_plan: Option<Plan>,
    last_loads: Vec<f64>,
    prev_active: Vec<bool>,
    last_predictions: Option<Predictions>,
    last_telemetry: Option<StageTelemetry>,
    resilience: ResilienceConfig,
    injector: FaultInjector,
    breaker: CircuitBreaker,
    last_good: Option<LastGood>,
}

impl CuttleSysManager {
    /// Builds the manager for a scenario: characterizes the 16 training
    /// applications offline and configures the default parallel SGD +
    /// parallel DDS pipeline.
    pub fn for_scenario(scenario: &Scenario) -> CuttleSysManager {
        let oracle = Oracle::new(Chip::new(scenario.params, CoreKind::Reconfigurable));
        let training: Vec<simulator::AppProfile> =
            batch::training_set().iter().map(|b| b.profile).collect();
        let matrices = JobMatrices::new(oracle, &training, scenario.num_lc(), scenario.num_batch());
        let search = SearchAlgo::Dds(ParallelDdsParams {
            seed: scenario.seed,
            ..Default::default()
        });
        let reconstructor = Reconstructor::new(SgdConfig {
            max_iters: 60,
            ..SgdConfig::default()
        });
        let perf = PerfConfig::default();
        let mut manager = CuttleSysManager {
            matrices,
            pipeline: DecisionPipeline {
                profile: Box::new(SplitHalvesProfile),
                reconstruct: Box::new(CfReconstruct::new(reconstructor)),
                qos: Box::new(TrustRegionQos::default()),
                search: Box::new(PenaltySearch::new(search.clone())),
                repair: Box::new(PowerCapRepair),
            },
            reconstructor,
            search_algo: search.clone(),
            perf,
            pool: None,
            lc: scenario
                .lc_jobs()
                .iter()
                .map(|lc| LcAllocation {
                    cores: lc.cores,
                    min_cores: lc.cores,
                })
                .collect(),
            gated_watts: scenario.params.gated_core_watts,
            num_batch: scenario.num_batch(),
            name: Self::name_for(&search),
            last_plan: None,
            last_loads: vec![0.0; scenario.num_lc()],
            prev_active: vec![true; scenario.num_batch()],
            last_predictions: None,
            last_telemetry: None,
            resilience: ResilienceConfig::default(),
            injector: FaultInjector::new(scenario.faults.clone()),
            breaker: CircuitBreaker::new(),
            last_good: None,
        };
        manager.pool = manager.perf.pool();
        manager.rebuild_stages();
        manager
    }

    fn name_for(search: &SearchAlgo) -> String {
        match search {
            SearchAlgo::Dds(_) => "cuttlesys".to_string(),
            SearchAlgo::Ga(_) => "cuttlesys-sgd-ga".to_string(),
        }
    }

    /// Rebuilds the reconstruct and search stages from the stored
    /// configuration, so every `with_*` builder keeps the perf wiring
    /// (pool, warm start, cache) intact.
    fn rebuild_stages(&mut self) {
        self.pipeline.reconstruct = Box::new(
            CfReconstruct::new(self.reconstructor)
                .with_pool(self.pool.clone())
                .with_warm_start(self.perf.warm_start),
        );
        self.pipeline.search = Box::new(
            PenaltySearch::new(self.search_algo.clone())
                .with_pool(self.pool.clone())
                .with_evaluation_cache(self.perf.evaluation_cache),
        );
    }

    /// Substitutes the search algorithm (used by the Fig. 10 GA ablation).
    pub fn with_search(mut self, search: SearchAlgo) -> CuttleSysManager {
        self.name = Self::name_for(&search);
        self.search_algo = search;
        self.rebuild_stages();
        self
    }

    /// Substitutes the reconstruction configuration.
    pub fn with_reconstructor(mut self, reconstructor: Reconstructor) -> CuttleSysManager {
        self.reconstructor = reconstructor;
        self.rebuild_stages();
        self
    }

    /// Substitutes the compute-path performance knobs (see [`PerfConfig`]).
    pub fn with_perf(mut self, perf: PerfConfig) -> CuttleSysManager {
        self.perf = perf;
        self.pool = perf.pool();
        self.rebuild_stages();
        self
    }

    /// The performance knobs currently in effect.
    pub fn perf(&self) -> PerfConfig {
        self.perf
    }

    /// Substitutes the degradation-ladder bounds.
    pub fn with_resilience(mut self, resilience: ResilienceConfig) -> CuttleSysManager {
        self.resilience = resilience;
        self
    }

    /// Substitutes the compute-side fault plan (overriding the scenario's).
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> CuttleSysManager {
        self.injector = FaultInjector::new(plan);
        self
    }

    /// Cores currently held across all latency-critical tenants.
    pub fn lc_cores(&self) -> usize {
        self.lc.iter().map(|a| a.cores).sum()
    }

    /// The predictions produced by the most recent decision interval
    /// (instrumentation for the Fig. 5(b) runtime-accuracy experiment).
    pub fn last_predictions(&self) -> Option<&Predictions> {
        self.last_predictions.as_ref()
    }

    /// Whether the circuit breaker is currently open (safe mode).
    pub fn breaker_open(&self) -> bool {
        self.breaker.is_open()
    }

    /// Times the breaker has (opened, closed) over the run so far.
    pub fn breaker_cycles(&self) -> (usize, usize) {
        (self.breaker.opens, self.breaker.closes)
    }

    /// Grows the manager's bookkeeping by one batch job (runtime
    /// admission), returning the new job's batch index. The new slot starts
    /// inactive and cold; the last plan and the last-good replay plan are
    /// padded with a gated action so a degraded quantum in the admission
    /// slice still emits a full-width plan. (Last-good *predictions* are
    /// deliberately left short: [`safe_mode_plan`] treats a missing batch
    /// prediction as infinite power and gates the job, which is the
    /// conservative answer for a job never yet observed.)
    pub fn admit_batch(&mut self) -> usize {
        let j = self.matrices.admit_batch();
        self.num_batch += 1;
        self.prev_active.push(false);
        if let Some(plan) = self.last_plan.as_mut() {
            plan.batch.push(BatchAction::Gated);
        }
        if let Some(lg) = self.last_good.as_mut() {
            lg.plan.batch.push(BatchAction::Gated);
        }
        j
    }

    /// Runs one full decision quantum, surfacing every stage failure as a
    /// typed error instead of a panic. This is the fallible core that
    /// [`ResourceManager::plan`] wraps with the degradation ladder.
    ///
    /// # Errors
    ///
    /// Returns a [`DecisionError`] when the scenario describes no LC tenant
    /// or any pipeline stage fails ([`crate::faults::StageError`]): no valid
    /// profiling samples after the bounded retry, a diverged reconstruction
    /// with no fresh last-good predictions, a blown compute deadline, or a
    /// malformed slice shape.
    pub fn decide(
        &mut self,
        info: &SliceInfo,
        probe: &mut dyn FnMut(&ProfilePlan, f64) -> ProfileSample,
        tel: &mut StageTelemetry,
    ) -> Result<(Plan, Predictions), DecisionError> {
        if info.lc.is_empty() {
            return Err(DecisionError::NoTenants);
        }
        if info.lc.len() != self.lc.len() {
            return Err(DecisionError::PlanShape {
                expected: self.lc.len(),
                got: info.lc.len(),
            });
        }
        let faults = self.injector.quantum(info.slice);
        let mut ctx = DecisionCtx {
            info,
            matrices: &mut self.matrices,
            lc: &mut self.lc,
            last_plan: &self.last_plan,
            num_batch: self.num_batch,
            gated_watts: self.gated_watts,
            faults,
            resilience: &self.resilience,
            last_good_preds: self.last_good.as_ref().map(|lg| (&lg.preds, lg.age)),
        };
        self.pipeline.decide(&mut ctx, probe, tel)
    }

    /// The fallback for a failed quantum: replay the last-good plan while it
    /// is fresh enough (gating batch jobs that have since departed),
    /// otherwise drop into the safe-mode allocation.
    fn fallback_plan(&mut self, info: &SliceInfo, tel: &mut StageTelemetry) -> Plan {
        if !self.breaker.is_open() {
            if let Some(lg) = &self.last_good {
                if lg.age <= self.resilience.staleness_bound {
                    tel.degradation.replayed_last_good = true;
                    tel.degradation.stale_age = tel.degradation.stale_age.max(lg.age);
                    let mut plan = lg.plan.clone();
                    for (j, action) in plan.batch.iter_mut().enumerate() {
                        if !info.batch_active.get(j).copied().unwrap_or(false) {
                            *action = BatchAction::Gated;
                        }
                    }
                    return plan;
                }
            }
        }
        tel.degradation.safe_mode = true;
        safe_mode_plan(
            info,
            &self.lc,
            self.last_good.as_ref().map(|lg| &lg.preds),
            self.gated_watts,
        )
    }
}

impl ResourceManager for CuttleSysManager {
    fn name(&self) -> String {
        self.name.clone()
    }

    fn plan(
        &mut self,
        info: &SliceInfo,
        probe: &mut dyn FnMut(&ProfilePlan, f64) -> ProfileSample,
    ) -> Plan {
        self.last_loads = info.lc.iter().map(|l| l.load).collect();
        // Churn: retire the observation rows of batch jobs that departed
        // since the previous quantum, so a later arrival under the same
        // index starts cold instead of inheriting stale ratings.
        for (j, active) in info.batch_active.iter().enumerate() {
            if self.prev_active[j] && !active {
                self.matrices.retire_batch(j);
            }
        }
        self.prev_active = info.batch_active.clone();
        let mut tel = StageTelemetry::default();
        if let Some(lg) = self.last_good.as_mut() {
            lg.age += 1;
        }
        self.breaker.begin_quantum();
        let resilience = self.resilience;
        let plan = if self.breaker.is_open() && !self.breaker.should_probe(&resilience) {
            // Breaker open, no probe due: emit safe mode without even
            // attempting a decision (the failure is assumed to persist until
            // a probe proves otherwise).
            tel.degradation.breaker_open = true;
            tel.degradation.safe_mode = true;
            safe_mode_plan(
                info,
                &self.lc,
                self.last_good.as_ref().map(|lg| &lg.preds),
                self.gated_watts,
            )
        } else {
            if self.breaker.is_open() {
                tel.degradation.breaker_open = true;
                tel.degradation.breaker_probe = true;
            }
            match self.decide(info, probe, &mut tel) {
                Ok((plan, preds)) => {
                    self.breaker.on_success(&resilience);
                    // A quantum that only succeeded by replaying last-good
                    // predictions must not reset their age, or persistent
                    // reconstruction failures would never hit the staleness
                    // bound.
                    let age = if tel.degradation.reconstruct_fallback {
                        self.last_good.as_ref().map_or(0, |lg| lg.age)
                    } else {
                        0
                    };
                    self.last_good = Some(LastGood {
                        plan: plan.clone(),
                        preds: preds.clone(),
                        age,
                    });
                    self.last_predictions = Some(preds);
                    plan
                }
                Err(e) => {
                    self.breaker.on_failure(&resilience);
                    tel.degradation.failed_stage = Some(e.stage());
                    self.fallback_plan(info, &mut tel)
                }
            }
        };
        // Keep the core ledger consistent with the plan actually emitted —
        // a replayed or safe-mode plan may differ from what the (failed)
        // pipeline left in the allocations.
        for (a, assignment) in self.lc.iter_mut().zip(&plan.lc) {
            a.cores = assignment.cores;
        }
        self.last_plan = Some(plan.clone());
        self.last_telemetry = Some(tel);
        plan
    }

    fn observe(&mut self, outcome: &SliceOutcome) {
        // Fold steady-state measurements back into the matrices (§IV-B:
        // "measured and updated in the SGD matrix"). LC tenants have no
        // throughput rows — only their power and tails are recorded.
        // Non-finite measurements (a power-telemetry blackout) are skipped:
        // a NaN must never poison a rating matrix.
        let num_lc = outcome.plan.lc.len();
        for (i, assignment) in outcome.plan.lc.iter().enumerate() {
            let cfg = assignment.config.index();
            let watts = outcome.measured_watts[i];
            if watts.is_finite() {
                self.matrices.record_lc_power(i, cfg, watts);
            }
            let tail = outcome.tails_ms[i];
            if tail.is_finite() {
                self.matrices
                    .record_tail(i, self.last_loads[i], assignment.cores, cfg, tail);
            }
        }
        for (j, action) in outcome.plan.batch.iter().enumerate() {
            if let BatchAction::Run(cfg) = action {
                let bips = outcome.measured_bips[num_lc + j];
                let watts = outcome.measured_watts[num_lc + j];
                if bips.is_finite() && bips > 0.0 {
                    self.matrices.record_sample(
                        num_lc + j,
                        cfg.index(),
                        bips,
                        if watts.is_finite() { watts } else { 0.0 },
                    );
                }
            }
        }
    }

    fn take_telemetry(&mut self) -> Option<StageTelemetry> {
        self.last_telemetry.take()
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::testbed::run_scenario;
    use crate::types::{BatchJobSpec, JobSpec};
    use baselines::ga::GaParams;
    use workloads::loadgen::LoadPattern;

    fn quick(cap: f64, load: f64) -> Scenario {
        Scenario {
            cap: LoadPattern::Constant(cap),
            duration_slices: 4,
            noise: 0.0,
            phases: false,
            ..Scenario::paper_default()
        }
        .with_load(LoadPattern::Constant(load))
    }

    #[test]
    fn meets_qos_at_moderate_cap() {
        let scenario = quick(0.7, 0.8);
        let mut manager = CuttleSysManager::for_scenario(&scenario);
        let record = run_scenario(&scenario, &mut manager);
        // Allow the cold-start slice to settle; afterwards QoS must hold.
        let late_violations = record
            .slices
            .iter()
            .skip(1)
            .filter(|s| s.qos_violation())
            .count();
        assert_eq!(
            late_violations, 0,
            "QoS violations after warm-up: {record:#?}"
        );
    }

    #[test]
    fn respects_power_cap_after_warmup() {
        let scenario = quick(0.6, 0.8);
        let mut manager = CuttleSysManager::for_scenario(&scenario);
        let record = run_scenario(&scenario, &mut manager);
        let worst_overshoot = record
            .slices
            .iter()
            .skip(1)
            .map(|s| s.chip_watts / s.cap_watts)
            .fold(0.0, f64::max);
        assert!(
            worst_overshoot < 1.10,
            "chip power should track the cap within the soft-penalty band: {worst_overshoot}"
        );
    }

    #[test]
    fn lower_caps_reduce_batch_throughput() {
        let runs: Vec<f64> = [0.9, 0.5]
            .iter()
            .map(|&cap| {
                let scenario = quick(cap, 0.8);
                let mut manager = CuttleSysManager::for_scenario(&scenario);
                run_scenario(&scenario, &mut manager).batch_instructions()
            })
            .collect();
        assert!(
            runs[0] > runs[1],
            "tighter cap must cost throughput: {runs:?}"
        );
    }

    #[test]
    fn low_load_lets_batch_jobs_take_power() {
        let busy = {
            let scenario = quick(0.7, 0.9);
            let mut m = CuttleSysManager::for_scenario(&scenario);
            run_scenario(&scenario, &mut m)
        };
        let quiet = {
            let scenario = quick(0.7, 0.2);
            let mut m = CuttleSysManager::for_scenario(&scenario);
            run_scenario(&scenario, &mut m)
        };
        assert!(
            quiet.batch_instructions() > busy.batch_instructions(),
            "a quiet service should leave more power for batch work"
        );
    }

    #[test]
    fn ga_variant_runs() {
        let scenario = quick(0.7, 0.8);
        let mut manager = CuttleSysManager::for_scenario(&scenario).with_search(SearchAlgo::Ga(
            GaParams::default().with_evaluation_budget(3200),
        ));
        let record = run_scenario(&scenario, &mut manager);
        assert_eq!(record.scheme, "cuttlesys-sgd-ga");
        assert!(record.batch_instructions() > 0.0);
    }

    #[test]
    fn every_slice_carries_stage_telemetry() {
        let scenario = quick(0.7, 0.8);
        let mut manager = CuttleSysManager::for_scenario(&scenario);
        let record = run_scenario(&scenario, &mut manager);
        assert!(record.slices.iter().all(|s| s.telemetry.is_some()));
        let summary = record.stage_summary().expect("telemetry present");
        assert_eq!(summary.decisions, record.slices.len());
        // The paper's 2 × 1 ms sampling cost, measured from the runtime.
        assert!((summary.mean_profile_sim_ms - 2.0).abs() < 1e-9);
        // SGD runs a fixed 60 epochs over three matrices every quantum.
        assert!((summary.mean_sgd_epochs - 180.0).abs() < 1e-9);
        assert!(summary.mean_search_evaluations > 0.0);
        assert!(summary.mean_total_wall_ms() > 0.0);
    }

    /// Zeroes the fields that legitimately differ between perf paths —
    /// wall-clock stage times and cache counters — leaving every decision
    /// output and deterministic counter intact.
    fn comparable(record: &crate::types::RunRecord) -> crate::types::RunRecord {
        let mut r = record.clone();
        for s in &mut r.slices {
            if let Some(t) = &mut s.telemetry {
                t.profile_wall_ms = 0.0;
                t.reconstruct_wall_ms = 0.0;
                t.qos_wall_ms = 0.0;
                t.search_wall_ms = 0.0;
                t.repair_wall_ms = 0.0;
                t.cache_hits = 0;
                t.cache_misses = 0;
            }
        }
        r
    }

    #[test]
    fn pool_and_cache_are_numerically_invisible() {
        let scenario = quick(0.7, 0.8);
        let pooled = {
            let mut m = CuttleSysManager::for_scenario(&scenario);
            run_scenario(&scenario, &mut m)
        };
        let cold = {
            let mut m = CuttleSysManager::for_scenario(&scenario).with_perf(PerfConfig::cold());
            run_scenario(&scenario, &mut m)
        };
        assert_eq!(comparable(&pooled), comparable(&cold));
    }

    #[test]
    fn warm_start_cuts_sgd_epochs_and_reports_warm_solves() {
        let scenario = quick(0.7, 0.8);
        let mut manager = CuttleSysManager::for_scenario(&scenario).with_perf(PerfConfig::fast());
        let record = run_scenario(&scenario, &mut manager);
        let summary = record.stage_summary().expect("telemetry present");
        assert!(summary.warm_solves > 0, "quanta after the first warm-start");
        assert!(
            summary.mean_sgd_epochs < 180.0,
            "warm refinement must undercut the fixed cold schedule: {}",
            summary.mean_sgd_epochs
        );
        assert!(record.batch_instructions() > 0.0);
    }

    #[test]
    fn departing_batch_job_rows_are_retired() {
        let mut scenario = quick(0.7, 0.8);
        // First batch job departs after slice 1.
        for job in scenario.jobs.iter_mut() {
            if let JobSpec::Batch(b) = job {
                *b = BatchJobSpec {
                    depart_slice: Some(2),
                    ..b.clone()
                };
                break;
            }
        }
        let mut manager = CuttleSysManager::for_scenario(&scenario);
        run_scenario(&scenario, &mut manager);
        assert_eq!(
            manager.matrices.batch_observations(0),
            0,
            "departed job's observation rows must be retired"
        );
        assert!(
            manager.matrices.batch_observations(1) > 0,
            "resident jobs keep their observations"
        );
    }
}
