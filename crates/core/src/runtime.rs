//! The CuttleSys resource manager (§IV–§VI).
//!
//! Every 100 ms decision quantum:
//!
//! 1. **Profile** for 2 ms: two 1 ms frames in which half the cores run the
//!    widest-issue configuration and half the narrowest (swapped in the
//!    second frame, to avoid a chip-wide power overshoot), each job holding
//!    one LLC way.
//! 2. **Reconstruct** the throughput, tail-latency, and power matrices with
//!    parallel SGD, seeded by the offline-characterized training
//!    applications and all observations accumulated from previous steady
//!    states.
//! 3. **Pin the LC configuration**: scan the reconstructed tail row for
//!    configurations meeting QoS; take the smallest cache allocation and,
//!    among those, the lowest predicted power (§VI-A). If nothing meets
//!    QoS, reclaim one core from the batch jobs (§VI-A); once the measured
//!    tail shows ≥ 20 % slack, yield reclaimed cores back.
//! 4. **Search** the batch jobs' configuration space with parallel DDS
//!    (Alg. 2) under the soft power/cache penalty objective; optionally a
//!    GA can be substituted (the paper's Fig. 10 comparison).
//! 5. **Repair**: if even the all-narrowest plan exceeds the cap, gate
//!    batch cores in descending predicted power (§VI-B).

use dds::{parallel_search, ParallelDdsParams, SearchSpace, SoftPenalty};
use baselines::ga::{ga_search, GaParams};
use recsys::{Reconstructor, SgdConfig};
use simulator::power::CoreKind;
use simulator::{CacheAlloc, Chip, CoreConfig, JobConfig, NUM_JOB_CONFIGS};
use workloads::batch;
use workloads::oracle::Oracle;

use crate::matrices::{JobMatrices, Predictions};
use crate::testbed::{
    BatchAction, Plan, ProfilePlan, ProfileSample, ResourceManager, Scenario, SliceInfo,
    SliceOutcome,
};

/// Which design-space exploration algorithm drives step 4.
#[derive(Debug, Clone)]
pub enum SearchAlgo {
    /// The paper's parallel Dynamically Dimensioned Search.
    Dds(ParallelDdsParams),
    /// Genetic algorithm at a matched evaluation budget (Fig. 10 ablation).
    Ga(GaParams),
}

/// The CuttleSys runtime.
pub struct CuttleSysManager {
    matrices: JobMatrices,
    reconstructor: Reconstructor,
    search: SearchAlgo,
    lc_cores: usize,
    min_lc_cores: usize,
    gated_watts: f64,
    /// Relinquish threshold: yield a reclaimed core when the measured tail
    /// has at least this much slack (§VI-A: 20 %).
    slack: f64,
    /// QoS headroom: a configuration is considered safe when its predicted
    /// tail is below `headroom × QoS`, absorbing reconstruction error.
    headroom: f64,
    num_batch: usize,
    last_plan: Option<Plan>,
    last_load: f64,
    last_predictions: Option<Predictions>,
}

impl CuttleSysManager {
    /// Builds the manager for a scenario: characterizes the 16 training
    /// applications offline and configures the default parallel SGD +
    /// parallel DDS pipeline.
    pub fn for_scenario(scenario: &Scenario) -> CuttleSysManager {
        let oracle = Oracle::new(Chip::new(scenario.params, CoreKind::Reconfigurable));
        let training: Vec<simulator::AppProfile> =
            batch::training_set().iter().map(|b| b.profile).collect();
        let matrices = JobMatrices::new(oracle, &training, scenario.num_batch());
        CuttleSysManager {
            matrices,
            reconstructor: Reconstructor::new(SgdConfig {
                max_iters: 60,
                ..SgdConfig::default()
            }),
            search: SearchAlgo::Dds(ParallelDdsParams { seed: scenario.seed, ..Default::default() }),
            lc_cores: scenario.lc_cores,
            min_lc_cores: scenario.lc_cores,
            gated_watts: scenario.params.gated_core_watts,
            slack: 0.2,
            headroom: 0.9,
            num_batch: scenario.num_batch(),
            last_plan: None,
            last_load: 0.0,
            last_predictions: None,
        }
    }

    /// Substitutes the search algorithm (used by the Fig. 10 GA ablation).
    pub fn with_search(mut self, search: SearchAlgo) -> CuttleSysManager {
        self.search = search;
        self
    }

    /// Substitutes the reconstruction configuration.
    pub fn with_reconstructor(mut self, reconstructor: Reconstructor) -> CuttleSysManager {
        self.reconstructor = reconstructor;
        self
    }

    /// Cores currently held by the latency-critical service.
    pub fn lc_cores(&self) -> usize {
        self.lc_cores
    }

    /// The predictions produced by the most recent decision interval
    /// (instrumentation for the Fig. 5(b) runtime-accuracy experiment).
    pub fn last_predictions(&self) -> Option<&Predictions> {
        self.last_predictions.as_ref()
    }

    /// The two-frame split-halves profiling schedule of §VIII-A1.
    fn profile(
        &mut self,
        _info: &SliceInfo,
        probe: &mut dyn FnMut(&ProfilePlan, f64) -> ProfileSample,
    ) {
        let high = JobConfig::profiling_high();
        let low = JobConfig::profiling_low();
        for swap in [false, true] {
            let lc_configs: Vec<JobConfig> = (0..self.lc_cores)
                .map(|i| if (i < self.lc_cores / 2) ^ swap { high } else { low })
                .collect();
            let batch: Vec<BatchAction> = (0..self.num_batch)
                .map(|j| {
                    BatchAction::Run(if (j < self.num_batch / 2) ^ swap { high } else { low })
                })
                .collect();
            let sample = probe(&ProfilePlan { lc_cores: self.lc_cores, lc_configs, batch }, 1.0);
            for s in &sample.samples {
                self.matrices.record_sample(s.job, s.config.index(), s.bips, s.watts);
            }
        }
    }

    /// §VI-A: pins the LC configuration from the reconstructed tail row.
    /// Returns `(config, met_qos)`.
    ///
    /// Among configurations predicted to meet QoS (with headroom), the scan
    /// minimizes predicted power, breaking ties toward smaller cache
    /// allocations — at tight caps the LC service's Watts are the binding
    /// resource; its ways only matter as a tiebreak against the batch
    /// jobs' cache demand.
    fn pin_lc_config(&self, preds: &Predictions, qos_ms: f64) -> (JobConfig, bool) {
        let mut best: Option<(JobConfig, f64)> = None;
        // Trust region: downsizing proceeds at most one step per dimension
        // per timeslice from the previous configuration (widening is
        // unlimited). Gradual descent means a mispredicted step lands just
        // past the previous — observed-safe — configuration, bounding the
        // magnitude of any transient violation.
        let floor = self
            .last_plan
            .as_ref()
            .map(|p| p.lc_config)
            .unwrap_or_else(|| JobConfig::new(CoreConfig::widest(), CacheAlloc::Four));
        let within_trust = |jc: JobConfig| {
            jc.core.fe.index() + 1 >= floor.core.fe.index()
                && jc.core.be.index() + 1 >= floor.core.be.index()
                && jc.core.ls.index() + 1 >= floor.core.ls.index()
                && jc.cache.index() + 1 >= floor.cache.index()
        };
        for c in 0..NUM_JOB_CONFIGS {
            if preds.lc_tail_guarded[c] > qos_ms * self.headroom {
                continue;
            }
            let jc = JobConfig::from_index(c);
            if !within_trust(jc) {
                continue;
            }
            let watts = preds.lc_watts[c];
            let better = match &best {
                None => true,
                Some((b, w)) => (watts, jc.cache) < (*w, b.cache),
            };
            if better {
                best = Some((jc, watts));
            }
        }
        match best {
            Some((jc, _)) => (jc, true),
            None => {
                // Nothing meets QoS: run the strongest configuration while
                // the relocation policy reclaims cores.
                (JobConfig::new(CoreConfig::widest(), CacheAlloc::Four), false)
            }
        }
    }

    /// Builds the §VI-A penalty objective over the batch dimensions.
    fn searched_plan(
        &self,
        preds: &Predictions,
        info: &SliceInfo,
        lc_config: JobConfig,
    ) -> Vec<usize> {
        let lc_power = self.lc_cores as f64 * preds.lc_watts[lc_config.index()];
        let batch_cores = info.num_cores - self.lc_cores;
        // Cores without a job (after relocation) stay gated.
        let idle_core_watts =
            (batch_cores as f64 - self.num_batch as f64).max(0.0) * self.gated_watts;
        let bips = &preds.batch_bips;
        let watts = &preds.batch_watts;
        let num_batch = self.num_batch;
        let objective = SoftPenalty {
            benefit: move |x: &[usize]| {
                let log_sum: f64 =
                    x.iter().enumerate().map(|(j, &c)| bips[j][c].max(1e-9).ln()).sum();
                (log_sum / num_batch as f64).exp()
            },
            power: move |x: &[usize]| {
                lc_power
                    + idle_core_watts
                    + x.iter().enumerate().map(|(j, &c)| watts[j][c]).sum::<f64>()
            },
            cache_ways: move |x: &[usize]| {
                lc_config.cache.ways()
                    + x.iter()
                        .map(|&c| JobConfig::from_index(c).cache.ways())
                        .sum::<f64>()
            },
            max_power: info.cap_watts,
            max_ways: 32.0,
            penalty_power: 2.0,
            penalty_cache: 2.0,
        };
        let space = SearchSpace::new(self.num_batch, NUM_JOB_CONFIGS);
        match &self.search {
            SearchAlgo::Dds(params) => parallel_search(&space, &objective, params).best_point,
            SearchAlgo::Ga(params) => ga_search(&space, &objective, params).best_point,
        }
    }

    /// §VI-B last resort: if the cap is missed even with every batch job at
    /// the narrowest configuration, gate batch cores in descending predicted
    /// power.
    fn repair_plan(
        &self,
        preds: &Predictions,
        info: &SliceInfo,
        lc_config: JobConfig,
        point: &[usize],
    ) -> Vec<BatchAction> {
        let lowest = JobConfig::profiling_low().index();
        let lc_power = self.lc_cores as f64 * preds.lc_watts[lc_config.index()];
        let lowest_power: f64 = lc_power
            + (0..self.num_batch).map(|j| preds.batch_watts[j][lowest]).sum::<f64>();
        let mut actions: Vec<BatchAction> =
            point.iter().map(|&c| BatchAction::Run(JobConfig::from_index(c))).collect();
        if lowest_power <= info.cap_watts {
            return actions;
        }
        // Not even the narrowest plan fits: start from all-narrowest and
        // gate the hungriest jobs until the predicted power fits.
        let mut power = lowest_power;
        for a in &mut actions {
            *a = BatchAction::Run(JobConfig::from_index(lowest));
        }
        let mut order: Vec<usize> = (0..self.num_batch).collect();
        order.sort_by(|&a, &b| {
            preds.batch_watts[b][lowest].total_cmp(&preds.batch_watts[a][lowest])
        });
        for j in order {
            if power <= info.cap_watts {
                break;
            }
            power -= preds.batch_watts[j][lowest] - self.gated_watts;
            actions[j] = BatchAction::Gated;
        }
        actions
    }
}

impl ResourceManager for CuttleSysManager {
    fn name(&self) -> String {
        match self.search {
            SearchAlgo::Dds(_) => "cuttlesys".to_string(),
            SearchAlgo::Ga(_) => "cuttlesys-sgd-ga".to_string(),
        }
    }

    fn plan(
        &mut self,
        info: &SliceInfo,
        probe: &mut dyn FnMut(&ProfilePlan, f64) -> ProfileSample,
    ) -> Plan {
        self.last_load = info.load;
        // Relocation policy, reclaim half (§VI-A): a measured QoS
        // violation while already at the widest configuration means
        // reconfiguration alone cannot help — take one core from the batch
        // jobs.
        if let Some(tail) = info.last_tail_ms {
            if tail > info.qos_ms
                && self.lc_cores + 1 < info.num_cores
                && self
                    .last_plan
                    .as_ref()
                    .is_some_and(|p| p.lc_config.core == CoreConfig::widest())
            {
                self.lc_cores += 1;
            }
        }

        self.profile(info, probe);
        let preds = self.matrices.reconstruct(&self.reconstructor, info.load);
        // The tail library is characterized at 16 cores; rescale
        // predictions for a given core count by the load ratio (an M/M/k
        // approximation adequate for a few cores of relocation).
        let scale_for = |preds: &Predictions, cores: usize| -> Predictions {
            let mut scaled = preds.clone();
            let ratio = crate::matrices::TAIL_REFERENCE_CORES as f64 / cores as f64;
            for t in scaled.lc_tail.iter_mut().chain(scaled.lc_tail_guarded.iter_mut()) {
                *t *= ratio;
            }
            scaled
        };

        // Relinquish half: a reclaimed core is yielded back as soon as the
        // predictions say one fewer core still meets QoS with slack
        // (measured slack at the chosen configuration is not meaningful —
        // the scan deliberately sits near the headroom boundary).
        if self.lc_cores > self.min_lc_cores {
            let fewer = scale_for(&preds, self.lc_cores - 1);
            let (_, met) = self.pin_lc_config(&fewer, info.qos_ms * (1.0 - self.slack / 2.0));
            if met && info.last_tail_ms.is_some_and(|t| t <= info.qos_ms) {
                self.lc_cores -= 1;
            }
        }

        let preds = scale_for(&preds, self.lc_cores);
        // First touch of a load region: no observation within ±2 % load
        // means the saturation wall's position is unknown — run the widest
        // configuration for one slice and learn from it (this is also the
        // system's t = 0 state).
        let first_touch = self
            .matrices
            .tail_observations_near(crate::matrices::bucket_for(info.load))
            .is_empty();
        let (lc_config, _met) = if first_touch {
            (JobConfig::new(CoreConfig::widest(), CacheAlloc::Four), true)
        } else {
            self.pin_lc_config(&preds, info.qos_ms)
        };
        let point = self.searched_plan(&preds, info, lc_config);
        let batch = self.repair_plan(&preds, info, lc_config, &point);
        let plan = Plan { lc_cores: self.lc_cores, lc_config, batch };
        self.last_plan = Some(plan.clone());
        self.last_predictions = Some(preds);
        plan
    }

    fn observe(&mut self, outcome: &SliceOutcome) {
        // Fold steady-state measurements back into the matrices (§IV-B:
        // "measured and updated in the SGD matrix").
        let lc_idx = outcome.plan.lc_config.index();
        self.matrices.record_sample(0, lc_idx, 0.0, outcome.measured_watts[0]);
        self.matrices.record_tail(self.last_load, lc_idx, outcome.tail_ms);
        for (j, action) in outcome.plan.batch.iter().enumerate() {
            if let BatchAction::Run(cfg) = action {
                let bips = outcome.measured_bips[1 + j];
                let watts = outcome.measured_watts[1 + j];
                if bips > 0.0 {
                    self.matrices.record_sample(1 + j, cfg.index(), bips, watts);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testbed::run_scenario;
    use workloads::loadgen::LoadPattern;

    fn quick(cap: f64, load: f64) -> Scenario {
        Scenario {
            cap: LoadPattern::Constant(cap),
            load: LoadPattern::Constant(load),
            duration_slices: 4,
            noise: 0.0,
            phases: false,
            ..Scenario::paper_default()
        }
    }

    #[test]
    fn meets_qos_at_moderate_cap() {
        let scenario = quick(0.7, 0.8);
        let mut manager = CuttleSysManager::for_scenario(&scenario);
        let record = run_scenario(&scenario, &mut manager);
        // Allow the cold-start slice to settle; afterwards QoS must hold.
        let late_violations =
            record.slices.iter().skip(1).filter(|s| s.qos_violation).count();
        assert_eq!(late_violations, 0, "QoS violations after warm-up: {record:#?}");
    }

    #[test]
    fn respects_power_cap_after_warmup() {
        let scenario = quick(0.6, 0.8);
        let mut manager = CuttleSysManager::for_scenario(&scenario);
        let record = run_scenario(&scenario, &mut manager);
        let worst_overshoot = record
            .slices
            .iter()
            .skip(1)
            .map(|s| s.chip_watts / s.cap_watts)
            .fold(0.0, f64::max);
        assert!(
            worst_overshoot < 1.10,
            "chip power should track the cap within the soft-penalty band: {worst_overshoot}"
        );
    }

    #[test]
    fn lower_caps_reduce_batch_throughput() {
        let runs: Vec<f64> = [0.9, 0.5]
            .iter()
            .map(|&cap| {
                let scenario = quick(cap, 0.8);
                let mut manager = CuttleSysManager::for_scenario(&scenario);
                run_scenario(&scenario, &mut manager).batch_instructions()
            })
            .collect();
        assert!(runs[0] > runs[1], "tighter cap must cost throughput: {runs:?}");
    }

    #[test]
    fn low_load_lets_batch_jobs_take_power() {
        let busy = {
            let scenario = quick(0.7, 0.9);
            let mut m = CuttleSysManager::for_scenario(&scenario);
            run_scenario(&scenario, &mut m)
        };
        let quiet = {
            let scenario = quick(0.7, 0.2);
            let mut m = CuttleSysManager::for_scenario(&scenario);
            run_scenario(&scenario, &mut m)
        };
        assert!(
            quiet.batch_instructions() > busy.batch_instructions(),
            "a quiet service should leave more power for batch work"
        );
    }

    #[test]
    fn ga_variant_runs() {
        let scenario = quick(0.7, 0.8);
        let mut manager = CuttleSysManager::for_scenario(&scenario)
            .with_search(SearchAlgo::Ga(GaParams::default().with_evaluation_budget(3200)));
        let record = run_scenario(&scenario, &mut manager);
        assert_eq!(record.scheme, "cuttlesys-sgd-ga");
        assert!(record.batch_instructions() > 0.0);
    }
}
