//! Per-decision instrumentation of the stage pipeline.
//!
//! Each decision quantum produces one [`StageTelemetry`]: wall-clock time
//! spent inside every pipeline stage (the manager's own compute cost, the
//! quantity Table II of the paper reports), the simulated milliseconds the
//! profiling stage consumed from the slice, and work counters such as SGD
//! epochs and search evaluations. [`TelemetrySummary`] aggregates the
//! records of a run for reporting.

use serde::Serialize;

/// Degradation-ladder events of one decision quantum: which fallbacks the
/// manager used and why. All-default means the quantum ran cleanly.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize)]
pub struct DegradationEvents {
    /// Profiling sample fields rejected by validation (non-finite or out of
    /// physical range).
    pub samples_rejected: usize,
    /// Bounded profiling retries issued after a frame yielded no valid
    /// sample.
    pub sample_retries: usize,
    /// Whether reconstruction output failed the sanity gate and last-good
    /// predictions substituted for it.
    pub reconstruct_fallback: bool,
    /// Age (in quanta) of the last-good state substituted this quantum,
    /// zero when none was needed.
    pub stale_age: usize,
    /// Whether the per-quantum deadline budget was exceeded (remaining
    /// stages skipped).
    pub deadline_exceeded: bool,
    /// Wall-clock milliseconds of injected reconstruction stall.
    pub injected_stall_ms: f64,
    /// Whether the quantum replayed the last-good decision instead of
    /// computing a fresh one.
    pub replayed_last_good: bool,
    /// Whether the quantum ran the safe-mode allocation.
    pub safe_mode: bool,
    /// Whether the circuit breaker was open during this quantum.
    pub breaker_open: bool,
    /// Whether an open breaker probed a full decision this quantum.
    pub breaker_probe: bool,
    /// The stage a failed quantum was attributed to, if any.
    pub failed_stage: Option<&'static str>,
}

impl DegradationEvents {
    /// Whether the quantum's decision was degraded in any way (a fallback
    /// was used, a stage was skipped, or the breaker was open).
    pub fn degraded(&self) -> bool {
        self.reconstruct_fallback
            || self.deadline_exceeded
            || self.replayed_last_good
            || self.safe_mode
            || self.breaker_open
            || self.failed_stage.is_some()
    }
}

/// Instrumentation of one decision quantum.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize)]
pub struct StageTelemetry {
    /// Wall-clock time of the profiling stage (ms): issuing the split-halves
    /// frames and recording samples. Excludes the simulated frame time.
    pub profile_wall_ms: f64,
    /// Wall-clock time of matrix reconstruction, i.e. the SGD solves (ms).
    pub reconstruct_wall_ms: f64,
    /// Wall-clock time of the QoS stage: tail-row scan, trust region, and
    /// core-relocation bookkeeping (ms).
    pub qos_wall_ms: f64,
    /// Wall-clock time of the batch-allocation search (ms).
    pub search_wall_ms: f64,
    /// Wall-clock time of the power-cap repair pass (ms).
    pub repair_wall_ms: f64,
    /// Simulated slice time consumed by profiling frames (ms) — the paper's
    /// 2 × 1 ms sampling cost.
    pub profile_sim_ms: f64,
    /// Samples recorded into the throughput/power matrices this quantum.
    pub samples_recorded: usize,
    /// SGD epochs executed across the three matrix completions.
    pub sgd_epochs: usize,
    /// Matrix completions this quantum that warm-started from the previous
    /// quantum's factors instead of refitting from scratch.
    pub warm_solves: usize,
    /// Objective evaluations performed by the search stage.
    pub search_evaluations: usize,
    /// Search-stage objective evaluations answered from the memoizing cache.
    pub cache_hits: usize,
    /// Search-stage objective evaluations computed by the underlying model
    /// (cache misses; equals `search_evaluations` when the cache is off).
    pub cache_misses: usize,
    /// Whether the QoS stage reclaimed a core for the LC service.
    pub reclaimed_core: bool,
    /// Whether the QoS stage relinquished a core to the batch pool.
    pub relinquished_core: bool,
    /// Batch jobs gated by the repair stage.
    pub gated_jobs: usize,
    /// Degradation-ladder events of the quantum (all-default when clean).
    pub degradation: DegradationEvents,
}

impl StageTelemetry {
    /// Total manager compute (wall-clock) this quantum, across stages (ms).
    pub fn total_wall_ms(&self) -> f64 {
        self.profile_wall_ms
            + self.reconstruct_wall_ms
            + self.qos_wall_ms
            + self.search_wall_ms
            + self.repair_wall_ms
    }
}

/// Per-stage statistics over a run — means and maxima of the fields of
/// [`StageTelemetry`] across the slices that reported one.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct TelemetrySummary {
    /// Number of decision quanta aggregated.
    pub decisions: usize,
    /// Mean wall-clock per stage (ms), in pipeline order:
    /// profile, reconstruct, qos, search, repair.
    pub mean_wall_ms: [f64; 5],
    /// Maximum wall-clock per stage (ms), same order.
    pub max_wall_ms: [f64; 5],
    /// Mean simulated profiling time per quantum (ms).
    pub mean_profile_sim_ms: f64,
    /// Mean samples recorded per quantum.
    pub mean_samples: f64,
    /// Mean SGD epochs per quantum.
    pub mean_sgd_epochs: f64,
    /// Total warm-started matrix completions across the run.
    pub warm_solves: usize,
    /// Mean search evaluations per quantum.
    pub mean_search_evaluations: f64,
    /// Total search-cache hits across the run.
    pub cache_hits: usize,
    /// Total search-cache misses across the run.
    pub cache_misses: usize,
    /// Quanta in which a core was reclaimed for the LC service.
    pub reclaims: usize,
    /// Quanta in which a core was relinquished to the batch pool.
    pub relinquishes: usize,
    /// Quanta in which the repair stage gated at least one job.
    pub repairs: usize,
    /// Total profiling sample fields rejected by validation.
    pub samples_rejected: usize,
    /// Total bounded profiling retries issued.
    pub sample_retries: usize,
    /// Quanta in which reconstruction fell back to last-good predictions.
    pub reconstruct_fallbacks: usize,
    /// Quanta in which the compute deadline was exceeded.
    pub deadline_exceeded: usize,
    /// Quanta that replayed the last-good decision.
    pub last_good_replays: usize,
    /// Quanta spent in the safe-mode allocation.
    pub safe_mode_quanta: usize,
    /// Quanta during which the circuit breaker was open.
    pub breaker_open_quanta: usize,
    /// Maximum age of a substituted last-good state (quanta).
    pub max_stale_age: usize,
    /// Quanta whose decision was degraded in any way.
    pub degraded_quanta: usize,
}

impl TelemetrySummary {
    /// Aggregates an iterator of per-quantum records; `None` if empty.
    pub fn over<'a>(records: impl IntoIterator<Item = &'a StageTelemetry>) -> Option<Self> {
        let mut n = 0usize;
        let mut sum = [0.0f64; 5];
        let mut max = [0.0f64; 5];
        let mut sim = 0.0;
        let mut samples = 0usize;
        let mut epochs = 0usize;
        let mut warm_solves = 0usize;
        let mut evals = 0usize;
        let mut cache_hits = 0usize;
        let mut cache_misses = 0usize;
        let (mut reclaims, mut relinquishes, mut repairs) = (0usize, 0usize, 0usize);
        let mut samples_rejected = 0usize;
        let mut sample_retries = 0usize;
        let mut reconstruct_fallbacks = 0usize;
        let mut deadline_exceeded = 0usize;
        let mut last_good_replays = 0usize;
        let mut safe_mode_quanta = 0usize;
        let mut breaker_open_quanta = 0usize;
        let mut max_stale_age = 0usize;
        let mut degraded_quanta = 0usize;
        for t in records {
            n += 1;
            let walls = [
                t.profile_wall_ms,
                t.reconstruct_wall_ms,
                t.qos_wall_ms,
                t.search_wall_ms,
                t.repair_wall_ms,
            ];
            for (i, w) in walls.into_iter().enumerate() {
                sum[i] += w;
                max[i] = max[i].max(w);
            }
            sim += t.profile_sim_ms;
            samples += t.samples_recorded;
            epochs += t.sgd_epochs;
            warm_solves += t.warm_solves;
            evals += t.search_evaluations;
            cache_hits += t.cache_hits;
            cache_misses += t.cache_misses;
            reclaims += usize::from(t.reclaimed_core);
            relinquishes += usize::from(t.relinquished_core);
            repairs += usize::from(t.gated_jobs > 0);
            let d = &t.degradation;
            samples_rejected += d.samples_rejected;
            sample_retries += d.sample_retries;
            reconstruct_fallbacks += usize::from(d.reconstruct_fallback);
            deadline_exceeded += usize::from(d.deadline_exceeded);
            last_good_replays += usize::from(d.replayed_last_good);
            safe_mode_quanta += usize::from(d.safe_mode);
            breaker_open_quanta += usize::from(d.breaker_open);
            max_stale_age = max_stale_age.max(d.stale_age);
            degraded_quanta += usize::from(d.degraded());
        }
        if n == 0 {
            return None;
        }
        let inv = 1.0 / n as f64;
        Some(TelemetrySummary {
            decisions: n,
            mean_wall_ms: sum.map(|s| s * inv),
            max_wall_ms: max,
            mean_profile_sim_ms: sim * inv,
            mean_samples: samples as f64 * inv,
            mean_sgd_epochs: epochs as f64 * inv,
            warm_solves,
            mean_search_evaluations: evals as f64 * inv,
            cache_hits,
            cache_misses,
            reclaims,
            relinquishes,
            repairs,
            samples_rejected,
            sample_retries,
            reconstruct_fallbacks,
            deadline_exceeded,
            last_good_replays,
            safe_mode_quanta,
            breaker_open_quanta,
            max_stale_age,
            degraded_quanta,
        })
    }

    /// Mean total manager compute per quantum (ms).
    pub fn mean_total_wall_ms(&self) -> f64 {
        self.mean_wall_ms.iter().sum()
    }

    /// Fraction of search-stage objective evaluations answered from the
    /// memoizing cache; zero when the cache never ran.
    pub fn cache_hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }

    /// The summary as a JSON document (hand-rolled — the vendored `serde`
    /// is a stub). Stage timings are keyed by [`STAGE_NAMES`].
    pub fn to_json(&self) -> util::JsonValue {
        use util::JsonValue as J;
        let stages = |vals: [f64; 5]| {
            J::Obj(
                STAGE_NAMES
                    .iter()
                    .zip(vals)
                    .map(|(name, v)| ((*name).to_string(), J::Num(v)))
                    .collect(),
            )
        };
        let n = |v: usize| J::Num(v as f64);
        J::Obj(vec![
            ("decisions".into(), n(self.decisions)),
            ("mean_wall_ms".into(), stages(self.mean_wall_ms)),
            ("max_wall_ms".into(), stages(self.max_wall_ms)),
            (
                "mean_total_wall_ms".into(),
                J::Num(self.mean_total_wall_ms()),
            ),
            (
                "mean_profile_sim_ms".into(),
                J::Num(self.mean_profile_sim_ms),
            ),
            ("mean_samples".into(), J::Num(self.mean_samples)),
            ("mean_sgd_epochs".into(), J::Num(self.mean_sgd_epochs)),
            ("warm_solves".into(), n(self.warm_solves)),
            (
                "mean_search_evaluations".into(),
                J::Num(self.mean_search_evaluations),
            ),
            ("cache_hits".into(), n(self.cache_hits)),
            ("cache_misses".into(), n(self.cache_misses)),
            ("cache_hit_rate".into(), J::Num(self.cache_hit_rate())),
            ("reclaims".into(), n(self.reclaims)),
            ("relinquishes".into(), n(self.relinquishes)),
            ("repairs".into(), n(self.repairs)),
            ("samples_rejected".into(), n(self.samples_rejected)),
            ("sample_retries".into(), n(self.sample_retries)),
            (
                "reconstruct_fallbacks".into(),
                n(self.reconstruct_fallbacks),
            ),
            ("deadline_exceeded".into(), n(self.deadline_exceeded)),
            ("last_good_replays".into(), n(self.last_good_replays)),
            ("safe_mode_quanta".into(), n(self.safe_mode_quanta)),
            ("breaker_open_quanta".into(), n(self.breaker_open_quanta)),
            ("max_stale_age".into(), n(self.max_stale_age)),
            ("degraded_quanta".into(), n(self.degraded_quanta)),
        ])
    }
}

/// Names of the pipeline stages, in the order `mean_wall_ms` uses.
pub const STAGE_NAMES: [&str; 5] = ["profile", "reconstruct", "qos", "search", "repair"];

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    fn record(scale: f64) -> StageTelemetry {
        StageTelemetry {
            profile_wall_ms: 0.1 * scale,
            reconstruct_wall_ms: 4.0 * scale,
            qos_wall_ms: 0.05 * scale,
            search_wall_ms: 1.3 * scale,
            repair_wall_ms: 0.01 * scale,
            profile_sim_ms: 2.0,
            samples_recorded: 34,
            sgd_epochs: 180,
            warm_solves: 0,
            search_evaluations: 640,
            cache_hits: 120,
            cache_misses: 520,
            reclaimed_core: scale > 1.0,
            relinquished_core: false,
            gated_jobs: if scale > 1.0 { 3 } else { 0 },
            degradation: DegradationEvents::default(),
        }
    }

    #[test]
    fn summary_over_empty_is_none() {
        assert!(TelemetrySummary::over(std::iter::empty::<&StageTelemetry>()).is_none());
    }

    #[test]
    fn summary_means_and_maxima() {
        let records = [record(1.0), record(3.0)];
        let s = TelemetrySummary::over(records.iter()).expect("non-empty");
        assert_eq!(s.decisions, 2);
        // Mean of 1x and 3x scales is 2x.
        assert!((s.mean_wall_ms[1] - 8.0).abs() < 1e-12);
        assert!((s.max_wall_ms[3] - 3.9).abs() < 1e-12);
        assert!((s.mean_profile_sim_ms - 2.0).abs() < 1e-12);
        assert_eq!(s.reclaims, 1);
        assert_eq!(s.repairs, 1);
        let expected_total: f64 = s.mean_wall_ms.iter().sum();
        assert!((s.mean_total_wall_ms() - expected_total).abs() < 1e-12);
    }

    #[test]
    fn cache_hit_rate_is_hits_over_total() {
        let records = [record(1.0), record(1.0)];
        let s = TelemetrySummary::over(records.iter()).expect("non-empty");
        assert_eq!(s.cache_hits, 240);
        assert_eq!(s.cache_misses, 1040);
        assert!((s.cache_hit_rate() - 240.0 / 1280.0).abs() < 1e-12);
        let mut cacheless = record(1.0);
        cacheless.cache_hits = 0;
        cacheless.cache_misses = 0;
        let s = TelemetrySummary::over([&cacheless]).expect("non-empty");
        assert_eq!(s.cache_hit_rate(), 0.0);
    }

    #[test]
    fn total_wall_sums_all_stages() {
        let t = record(1.0);
        assert!((t.total_wall_ms() - (0.1 + 4.0 + 0.05 + 1.3 + 0.01)).abs() < 1e-12);
    }

    #[test]
    fn clean_quantum_reports_no_degradation() {
        let t = record(1.0);
        assert!(!t.degradation.degraded());
        let s = TelemetrySummary::over([&t]).expect("non-empty");
        assert_eq!(s.degraded_quanta, 0);
        assert_eq!(s.safe_mode_quanta, 0);
    }

    #[test]
    fn summary_aggregates_degradation_events() {
        let mut degraded = record(1.0);
        degraded.degradation = DegradationEvents {
            samples_rejected: 4,
            sample_retries: 1,
            replayed_last_good: true,
            stale_age: 3,
            failed_stage: Some("reconstruct"),
            ..DegradationEvents::default()
        };
        assert!(degraded.degradation.degraded());
        let mut safe = record(1.0);
        safe.degradation.safe_mode = true;
        safe.degradation.breaker_open = true;
        let records = [record(1.0), degraded, safe];
        let s = TelemetrySummary::over(records.iter()).expect("non-empty");
        assert_eq!(s.decisions, 3);
        assert_eq!(s.samples_rejected, 4);
        assert_eq!(s.sample_retries, 1);
        assert_eq!(s.last_good_replays, 1);
        assert_eq!(s.safe_mode_quanta, 1);
        assert_eq!(s.breaker_open_quanta, 1);
        assert_eq!(s.max_stale_age, 3);
        assert_eq!(s.degraded_quanta, 2);
    }
}
