//! The Resource Controller's rating-matrix bookkeeping (§V).
//!
//! Three matrices are maintained, one per metric:
//!
//! * **throughput** — rows are the 16 offline-characterized training
//!   applications plus the live batch jobs;
//! * **power** — the same rows plus one row for the latency-critical
//!   service;
//! * **tail latency** — rows are a library of offline-characterized
//!   *latency-critical* behaviours plus the live service's row.
//!
//! Tail latency depends on the offered load, so tail bookkeeping is bucketed
//! by load decile: training rows are characterized per bucket (lazily) and
//! live observations land in the bucket of the load they were measured
//! under. Observations are overwritten per configuration — the newest
//! measurement wins, which is how the paper's runtime "updates the
//! reconstruction matrix with the measured metrics" to track phase changes.

use std::collections::HashMap;

use recsys::{RatingMatrix, Reconstructor, ValueTransform};
use simulator::{AppProfile, NUM_JOB_CONFIGS};
use workloads::latency::{self, LcService};
use workloads::oracle::Oracle;

/// Tail bookkeeping granularity: loads are binned to the nearest percent.
/// Queueing tails are steep functions of utilization near the knee, so the
/// training rows must be characterized at (almost exactly) the live load —
/// the arrival rate is directly observable, making this free at runtime.
pub const LOAD_BUCKETS: usize = 101;

/// Reference LC core count the tail training library is characterized at.
pub const TAIL_REFERENCE_CORES: usize = 16;

/// Ceiling applied to every tail-latency entry, in milliseconds.
///
/// A p99 cannot be measured beyond the 100 ms monitoring window, so both
/// the offline library rows and the online observations saturate here. This
/// also keeps the log-space matrix within ~2 decades instead of the 5 the
/// raw overload sentinels would span — all the scheduler needs from a
/// saturated entry is "QoS is violated" (§VIII-B).
pub const TAIL_CAP_MS: f64 = 100.0;

/// Maps a load fraction to its bucket (nearest percent; overload up to
/// 200 % gets its own buckets so saturated predictions stay saturated).
pub fn bucket_for(load: f64) -> usize {
    (load.clamp(0.0, 2.0) * 100.0).round() as usize
}

/// Load a bucket's training rows are characterized at.
pub fn bucket_load(bucket: usize) -> f64 {
    bucket as f64 / 100.0
}

/// Completed predictions for one decision interval.
#[derive(Debug, Clone)]
pub struct Predictions {
    /// `batch_bips[j][c]`: predicted per-core BIPS of batch job `j` at
    /// configuration `c`.
    pub batch_bips: Vec<Vec<f64>>,
    /// `batch_watts[j][c]`: predicted per-core power of batch job `j`.
    pub batch_watts: Vec<Vec<f64>>,
    /// Predicted per-core power of the LC service per configuration.
    pub lc_watts: Vec<f64>,
    /// Predicted 99th-percentile latency of the LC service per
    /// configuration, at the requested load bucket.
    pub lc_tail: Vec<f64>,
    /// Tail prediction tightened by the monotone closure of direct
    /// observations: an observed violation at X rules out everything X
    /// dominates, an observed-safe X certifies everything dominating X.
    /// The QoS scan uses this column.
    pub lc_tail_guarded: Vec<f64>,
}

impl Predictions {
    /// Rescales the tail predictions from the library's
    /// [`TAIL_REFERENCE_CORES`]-core characterization to `cores` LC cores.
    ///
    /// Service capacity scales with the core count, so the per-core load
    /// ratio — and with it the predicted tail — scales by
    /// `TAIL_REFERENCE_CORES / cores` (an M/M/k approximation adequate for
    /// the few cores relocation moves). Throughput and power rows are
    /// per-core and unaffected.
    pub fn rescaled_for_cores(&self, cores: usize) -> Predictions {
        assert!(cores > 0, "cannot rescale tails to zero cores");
        let mut scaled = self.clone();
        let ratio = TAIL_REFERENCE_CORES as f64 / cores as f64;
        for t in scaled
            .lc_tail
            .iter_mut()
            .chain(scaled.lc_tail_guarded.iter_mut())
        {
            *t *= ratio;
        }
        scaled
    }
}

/// The three-matrix bookkeeping.
pub struct JobMatrices {
    num_batch: usize,
    training_bips: Vec<Vec<f64>>,
    training_watts: Vec<Vec<f64>>,
    tail_training: HashMap<usize, Vec<Vec<f64>>>,
    tail_library: Vec<LcService>,
    oracle: Oracle,
    batch_bips_obs: Vec<HashMap<usize, f64>>,
    batch_watts_obs: Vec<HashMap<usize, f64>>,
    lc_watts_obs: HashMap<usize, f64>,
    tail_obs: HashMap<usize, HashMap<usize, f64>>,
}

/// Builds the tail training library: perturbed variants of every TailBench
/// service. The variants — not the services themselves — are the
/// "previously seen applications": scaling ILP and the cache working set
/// moves both the service-rate level and the shape of the configuration
/// response, so the live service is similar to, but never identical to, a
/// training row.
fn tail_library() -> Vec<LcService> {
    let mut lib = Vec::new();
    for svc in latency::services() {
        for (ilp_scale, ws_scale, qps_scale) in [
            (0.80, 1.30, 0.85),
            (0.90, 1.12, 0.94),
            (1.08, 0.90, 1.05),
            (1.18, 0.72, 1.12),
        ] {
            let mut p = svc.profile;
            p.ilp = (p.ilp * ilp_scale).clamp(0.2, 6.0);
            p.llc_working_set_ways = (p.llc_working_set_ways * ws_scale).clamp(0.1, 16.0);
            p.fe_sensitivity = (p.fe_sensitivity * ws_scale).clamp(0.0, 1.0);
            lib.push(LcService {
                name: svc.name,
                profile: p,
                max_qps: svc.max_qps * qps_scale,
                qos_ms: svc.qos_ms,
            });
        }
    }
    lib
}

impl JobMatrices {
    /// Creates the bookkeeping for `num_batch` live batch jobs, with
    /// training rows characterized offline through `oracle` (the paper's
    /// one-time offline profiling of 16 known applications).
    pub fn new(oracle: Oracle, training_apps: &[AppProfile], num_batch: usize) -> JobMatrices {
        let training_bips = training_apps.iter().map(|a| oracle.bips_row(a)).collect();
        let training_watts = training_apps.iter().map(|a| oracle.power_row(a)).collect();
        JobMatrices {
            num_batch,
            training_bips,
            training_watts,
            tail_training: HashMap::new(),
            tail_library: tail_library(),
            oracle,
            batch_bips_obs: vec![HashMap::new(); num_batch],
            batch_watts_obs: vec![HashMap::new(); num_batch],
            lc_watts_obs: HashMap::new(),
            tail_obs: HashMap::new(),
        }
    }

    /// Records a measured `(bips, watts)` sample for a job at a
    /// configuration. Job 0 is the LC service (only its power is matrixed —
    /// its "performance" metric is tail latency); jobs `1..=num_batch` are
    /// batch jobs.
    pub fn record_sample(&mut self, job: usize, config_idx: usize, bips: f64, watts: f64) {
        assert!(config_idx < NUM_JOB_CONFIGS, "config index out of range");
        if job == 0 {
            self.record_lc_power(config_idx, watts);
            return;
        }
        let j = job - 1;
        assert!(j < self.num_batch, "unknown batch job {job}");
        if bips > 0.0 {
            self.batch_bips_obs[j].insert(config_idx, bips);
        }
        if watts > 0.0 {
            self.batch_watts_obs[j].insert(config_idx, watts);
        }
    }

    /// Records the LC service's measured per-core power at a configuration.
    ///
    /// The service has no throughput row — its performance metric is tail
    /// latency ([`record_tail`]) — so this is the only steady-state sample
    /// the LC service contributes to the rating matrices.
    ///
    /// [`record_tail`]: JobMatrices::record_tail
    pub fn record_lc_power(&mut self, config_idx: usize, watts: f64) {
        assert!(config_idx < NUM_JOB_CONFIGS, "config index out of range");
        if watts > 0.0 {
            self.lc_watts_obs.insert(config_idx, watts);
        }
    }

    /// Records a measured tail latency at a configuration under `load`.
    pub fn record_tail(&mut self, load: f64, config_idx: usize, tail_ms: f64) {
        assert!(config_idx < NUM_JOB_CONFIGS, "config index out of range");
        if tail_ms > 0.0 {
            self.tail_obs
                .entry(bucket_for(load))
                .or_default()
                .insert(config_idx, tail_ms.min(TAIL_CAP_MS));
        }
    }

    /// Number of live observations for batch job `j`'s throughput row.
    pub fn batch_observations(&self, j: usize) -> usize {
        self.batch_bips_obs[j].len()
    }

    /// Observations usable at `bucket`: direct observations merged with
    /// neighbours within ±2 % load (nearer buckets win). Queueing tails move
    /// smoothly over a couple of load percent, and input load drifts
    /// gradually in practice, so neighbouring evidence prevents a cold
    /// start at every bucket boundary.
    pub fn tail_observations_near(&self, bucket: usize) -> HashMap<usize, f64> {
        let mut merged = HashMap::new();
        for distance in (0..=2).rev() {
            for b in [
                bucket.saturating_sub(distance),
                (bucket + distance).min(200),
            ] {
                if let Some(obs) = self.tail_obs.get(&b) {
                    merged.extend(obs.iter().map(|(&c, &t)| (c, t)));
                }
            }
        }
        merged
    }

    fn tail_training_rows(&mut self, bucket: usize) -> &Vec<Vec<f64>> {
        let oracle = self.oracle;
        let library = &self.tail_library;
        self.tail_training.entry(bucket).or_insert_with(|| {
            let load = bucket_load(bucket);
            library
                .iter()
                .map(|svc| {
                    oracle
                        .tail_row(svc, TAIL_REFERENCE_CORES, load)
                        .into_iter()
                        .map(|t| t.min(TAIL_CAP_MS))
                        .collect()
                })
                .collect()
        })
    }

    /// Runs the three reconstructions (§V runs them in parallel; we use the
    /// reconstructor's `complete_all`) and returns dense predictions for
    /// the live jobs at the given load bucket.
    pub fn reconstruct(&mut self, reconstructor: &Reconstructor, load: f64) -> Predictions {
        let bucket = bucket_for(load);
        let cols = NUM_JOB_CONFIGS;

        // Throughput matrix: training rows then live batch rows.
        let t_rows = self.training_bips.len();
        let mut bips_m = RatingMatrix::new(t_rows + self.num_batch, cols);
        for (r, row) in self.training_bips.iter().enumerate() {
            bips_m.fill_row(r, row);
        }
        for (j, obs) in self.batch_bips_obs.iter().enumerate() {
            for (&c, &v) in obs {
                bips_m.set(t_rows + j, c, v);
            }
        }

        // Power matrix: training rows, live batch rows, then the LC row.
        let mut watts_m = RatingMatrix::new(t_rows + self.num_batch + 1, cols);
        for (r, row) in self.training_watts.iter().enumerate() {
            watts_m.fill_row(r, row);
        }
        for (j, obs) in self.batch_watts_obs.iter().enumerate() {
            for (&c, &v) in obs {
                watts_m.set(t_rows + j, c, v);
            }
        }
        for (&c, &v) in &self.lc_watts_obs {
            watts_m.set(t_rows + self.num_batch, c, v);
        }

        // Tail matrix for this bucket: library rows then the live row.
        let lib_rows = self.tail_training_rows(bucket).clone();
        let mut tail_m = RatingMatrix::new(lib_rows.len() + 1, cols);
        for (r, row) in lib_rows.iter().enumerate() {
            tail_m.fill_row(r, row);
        }
        if let Some(obs) = self.tail_obs.get(&bucket) {
            for (&c, &v) in obs {
                tail_m.set(lib_rows.len(), c, v);
            }
        }

        let completed = reconstructor.complete_all(&[
            (&bips_m, ValueTransform::Log),
            (&watts_m, ValueTransform::Log),
            (&tail_m, ValueTransform::Log),
        ]);
        let (bips_d, watts_d, tail_d) = (&completed[0], &completed[1], &completed[2]);

        let batch_bips = (0..self.num_batch)
            .map(|j| (0..cols).map(|c| bips_d.get(t_rows + j, c)).collect())
            .collect();
        let batch_watts = (0..self.num_batch)
            .map(|j| (0..cols).map(|c| watts_d.get(t_rows + j, c)).collect())
            .collect();
        let lc_watts = (0..cols)
            .map(|c| watts_d.get(t_rows + self.num_batch, c))
            .collect();
        let lc_tail: Vec<f64> = (0..cols).map(|c| tail_d.get(lib_rows.len(), c)).collect();

        // Monotone closure over (neighbour-merged) direct observations:
        // tail latency is monotone in every resource dimension, so an
        // observation at X lower-bounds every configuration X dominates and
        // upper-bounds every configuration dominating X. Upper bounds are
        // applied last — direct evidence of safety trumps interpolation.
        let obs = self.tail_observations_near(bucket);
        let mut lc_tail_guarded = lc_tail.clone();
        let dominates = |a: simulator::JobConfig, b: simulator::JobConfig| {
            a.core.fe >= b.core.fe
                && a.core.be >= b.core.be
                && a.core.ls >= b.core.ls
                && a.cache >= b.cache
        };
        for (&x, &t) in &obs {
            let xc = simulator::JobConfig::from_index(x);
            for (c, g) in lc_tail_guarded.iter_mut().enumerate() {
                let cc = simulator::JobConfig::from_index(c);
                if c != x && dominates(xc, cc) {
                    *g = g.max(t);
                }
            }
        }
        for (&x, &t) in &obs {
            let xc = simulator::JobConfig::from_index(x);
            for (c, g) in lc_tail_guarded.iter_mut().enumerate() {
                let cc = simulator::JobConfig::from_index(c);
                if c != x && dominates(cc, xc) {
                    *g = g.min(t);
                }
            }
        }
        Predictions {
            batch_bips,
            batch_watts,
            lc_watts,
            lc_tail,
            lc_tail_guarded,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simulator::power::CoreKind;
    use simulator::{Chip, JobConfig, SystemParams};
    use workloads::batch;

    fn matrices() -> JobMatrices {
        let oracle = Oracle::new(Chip::new(SystemParams::default(), CoreKind::Reconfigurable));
        let training: Vec<AppProfile> = batch::training_set().iter().map(|b| b.profile).collect();
        JobMatrices::new(oracle, &training, 4)
    }

    #[test]
    fn bucketing_covers_the_unit_interval() {
        assert_eq!(bucket_for(0.0), 0);
        assert_eq!(bucket_for(0.004), 0);
        assert_eq!(bucket_for(0.85), 85);
        assert_eq!(bucket_for(0.852), 85);
        assert_eq!(bucket_for(1.0), 100);
        assert_eq!(bucket_for(2.0), 200);
        assert_eq!(bucket_for(5.0), 200);
        assert!((bucket_load(85) - 0.85).abs() < 1e-12);
    }

    #[test]
    fn tail_library_is_diverse_and_valid() {
        let lib = tail_library();
        assert_eq!(lib.len(), 20);
        for svc in &lib {
            svc.profile.validate().unwrap();
        }
        // Variants must not duplicate the original services.
        for orig in latency::services() {
            assert!(lib.iter().all(|v| v.profile != orig.profile));
        }
    }

    #[test]
    fn predictions_recover_unobserved_configs_for_batch_jobs() {
        let mut m = matrices();
        let oracle = Oracle::new(Chip::new(SystemParams::default(), CoreKind::Reconfigurable));
        let app = batch::testing_set()[0].profile;
        let truth = oracle.bips_row(&app);
        let truth_w = oracle.power_row(&app);
        // Two profiling samples, as at runtime.
        for cfg in [
            JobConfig::profiling_high().index(),
            JobConfig::profiling_low().index(),
        ] {
            m.record_sample(1, cfg, truth[cfg], truth_w[cfg]);
        }
        let preds = m.reconstruct(&Reconstructor::default(), 0.8);
        let rel_sum: f64 = preds.batch_bips[0]
            .iter()
            .zip(&truth)
            .map(|(p, t)| (p - t).abs() / t)
            .sum();
        let mean_rel = rel_sum / NUM_JOB_CONFIGS as f64;
        assert!(mean_rel < 0.15, "mean relative throughput error {mean_rel}");
    }

    #[test]
    fn tail_predictions_use_the_right_bucket() {
        let mut m = matrices();
        let p_low = m.reconstruct(&Reconstructor::default(), 0.2);
        let p_high = m.reconstruct(&Reconstructor::default(), 0.85);
        let idx = JobConfig::profiling_low().index();
        assert!(
            p_high.lc_tail[idx] > p_low.lc_tail[idx],
            "high-load bucket must predict worse tails at the narrow config"
        );
    }

    #[test]
    fn observed_entries_pass_through() {
        let mut m = matrices();
        m.record_sample(1, 5, 2.5, 3.5);
        m.record_tail(0.8, 7, 4.2);
        let preds = m.reconstruct(&Reconstructor::default(), 0.8);
        assert!((preds.batch_bips[0][5] - 2.5).abs() < 1e-12);
        assert!((preds.batch_watts[0][5] - 3.5).abs() < 1e-12);
        assert!((preds.lc_tail[7] - 4.2).abs() < 1e-12);
    }

    #[test]
    fn newest_measurement_wins() {
        let mut m = matrices();
        m.record_sample(2, 9, 1.0, 1.0);
        m.record_sample(2, 9, 2.0, 2.0);
        assert_eq!(m.batch_observations(1), 1);
        let preds = m.reconstruct(&Reconstructor::default(), 0.5);
        assert!((preds.batch_bips[1][9] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn lc_power_row_learns_from_observations() {
        let mut m = matrices();
        let oracle = Oracle::new(Chip::new(SystemParams::default(), CoreKind::Reconfigurable));
        let svc = latency::service_by_name("moses").unwrap();
        let truth = oracle.power_row(&svc.profile);
        for cfg in [
            JobConfig::profiling_high().index(),
            JobConfig::profiling_low().index(),
        ] {
            m.record_sample(0, cfg, 0.0, truth[cfg]);
        }
        let preds = m.reconstruct(&Reconstructor::default(), 0.8);
        let rel_sum: f64 = preds
            .lc_watts
            .iter()
            .zip(&truth)
            .map(|(p, t)| (p - t).abs() / t)
            .sum();
        let mean_rel = rel_sum / NUM_JOB_CONFIGS as f64;
        assert!(mean_rel < 0.2, "mean relative LC power error {mean_rel}");
    }

    #[test]
    #[should_panic(expected = "config index out of range")]
    fn out_of_range_config_rejected() {
        let mut m = matrices();
        m.record_sample(1, 108, 1.0, 1.0);
    }

    #[test]
    fn zero_valued_samples_are_dropped() {
        let mut m = matrices();
        // A gated or unmeasured sample must not poison any matrix row.
        m.record_sample(1, 5, 0.0, 0.0);
        m.record_lc_power(5, 0.0);
        assert_eq!(m.batch_observations(0), 0);
        assert!(m.lc_watts_obs.is_empty());
    }

    #[test]
    fn rescaling_applies_the_mmk_core_ratio() {
        let mut m = matrices();
        let preds = m.reconstruct(&Reconstructor::default(), 0.8);
        let idx = JobConfig::profiling_high().index();
        // Halving the cores doubles the per-core load ratio and hence the
        // predicted tail; power and throughput rows are per-core and fixed.
        let halved = preds.rescaled_for_cores(TAIL_REFERENCE_CORES / 2);
        assert!((halved.lc_tail[idx] - 2.0 * preds.lc_tail[idx]).abs() < 1e-12);
        assert!((halved.lc_tail_guarded[idx] - 2.0 * preds.lc_tail_guarded[idx]).abs() < 1e-12);
        assert_eq!(halved.lc_watts, preds.lc_watts);
        assert_eq!(halved.batch_bips, preds.batch_bips);
        // The reference core count is the identity.
        let same = preds.rescaled_for_cores(TAIL_REFERENCE_CORES);
        assert!((same.lc_tail[idx] - preds.lc_tail[idx]).abs() < 1e-12);
    }
}
