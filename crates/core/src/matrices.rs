//! The Resource Controller's rating-matrix bookkeeping (§V).
//!
//! Matrices are maintained per metric:
//!
//! * **throughput** — rows are the 16 offline-characterized training
//!   applications plus the live batch jobs;
//! * **power** — the same rows plus one row per latency-critical tenant;
//! * **tail latency** — one matrix per LC tenant: a library of
//!   offline-characterized *latency-critical* behaviours plus that tenant's
//!   live row, at the tenant's own load bucket.
//!
//! Tail latency depends on the offered load, so tail bookkeeping is bucketed
//! by load decile: training rows are characterized per bucket (lazily) and
//! live observations land in the bucket of the load they were measured
//! under. Observations are overwritten per configuration — the newest
//! measurement wins, which is how the paper's runtime "updates the
//! reconstruction matrix with the measured metrics" to track phase changes.
//! When a batch job departs (churn), [`JobMatrices::retire_batch`] drops its
//! live observations so a later arrival in the same slot starts cold.

use std::collections::{BTreeMap, HashMap};

use recsys::{
    RatingMatrix, Reconstructor, SessionInput, SgdModel, ValueTransform, WarmStartConfig,
};
use simulator::{AppProfile, NUM_JOB_CONFIGS};
use util::WorkerPool;
use workloads::latency::{self, LcService};
use workloads::oracle::Oracle;

/// Tail bookkeeping granularity: loads are binned to the nearest percent.
/// Queueing tails are steep functions of utilization near the knee, so the
/// training rows must be characterized at (almost exactly) the live load —
/// the arrival rate is directly observable, making this free at runtime.
pub const LOAD_BUCKETS: usize = 101;

/// Reference LC core count the tail training library is characterized at.
pub const TAIL_REFERENCE_CORES: usize = 16;

/// Ceiling applied to every tail-latency entry, in milliseconds.
///
/// A p99 cannot be measured beyond the 100 ms monitoring window, so both
/// the offline library rows and the online observations saturate here. This
/// also keeps the log-space matrix within ~2 decades instead of the 5 the
/// raw overload sentinels would span — all the scheduler needs from a
/// saturated entry is "QoS is violated" (§VIII-B).
pub const TAIL_CAP_MS: f64 = 100.0;

/// Maps a load fraction to its bucket (nearest percent; overload up to
/// 200 % gets its own buckets so saturated predictions stay saturated).
pub fn bucket_for(load: f64) -> usize {
    (load.clamp(0.0, 2.0) * 100.0).round() as usize
}

/// Load a bucket's training rows are characterized at.
pub fn bucket_load(bucket: usize) -> f64 {
    bucket as f64 / 100.0
}

/// The load a [`TAIL_REFERENCE_CORES`]-core deployment would need to match
/// the per-core utilization of a `cores`-core tenant at `load`.
///
/// The tail library is characterized on the reference core count across the
/// whole load axis, and queueing tails are a function of utilization — so a
/// tenant holding fewer (or relocated, more) cores is looked up and recorded
/// at this equivalent load instead of linearly rescaling tail magnitudes,
/// which badly underestimates the nonlinearity across large core gaps. At
/// the reference count the factor is exactly 1.0, leaving the paper's
/// single-tenant path bit-identical.
pub fn effective_load(load: f64, cores: usize) -> f64 {
    assert!(cores > 0, "effective load needs at least one core");
    load * (TAIL_REFERENCE_CORES as f64 / cores as f64)
}

/// Completed predictions for one LC tenant.
#[derive(Debug, Clone)]
pub struct LcPrediction {
    /// Predicted per-core power of the tenant per configuration.
    pub watts: Vec<f64>,
    /// Predicted 99th-percentile latency per configuration, at the
    /// tenant's requested load bucket.
    pub tail: Vec<f64>,
    /// Tail prediction tightened by the monotone closure of direct
    /// observations: an observed violation at X rules out everything X
    /// dominates, an observed-safe X certifies everything dominating X.
    /// The QoS scan uses this column.
    pub tail_guarded: Vec<f64>,
}

impl LcPrediction {
    /// Rescales the tail predictions for a relocation step from
    /// `from_cores` to `to_cores`.
    ///
    /// Predictions are reconstructed at the [`effective_load`] of the cores
    /// a tenant held when the quantum began; a relocation shifts the
    /// per-core load by `from_cores / to_cores`, and for the single-core
    /// steps relocation takes, the fluid approximation — tail scales with
    /// the per-core load ratio — is adequate. Power rows are per-core and
    /// unaffected.
    pub fn rescaled_step(&self, from_cores: usize, to_cores: usize) -> LcPrediction {
        assert!(to_cores > 0, "cannot rescale tails to zero cores");
        let mut scaled = self.clone();
        let ratio = from_cores as f64 / to_cores as f64;
        for t in scaled.tail.iter_mut().chain(scaled.tail_guarded.iter_mut()) {
            *t *= ratio;
        }
        scaled
    }
}

/// Completed predictions for one decision interval.
#[derive(Debug, Clone)]
pub struct Predictions {
    /// `batch_bips[j][c]`: predicted per-core BIPS of batch job `j` at
    /// configuration `c`.
    pub batch_bips: Vec<Vec<f64>>,
    /// `batch_watts[j][c]`: predicted per-core power of batch job `j`.
    pub batch_watts: Vec<Vec<f64>>,
    /// Per-LC-tenant predictions, in priority order.
    pub lc: Vec<LcPrediction>,
}

impl Predictions {
    /// The primary LC tenant's predictions.
    // Documented panic: predictions always cover at least one LC tenant.
    #[allow(clippy::expect_used)]
    pub fn primary_lc(&self) -> &LcPrediction {
        self.lc.first().expect("predictions cover an LC tenant")
    }
}

/// The rating-matrix bookkeeping for `num_lc` LC tenants and `num_batch`
/// batch jobs.
pub struct JobMatrices {
    num_lc: usize,
    num_batch: usize,
    training_bips: Vec<Vec<f64>>,
    training_watts: Vec<Vec<f64>>,
    // Observation maps are BTreeMaps, not HashMaps: every one of them is
    // iterated on the decision path (matrix assembly, the monotone tail
    // closure), and the SGD training-sample order must be a function of the
    // observations alone — never of a hasher's per-process seed.
    tail_training: BTreeMap<usize, Vec<Vec<f64>>>,
    tail_library: Vec<LcService>,
    oracle: Oracle,
    batch_bips_obs: Vec<BTreeMap<usize, f64>>,
    batch_watts_obs: Vec<BTreeMap<usize, f64>>,
    lc_watts_obs: Vec<BTreeMap<usize, f64>>,
    tail_obs: Vec<BTreeMap<usize, BTreeMap<usize, f64>>>,
    generation: u64,
}

/// Builds the tail training library: perturbed variants of every TailBench
/// service. The variants — not the services themselves — are the
/// "previously seen applications": scaling ILP and the cache working set
/// moves both the service-rate level and the shape of the configuration
/// response, so the live service is similar to, but never identical to, a
/// training row.
fn tail_library() -> Vec<LcService> {
    let mut lib = Vec::new();
    for svc in latency::services() {
        for (ilp_scale, ws_scale, qps_scale) in [
            (0.80, 1.30, 0.85),
            (0.90, 1.12, 0.94),
            (1.08, 0.90, 1.05),
            (1.18, 0.72, 1.12),
        ] {
            let mut p = svc.profile;
            p.ilp = (p.ilp * ilp_scale).clamp(0.2, 6.0);
            p.llc_working_set_ways = (p.llc_working_set_ways * ws_scale).clamp(0.1, 16.0);
            p.fe_sensitivity = (p.fe_sensitivity * ws_scale).clamp(0.0, 1.0);
            lib.push(LcService {
                name: svc.name,
                profile: p,
                max_qps: svc.max_qps * qps_scale,
                qos_ms: svc.qos_ms,
            });
        }
    }
    lib
}

impl JobMatrices {
    /// Creates the bookkeeping for `num_lc` LC tenants and `num_batch` live
    /// batch jobs, with training rows characterized offline through
    /// `oracle` (the paper's one-time offline profiling of 16 known
    /// applications).
    pub fn new(
        oracle: Oracle,
        training_apps: &[AppProfile],
        num_lc: usize,
        num_batch: usize,
    ) -> JobMatrices {
        assert!(num_lc > 0, "at least one LC tenant");
        let training_bips = training_apps.iter().map(|a| oracle.bips_row(a)).collect();
        let training_watts = training_apps.iter().map(|a| oracle.power_row(a)).collect();
        JobMatrices {
            num_lc,
            num_batch,
            training_bips,
            training_watts,
            tail_training: BTreeMap::new(),
            tail_library: tail_library(),
            oracle,
            batch_bips_obs: vec![BTreeMap::new(); num_batch],
            batch_watts_obs: vec![BTreeMap::new(); num_batch],
            lc_watts_obs: vec![BTreeMap::new(); num_lc],
            tail_obs: vec![BTreeMap::new(); num_lc],
            generation: 0,
        }
    }

    /// The churn generation: bumped whenever a batch row is retired, so
    /// warm solver state trained on the old row set cannot be reused.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Number of LC tenants tracked.
    pub fn num_lc(&self) -> usize {
        self.num_lc
    }

    /// Records a measured `(bips, watts)` sample for a job at a
    /// configuration. Global job indices: `0..num_lc` are the LC tenants
    /// (only their power is matrixed — their "performance" metric is tail
    /// latency); `num_lc..num_lc + num_batch` are batch jobs.
    pub fn record_sample(&mut self, job: usize, config_idx: usize, bips: f64, watts: f64) {
        assert!(config_idx < NUM_JOB_CONFIGS, "config index out of range");
        if job < self.num_lc {
            self.record_lc_power(job, config_idx, watts);
            return;
        }
        let j = job - self.num_lc;
        assert!(j < self.num_batch, "unknown batch job {job}");
        if bips > 0.0 {
            self.batch_bips_obs[j].insert(config_idx, bips);
        }
        if watts > 0.0 {
            self.batch_watts_obs[j].insert(config_idx, watts);
        }
    }

    /// Records LC tenant `lc`'s measured per-core power at a configuration.
    ///
    /// A tenant has no throughput row — its performance metric is tail
    /// latency ([`record_tail`]) — so this is the only steady-state sample
    /// an LC tenant contributes to the rating matrices.
    ///
    /// [`record_tail`]: JobMatrices::record_tail
    pub fn record_lc_power(&mut self, lc: usize, config_idx: usize, watts: f64) {
        assert!(config_idx < NUM_JOB_CONFIGS, "config index out of range");
        if watts > 0.0 {
            self.lc_watts_obs[lc].insert(config_idx, watts);
        }
    }

    /// Records LC tenant `lc`'s measured tail latency at a configuration
    /// under `load`, observed while the tenant held `cores` cores.
    ///
    /// Observations land at the [`effective_load`] bucket: a `cores`-core
    /// tenant at load `ρ` runs at the same utilization as the
    /// [`TAIL_REFERENCE_CORES`]-core characterization at `ρ × 16 / cores`,
    /// so its measured tail is directly comparable to — and stored
    /// alongside — the reference rows of that bucket. Magnitudes are kept
    /// raw; queueing tails are far too nonlinear in utilization for a
    /// linear core-ratio rescale to be safe across large core gaps.
    pub fn record_tail(
        &mut self,
        lc: usize,
        load: f64,
        cores: usize,
        config_idx: usize,
        tail_ms: f64,
    ) {
        assert!(config_idx < NUM_JOB_CONFIGS, "config index out of range");
        if tail_ms > 0.0 {
            self.tail_obs[lc]
                .entry(bucket_for(effective_load(load, cores)))
                .or_default()
                .insert(config_idx, tail_ms.min(TAIL_CAP_MS));
        }
    }

    /// Number of live observations for batch job `j`'s throughput row.
    pub fn batch_observations(&self, j: usize) -> usize {
        self.batch_bips_obs[j].len()
    }

    /// Drops every live observation of batch job `j` — called when the job
    /// departs, so the slot starts cold if a new job arrives in it.
    pub fn retire_batch(&mut self, j: usize) {
        self.batch_bips_obs[j].clear();
        self.batch_watts_obs[j].clear();
        self.generation += 1;
    }

    /// Grows the matrices by one cold batch row (runtime admission),
    /// returning the new job's batch index. The generation moves: warm
    /// solver state sized for the old row set cannot be reused.
    pub fn admit_batch(&mut self) -> usize {
        let j = self.num_batch;
        self.num_batch += 1;
        self.batch_bips_obs.push(BTreeMap::new());
        self.batch_watts_obs.push(BTreeMap::new());
        self.generation += 1;
        j
    }

    /// Observations usable at `bucket` for tenant `lc`: direct observations
    /// merged with neighbours within ±2 % load (nearer buckets win).
    /// Queueing tails move smoothly over a couple of load percent, and
    /// input load drifts gradually in practice, so neighbouring evidence
    /// prevents a cold start at every bucket boundary.
    pub fn tail_observations_near(&self, lc: usize, bucket: usize) -> BTreeMap<usize, f64> {
        let mut merged = BTreeMap::new();
        for distance in (0..=2).rev() {
            for b in [
                bucket.saturating_sub(distance),
                (bucket + distance).min(200),
            ] {
                if let Some(obs) = self.tail_obs[lc].get(&b) {
                    merged.extend(obs.iter().map(|(&c, &t)| (c, t)));
                }
            }
        }
        merged
    }

    fn tail_training_rows(&mut self, bucket: usize) -> &Vec<Vec<f64>> {
        let oracle = self.oracle;
        let library = &self.tail_library;
        self.tail_training.entry(bucket).or_insert_with(|| {
            let load = bucket_load(bucket);
            library
                .iter()
                .map(|svc| {
                    oracle
                        .tail_row(svc, TAIL_REFERENCE_CORES, load)
                        .into_iter()
                        .map(|t| t.min(TAIL_CAP_MS))
                        .collect()
                })
                .collect()
        })
    }

    /// Runs the reconstructions (§V runs them in parallel; we use the
    /// reconstructor's `complete_all`) and returns dense predictions for
    /// the live jobs: one throughput and one power completion, plus a tail
    /// completion per LC tenant at that tenant's load (`loads[lc]`).
    pub fn reconstruct(&mut self, reconstructor: &Reconstructor, loads: &[f64]) -> Predictions {
        self.reconstruct_session(reconstructor, loads, None, None)
            .predictions
    }

    /// [`JobMatrices::reconstruct`] with session state: the per-matrix
    /// fan-out (and any parallel SGD) runs on `pool` when one is given, and
    /// `warm` carries fitted models between quanta so each completion can
    /// refine the previous factors instead of cold-starting.
    ///
    /// Warm state self-invalidates when the matrices' churn
    /// [`generation`](JobMatrices::generation) has moved (a batch row was
    /// retired), and each completion independently falls back to a cold fit
    /// on any shape mismatch. With `pool = None` and `warm = None` this is
    /// bit-identical to [`JobMatrices::reconstruct`].
    pub fn reconstruct_session(
        &mut self,
        reconstructor: &Reconstructor,
        loads: &[f64],
        pool: Option<&WorkerPool>,
        warm: Option<(&WarmStartConfig, &mut WarmState)>,
    ) -> ReconstructOutcome {
        assert_eq!(loads.len(), self.num_lc, "one load per LC tenant");
        let cols = NUM_JOB_CONFIGS;
        let buckets: Vec<usize> = loads.iter().map(|&l| bucket_for(l)).collect();

        // Throughput matrix: training rows then live batch rows.
        let t_rows = self.training_bips.len();
        let mut bips_m = RatingMatrix::new(t_rows + self.num_batch, cols);
        for (r, row) in self.training_bips.iter().enumerate() {
            bips_m.fill_row(r, row);
        }
        for (j, obs) in self.batch_bips_obs.iter().enumerate() {
            for (&c, &v) in obs {
                bips_m.set(t_rows + j, c, v);
            }
        }

        // Power matrix: training rows, live batch rows, then one row per
        // LC tenant in priority order.
        let mut watts_m = RatingMatrix::new(t_rows + self.num_batch + self.num_lc, cols);
        for (r, row) in self.training_watts.iter().enumerate() {
            watts_m.fill_row(r, row);
        }
        for (j, obs) in self.batch_watts_obs.iter().enumerate() {
            for (&c, &v) in obs {
                watts_m.set(t_rows + j, c, v);
            }
        }
        for (lc, obs) in self.lc_watts_obs.iter().enumerate() {
            for (&c, &v) in obs {
                watts_m.set(t_rows + self.num_batch + lc, c, v);
            }
        }

        // One tail matrix per tenant at that tenant's bucket: library rows
        // then the tenant's live row.
        let lib_row_sets: Vec<Vec<Vec<f64>>> = buckets
            .iter()
            .map(|&b| self.tail_training_rows(b).clone())
            .collect();
        let tail_ms: Vec<RatingMatrix> = lib_row_sets
            .iter()
            .zip(&buckets)
            .enumerate()
            .map(|(lc, (lib_rows, &bucket))| {
                let mut tail_m = RatingMatrix::new(lib_rows.len() + 1, cols);
                for (r, row) in lib_rows.iter().enumerate() {
                    tail_m.fill_row(r, row);
                }
                if let Some(obs) = self.tail_obs[lc].get(&bucket) {
                    for (&c, &v) in obs {
                        tail_m.set(lib_rows.len(), c, v);
                    }
                }
                tail_m
            })
            .collect();

        // Take the priors *out* of the warm state: the completions borrow
        // them immutably while the state waits to receive the new models.
        let (warm_cfg, mut state) = match warm {
            Some((cfg, s)) => {
                if s.generation != self.generation {
                    s.clear();
                    s.generation = self.generation;
                }
                (Some(cfg), Some(s))
            }
            None => (None, None),
        };
        let prior_bips = state.as_mut().and_then(|s| s.bips.take());
        let prior_watts = state.as_mut().and_then(|s| s.watts.take());
        let prior_tails: Vec<Option<SgdModel>> = buckets
            .iter()
            .enumerate()
            .map(|(lc, &b)| state.as_mut().and_then(|s| s.tails.remove(&(lc, b))))
            .collect();

        fn pair<'a>(
            warm_cfg: Option<&'a WarmStartConfig>,
            prior: &'a Option<SgdModel>,
        ) -> Option<(&'a WarmStartConfig, &'a SgdModel)> {
            warm_cfg.and_then(|cfg| prior.as_ref().map(|m| (cfg, m)))
        }
        let mut inputs: Vec<SessionInput<'_>> = vec![
            SessionInput {
                matrix: &bips_m,
                transform: ValueTransform::Log,
                warm: pair(warm_cfg, &prior_bips),
            },
            SessionInput {
                matrix: &watts_m,
                transform: ValueTransform::Log,
                warm: pair(warm_cfg, &prior_watts),
            },
        ];
        for (tail_m, prior) in tail_ms.iter().zip(&prior_tails) {
            inputs.push(SessionInput {
                matrix: tail_m,
                transform: ValueTransform::Log,
                warm: pair(warm_cfg, prior),
            });
        }
        let completed = reconstructor.complete_all_session(pool, &inputs);
        drop(inputs);
        let warm_solves = completed.iter().filter(|c| c.warm_started).count();
        let warm_epochs = completed
            .iter()
            .filter(|c| c.warm_started)
            .map(|c| c.model.epochs)
            .sum();
        if let Some(s) = state {
            s.bips = Some(completed[0].model.clone());
            s.watts = Some(completed[1].model.clone());
            for (lc, &b) in buckets.iter().enumerate() {
                s.tails.insert((lc, b), completed[2 + lc].model.clone());
            }
        }
        let (bips_d, watts_d) = (&completed[0].dense, &completed[1].dense);

        let batch_bips = (0..self.num_batch)
            .map(|j| (0..cols).map(|c| bips_d.get(t_rows + j, c)).collect())
            .collect();
        let batch_watts = (0..self.num_batch)
            .map(|j| (0..cols).map(|c| watts_d.get(t_rows + j, c)).collect())
            .collect();

        let dominates = |a: simulator::JobConfig, b: simulator::JobConfig| {
            a.core.fe >= b.core.fe
                && a.core.be >= b.core.be
                && a.core.ls >= b.core.ls
                && a.cache >= b.cache
        };
        let lc_preds = (0..self.num_lc)
            .map(|lc| {
                let tail_d = &completed[2 + lc].dense;
                let live_row = lib_row_sets[lc].len();
                let watts = (0..cols)
                    .map(|c| watts_d.get(t_rows + self.num_batch + lc, c))
                    .collect();
                let tail: Vec<f64> = (0..cols).map(|c| tail_d.get(live_row, c)).collect();

                // Monotone closure over (neighbour-merged) direct
                // observations: tail latency is monotone in every resource
                // dimension, so an observation at X lower-bounds every
                // configuration X dominates and upper-bounds every
                // configuration dominating X. Upper bounds are applied last
                // — direct evidence of safety trumps interpolation.
                let obs = self.tail_observations_near(lc, buckets[lc]);
                let mut tail_guarded = tail.clone();
                for (&x, &t) in &obs {
                    let xc = simulator::JobConfig::from_index(x);
                    for (c, g) in tail_guarded.iter_mut().enumerate() {
                        let cc = simulator::JobConfig::from_index(c);
                        if c != x && dominates(xc, cc) {
                            *g = g.max(t);
                        }
                    }
                }
                for (&x, &t) in &obs {
                    let xc = simulator::JobConfig::from_index(x);
                    for (c, g) in tail_guarded.iter_mut().enumerate() {
                        let cc = simulator::JobConfig::from_index(c);
                        if c != x && dominates(cc, xc) {
                            *g = g.min(t);
                        }
                    }
                }
                LcPrediction {
                    watts,
                    tail,
                    tail_guarded,
                }
            })
            .collect();

        ReconstructOutcome {
            predictions: Predictions {
                batch_bips,
                batch_watts,
                lc: lc_preds,
            },
            warm_solves,
            warm_epochs,
        }
    }
}

/// Warm solver state carried between quanta by the reconstruct stage.
///
/// One slot each for the throughput and power completions; tail completions
/// are keyed `(tenant, load bucket)` because a bucket change swaps the
/// training rows under the model (the handful of per-bucket models this
/// accumulates is tiny — rank-2 factors over ~21 rows). The state remembers
/// the churn [`JobMatrices::generation`] it was trained at and
/// self-invalidates wholesale when any batch row has been retired since — a
/// deliberate simplification: churn is rare and a spurious cold start only
/// costs one quantum of solver budget.
#[derive(Debug, Default)]
pub struct WarmState {
    generation: u64,
    bips: Option<SgdModel>,
    watts: Option<SgdModel>,
    // lint:allow(DET-HASH-ITER, reason = "keyed lookup/insert/remove only; the map is never iterated, so hasher order cannot reach the SGD sample stream or any decision")
    tails: HashMap<(usize, usize), SgdModel>,
}

impl WarmState {
    /// Discards every stored model; the next quantum cold-starts.
    pub fn clear(&mut self) {
        self.bips = None;
        self.watts = None;
        self.tails.clear();
    }

    /// Whether no model is currently stored.
    pub fn is_empty(&self) -> bool {
        self.bips.is_none() && self.watts.is_none() && self.tails.is_empty()
    }
}

/// What a session reconstruction did, beyond the predictions themselves.
pub struct ReconstructOutcome {
    /// The completed predictions (identical role to what
    /// [`JobMatrices::reconstruct`] returns).
    pub predictions: Predictions,
    /// Completions this quantum that warm-started from a prior model.
    pub warm_solves: usize,
    /// SGD epochs actually run by the warm-started completions.
    pub warm_epochs: usize,
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use simulator::power::CoreKind;
    use simulator::{Chip, JobConfig, SystemParams};
    use workloads::batch;

    fn matrices() -> JobMatrices {
        let oracle = Oracle::new(Chip::new(SystemParams::default(), CoreKind::Reconfigurable));
        let training: Vec<AppProfile> = batch::training_set().iter().map(|b| b.profile).collect();
        JobMatrices::new(oracle, &training, 1, 4)
    }

    fn matrices_two_lc() -> JobMatrices {
        let oracle = Oracle::new(Chip::new(SystemParams::default(), CoreKind::Reconfigurable));
        let training: Vec<AppProfile> = batch::training_set().iter().map(|b| b.profile).collect();
        JobMatrices::new(oracle, &training, 2, 4)
    }

    #[test]
    fn bucketing_covers_the_unit_interval() {
        assert_eq!(bucket_for(0.0), 0);
        assert_eq!(bucket_for(0.004), 0);
        assert_eq!(bucket_for(0.85), 85);
        assert_eq!(bucket_for(0.852), 85);
        assert_eq!(bucket_for(1.0), 100);
        assert_eq!(bucket_for(2.0), 200);
        assert_eq!(bucket_for(5.0), 200);
        assert!((bucket_load(85) - 0.85).abs() < 1e-12);
    }

    #[test]
    fn tail_library_is_diverse_and_valid() {
        let lib = tail_library();
        assert_eq!(lib.len(), 20);
        for svc in &lib {
            svc.profile.validate().unwrap();
        }
        // Variants must not duplicate the original services.
        for orig in latency::services() {
            assert!(lib.iter().all(|v| v.profile != orig.profile));
        }
    }

    #[test]
    fn predictions_recover_unobserved_configs_for_batch_jobs() {
        let mut m = matrices();
        let oracle = Oracle::new(Chip::new(SystemParams::default(), CoreKind::Reconfigurable));
        let app = batch::testing_set()[0].profile;
        let truth = oracle.bips_row(&app);
        let truth_w = oracle.power_row(&app);
        // Two profiling samples, as at runtime.
        for cfg in [
            JobConfig::profiling_high().index(),
            JobConfig::profiling_low().index(),
        ] {
            m.record_sample(1, cfg, truth[cfg], truth_w[cfg]);
        }
        let preds = m.reconstruct(&Reconstructor::default(), &[0.8]);
        let rel_sum: f64 = preds.batch_bips[0]
            .iter()
            .zip(&truth)
            .map(|(p, t)| (p - t).abs() / t)
            .sum();
        let mean_rel = rel_sum / NUM_JOB_CONFIGS as f64;
        assert!(mean_rel < 0.15, "mean relative throughput error {mean_rel}");
    }

    #[test]
    fn tail_predictions_use_the_right_bucket() {
        let mut m = matrices();
        let p_low = m.reconstruct(&Reconstructor::default(), &[0.2]);
        let p_high = m.reconstruct(&Reconstructor::default(), &[0.85]);
        let idx = JobConfig::profiling_low().index();
        assert!(
            p_high.lc[0].tail[idx] > p_low.lc[0].tail[idx],
            "high-load bucket must predict worse tails at the narrow config"
        );
    }

    #[test]
    fn observed_entries_pass_through() {
        let mut m = matrices();
        m.record_sample(1, 5, 2.5, 3.5);
        m.record_tail(0, 0.8, TAIL_REFERENCE_CORES, 7, 4.2);
        let preds = m.reconstruct(&Reconstructor::default(), &[0.8]);
        assert!((preds.batch_bips[0][5] - 2.5).abs() < 1e-12);
        assert!((preds.batch_watts[0][5] - 3.5).abs() < 1e-12);
        assert!((preds.lc[0].tail[7] - 4.2).abs() < 1e-12);
    }

    #[test]
    fn newest_measurement_wins() {
        let mut m = matrices();
        m.record_sample(2, 9, 1.0, 1.0);
        m.record_sample(2, 9, 2.0, 2.0);
        assert_eq!(m.batch_observations(1), 1);
        let preds = m.reconstruct(&Reconstructor::default(), &[0.5]);
        assert!((preds.batch_bips[1][9] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn lc_power_row_learns_from_observations() {
        let mut m = matrices();
        let oracle = Oracle::new(Chip::new(SystemParams::default(), CoreKind::Reconfigurable));
        let svc = latency::service_by_name("moses").unwrap();
        let truth = oracle.power_row(&svc.profile);
        for cfg in [
            JobConfig::profiling_high().index(),
            JobConfig::profiling_low().index(),
        ] {
            m.record_sample(0, cfg, 0.0, truth[cfg]);
        }
        let preds = m.reconstruct(&Reconstructor::default(), &[0.8]);
        let rel_sum: f64 = preds.lc[0]
            .watts
            .iter()
            .zip(&truth)
            .map(|(p, t)| (p - t).abs() / t)
            .sum();
        let mean_rel = rel_sum / NUM_JOB_CONFIGS as f64;
        assert!(mean_rel < 0.2, "mean relative LC power error {mean_rel}");
    }

    #[test]
    #[should_panic(expected = "config index out of range")]
    fn out_of_range_config_rejected() {
        let mut m = matrices();
        m.record_sample(1, 108, 1.0, 1.0);
    }

    #[test]
    fn zero_valued_samples_are_dropped() {
        let mut m = matrices();
        // A gated or unmeasured sample must not poison any matrix row.
        m.record_sample(1, 5, 0.0, 0.0);
        m.record_lc_power(0, 5, 0.0);
        assert_eq!(m.batch_observations(0), 0);
        assert!(m.lc_watts_obs[0].is_empty());
    }

    #[test]
    fn rescaling_applies_the_fluid_core_ratio() {
        let mut m = matrices();
        let preds = m.reconstruct(&Reconstructor::default(), &[0.8]);
        let idx = JobConfig::profiling_high().index();
        // Halving the cores doubles the per-core load ratio and hence the
        // predicted tail; power rows are per-core and fixed.
        let halved = preds.lc[0].rescaled_step(TAIL_REFERENCE_CORES, TAIL_REFERENCE_CORES / 2);
        assert!((halved.tail[idx] - 2.0 * preds.lc[0].tail[idx]).abs() < 1e-12);
        assert!((halved.tail_guarded[idx] - 2.0 * preds.lc[0].tail_guarded[idx]).abs() < 1e-12);
        assert_eq!(halved.watts, preds.lc[0].watts);
        // A step that goes nowhere is the exact identity.
        let same = preds.lc[0].rescaled_step(TAIL_REFERENCE_CORES, TAIL_REFERENCE_CORES);
        assert_eq!(same.tail[idx].to_bits(), preds.lc[0].tail[idx].to_bits());
    }

    #[test]
    fn effective_load_maps_core_deficit_to_the_reference_axis() {
        // 8 cores at 40% load queue like the 16-core reference at 80%.
        assert!((effective_load(0.4, 8) - 0.8).abs() < 1e-15);
        // At the reference count the mapping is the exact identity.
        assert_eq!(effective_load(0.8, 16).to_bits(), 0.8_f64.to_bits());
    }

    #[test]
    fn observations_land_at_the_effective_load_bucket() {
        let mut m = matrices();
        // An 8-core tenant at 40% load runs at the utilization of the
        // reference characterization at 80% — its observation must guard
        // predictions made for that bucket, with the raw magnitude.
        m.record_tail(0, 0.4, 8, 7, 4.2);
        let obs = m.tail_observations_near(0, bucket_for(0.8));
        assert!((obs[&7] - 4.2).abs() < 1e-12);
        assert!(m.tail_observations_near(0, bucket_for(0.4)).is_empty());
    }

    #[test]
    fn two_tenants_keep_separate_tail_and_power_rows() {
        let mut m = matrices_two_lc();
        m.record_tail(0, 0.8, TAIL_REFERENCE_CORES, 7, 4.2);
        m.record_tail(1, 0.8, TAIL_REFERENCE_CORES, 7, 9.9);
        m.record_lc_power(0, 5, 3.0);
        m.record_lc_power(1, 5, 6.0);
        let preds = m.reconstruct(&Reconstructor::default(), &[0.8, 0.8]);
        assert_eq!(preds.lc.len(), 2);
        assert!((preds.lc[0].tail[7] - 4.2).abs() < 1e-12);
        assert!((preds.lc[1].tail[7] - 9.9).abs() < 1e-12);
        assert!((preds.lc[0].watts[5] - 3.0).abs() < 1e-12);
        assert!((preds.lc[1].watts[5] - 6.0).abs() < 1e-12);
    }

    #[test]
    fn tenants_reconstruct_at_their_own_loads() {
        let mut m = matrices_two_lc();
        let idx = JobConfig::profiling_low().index();
        let preds = m.reconstruct(&Reconstructor::default(), &[0.2, 0.9]);
        assert!(
            preds.lc[1].tail[idx] > preds.lc[0].tail[idx],
            "the loaded tenant must see worse narrow-config tails"
        );
    }

    #[test]
    fn retired_batch_rows_start_cold() {
        let mut m = matrices();
        m.record_sample(1, 5, 2.5, 3.5);
        assert_eq!(m.batch_observations(0), 1);
        m.retire_batch(0);
        assert_eq!(m.batch_observations(0), 0);
        let preds = m.reconstruct(&Reconstructor::default(), &[0.8]);
        // Without live observations the row interpolates from training data
        // only — the exact observed value must no longer pass through.
        assert!((preds.batch_bips[0][5] - 2.5).abs() > 1e-9);
    }

    #[test]
    fn session_reconstruct_without_state_matches_plain_reconstruct() {
        let mut a = matrices();
        let mut b = matrices();
        a.record_sample(1, 5, 2.5, 3.5);
        b.record_sample(1, 5, 2.5, 3.5);
        let plain = a.reconstruct(&Reconstructor::default(), &[0.8]);
        let pool = WorkerPool::new(2);
        let session = b.reconstruct_session(&Reconstructor::default(), &[0.8], Some(&pool), None);
        assert_eq!(session.warm_solves, 0);
        assert_eq!(plain.batch_bips, session.predictions.batch_bips);
        assert_eq!(plain.lc[0].tail, session.predictions.lc[0].tail);
    }

    #[test]
    fn warm_state_is_used_and_survives_between_quanta() {
        let mut m = matrices();
        m.record_sample(1, 5, 2.5, 3.5);
        let warm_cfg = WarmStartConfig::default();
        let mut state = WarmState::default();
        let first = m.reconstruct_session(
            &Reconstructor::default(),
            &[0.8],
            None,
            Some((&warm_cfg, &mut state)),
        );
        // Nothing to start from in quantum one; models are now stored.
        assert_eq!(first.warm_solves, 0);
        assert!(!state.is_empty());
        let second = m.reconstruct_session(
            &Reconstructor::default(),
            &[0.8],
            None,
            Some((&warm_cfg, &mut state)),
        );
        // Same shapes, same buckets: all three completions warm-start.
        assert_eq!(second.warm_solves, 3);
        assert!(second.warm_epochs <= 3 * warm_cfg.max_epochs);
    }

    #[test]
    fn churn_generation_invalidates_warm_state() {
        let mut m = matrices();
        m.record_sample(1, 5, 2.5, 3.5);
        let warm_cfg = WarmStartConfig::default();
        let mut state = WarmState::default();
        let _ = m.reconstruct_session(
            &Reconstructor::default(),
            &[0.8],
            None,
            Some((&warm_cfg, &mut state)),
        );
        assert!(!state.is_empty());
        m.retire_batch(0);
        let after = m.reconstruct_session(
            &Reconstructor::default(),
            &[0.8],
            None,
            Some((&warm_cfg, &mut state)),
        );
        // The generation moved: every completion must have cold-started.
        assert_eq!(after.warm_solves, 0);
    }

    #[test]
    fn a_bucket_change_cold_starts_only_the_tail_completion() {
        let mut m = matrices();
        m.record_sample(1, 5, 2.5, 3.5);
        let warm_cfg = WarmStartConfig::default();
        let mut state = WarmState::default();
        let _ = m.reconstruct_session(
            &Reconstructor::default(),
            &[0.8],
            None,
            Some((&warm_cfg, &mut state)),
        );
        let moved = m.reconstruct_session(
            &Reconstructor::default(),
            &[0.5],
            None,
            Some((&warm_cfg, &mut state)),
        );
        // Throughput and power warm-start; the 0.5-load tail bucket is new.
        assert_eq!(moved.warm_solves, 2);
    }
}
