//! The decision quantum as an instrumented stage pipeline.
//!
//! §IV–§VI describe CuttleSys as five consecutive stages per 100 ms
//! quantum — profile, reconstruct, pin the LC configuration, search the
//! batch space, repair against the cap. This module makes that structure
//! explicit: each stage is a trait object behind [`DecisionPipeline`], the
//! driver times every stage with a wall clock, and the resulting
//! [`StageTelemetry`] flows into the run record so Table II-style overhead
//! numbers come from the actual runtime rather than a separate
//! micro-benchmark.
//!
//! With multiple LC tenants the QoS stage walks them in priority order
//! (their order in the scenario): relocation arbitrates cores tenant by
//! tenant, and pinning fixes each tenant's configuration before the search
//! explores the remaining batch dimensions. Batch jobs absent this slice
//! (churn) are excluded from the search space and forced to
//! [`BatchAction::Gated`].
//!
//! [`crate::runtime::CuttleSysManager`] is a composition of the default
//! stage set; ablations swap a single stage (a different search algorithm,
//! a different reconstruction configuration) without touching the rest.
//!
//! Every stage returns `Result<_, StageError>` instead of unwrapping: the
//! profiling stage validates samples (finite, in physical range) with one
//! bounded retry, the reconstruction output passes a sanity gate (NaN /
//! row-divergence check) with a staleness-bounded fall back to the
//! last-good predictions, and an optional per-quantum deadline budget
//! aborts the remaining stages — the manager then replays its last-good
//! decision (see [`crate::faults`] for the degradation ladder).

use std::sync::Arc;
use std::time::Instant;

use baselines::ga::{ga_search, GaParams};
use dds::{parallel_search_in, CachedObjective, ParallelDdsParams, SearchSpace, SoftPenalty};
use recsys::{Reconstructor, WarmStartConfig};
use simulator::{CacheAlloc, CoreConfig, JobConfig, NUM_JOB_CONFIGS};
use util::WorkerPool;

use crate::accounting::{gate_descending_power, PowerAccount};
use crate::faults::{
    poison_predictions, prediction_defects, DecisionError, QuantumFaults, ResilienceConfig,
    StageError,
};
use crate::matrices::{
    bucket_for, effective_load, JobMatrices, LcPrediction, Predictions, WarmState,
};
use crate::telemetry::StageTelemetry;
use crate::types::{
    BatchAction, LcAssignment, Plan, ProfilePlan, ProfileSample, SamplePoint, SliceInfo,
};

/// One LC tenant's core allocation, mutated by the QoS stage's relocation
/// policy (§VI-A: reclaim on measured violations at the widest
/// configuration; relinquish once predictions show slack).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LcAllocation {
    /// Cores currently held by the tenant.
    pub cores: usize,
    /// The scenario's initial allocation — relinquishing never goes below.
    pub min_cores: usize,
}

/// Mutable state the stages operate over. Owned by the manager, borrowed
/// for the duration of one [`DecisionPipeline::decide`] call.
pub struct DecisionCtx<'a> {
    /// Facts about the current timeslice.
    pub info: &'a SliceInfo,
    /// The rating-matrix bookkeeping samples land in.
    pub matrices: &'a mut JobMatrices,
    /// Per-LC-tenant core allocations, in priority order.
    pub lc: &'a mut Vec<LcAllocation>,
    /// The plan of the previous quantum, if any (trust region, reclaim).
    pub last_plan: &'a Option<Plan>,
    /// Number of batch jobs.
    pub num_batch: usize,
    /// Power of a gated core (W).
    pub gated_watts: f64,
    /// Compute-side faults injected into this quantum (NONE by default).
    pub faults: QuantumFaults,
    /// Bounds on the degradation ladder: sample sanity ranges, prediction
    /// staleness, and the per-quantum deadline.
    pub resilience: &'a ResilienceConfig,
    /// The most recent predictions that passed the sanity gate, with their
    /// age in quanta — the reconstruction fallback.
    pub last_good_preds: Option<(&'a Predictions, usize)>,
}

impl DecisionCtx<'_> {
    /// Total cores currently held by LC tenants.
    pub fn total_lc_cores(&self) -> usize {
        self.lc.iter().map(|a| a.cores).sum()
    }

    /// Indices of the batch jobs present this slice.
    pub fn active_batch(&self) -> Vec<usize> {
        (0..self.num_batch)
            .filter(|&j| self.info.batch_active.get(j).copied().unwrap_or(true))
            .collect()
    }

    /// The configuration LC tenant `i` ran in the previous quantum, if any.
    fn last_lc_config(&self, i: usize) -> Option<JobConfig> {
        self.last_plan
            .as_ref()
            .and_then(|p| p.lc.get(i))
            .map(|a| a.config)
    }
}

/// A probe callback: runs a profiling frame, consuming its duration from
/// the slice, and returns the measurements.
pub type Probe<'a> = dyn FnMut(&ProfilePlan, f64) -> ProfileSample + 'a;

/// Stage 1: run profiling frames and record their samples.
pub trait ProfileStage {
    /// Issues frames through `probe` and folds validated samples into
    /// `ctx.matrices`.
    ///
    /// # Errors
    ///
    /// Fails when no sample of the quantum survives validation, even after
    /// the bounded retry.
    fn profile(
        &mut self,
        ctx: &mut DecisionCtx,
        probe: &mut Probe,
        tel: &mut StageTelemetry,
    ) -> Result<(), StageError>;
}

/// Stage 2: complete the rating matrices into dense predictions.
pub trait ReconstructStage {
    /// Returns predictions at the tail library's reference core count.
    ///
    /// # Errors
    ///
    /// Fails when the solve cannot run at all; a solve that *diverges* is
    /// returned as-is and caught by the pipeline's sanity gate.
    fn reconstruct(
        &mut self,
        ctx: &mut DecisionCtx,
        tel: &mut StageTelemetry,
    ) -> Result<Predictions, StageError>;

    /// Drops any warm-start state carried between quanta. The pipeline
    /// calls this when the sanity gate rejects a reconstruction, so a
    /// diverged model is never refined into the next quantum. The default
    /// is a no-op for stages that keep no such state.
    fn discard_warm_state(&mut self) {}
}

/// Stage 3: core relocation and LC configuration pinning (§VI-A).
pub trait QosStage {
    /// Pre-profiling half: reclaim cores after measured violations that
    /// reconfiguration alone cannot fix. Runs before stage 1 so the frames
    /// profile the post-relocation layout.
    ///
    /// # Errors
    ///
    /// Fails when the slice info does not describe a tenant it needs.
    fn relocate(
        &mut self,
        ctx: &mut DecisionCtx,
        tel: &mut StageTelemetry,
    ) -> Result<(), StageError>;

    /// Post-reconstruction half: relinquish reclaimed cores when
    /// predictions show slack, rescale each tenant's tail row to its final
    /// core count, and pin every tenant's configuration in priority order.
    /// Returns the pinned configurations and the rescaled predictions the
    /// later stages use.
    ///
    /// # Errors
    ///
    /// Fails when the slice info or predictions are missing a tenant.
    fn pin(
        &mut self,
        ctx: &mut DecisionCtx,
        preds: &Predictions,
        tel: &mut StageTelemetry,
    ) -> Result<(Vec<JobConfig>, Predictions), StageError>;
}

/// Stage 4: search the batch jobs' configuration space.
pub trait SearchStage {
    /// Returns the best configuration index per batch job (entries for
    /// absent jobs are placeholders — stage 5 gates them).
    ///
    /// # Errors
    ///
    /// Fails when the search cannot evaluate its objective.
    fn search(
        &mut self,
        ctx: &DecisionCtx,
        preds: &Predictions,
        lc_configs: &[JobConfig],
        tel: &mut StageTelemetry,
    ) -> Result<Vec<usize>, StageError>;
}

/// Stage 5: enforce the cap when even the narrowest plan misses it (§VI-B).
pub trait RepairStage {
    /// Turns the searched point into batch actions, gating if necessary.
    ///
    /// # Errors
    ///
    /// Fails when the searched point does not match the slice's jobs.
    fn repair(
        &mut self,
        ctx: &DecisionCtx,
        preds: &Predictions,
        lc_configs: &[JobConfig],
        point: &[usize],
        tel: &mut StageTelemetry,
    ) -> Result<Vec<BatchAction>, StageError>;
}

/// The instrumented five-stage driver.
pub struct DecisionPipeline {
    /// Stage 1: profiling.
    pub profile: Box<dyn ProfileStage + Send>,
    /// Stage 2: matrix completion.
    pub reconstruct: Box<dyn ReconstructStage + Send>,
    /// Stage 3: QoS (relocation + pinning).
    pub qos: Box<dyn QosStage + Send>,
    /// Stage 4: batch search.
    pub search: Box<dyn SearchStage + Send>,
    /// Stage 5: power-cap repair.
    pub repair: Box<dyn RepairStage + Send>,
}

/// Checks the per-quantum deadline budget after a stage: wall-clock since
/// the quantum began plus any injected stall. Marks the telemetry and
/// fails so the driver skips the remaining stages.
fn check_deadline(
    start: Instant,
    tel: &mut StageTelemetry,
    budget_ms: f64,
    stage: &'static str,
) -> Result<(), StageError> {
    let consumed_ms = start.elapsed().as_secs_f64() * 1e3 + tel.degradation.injected_stall_ms;
    if consumed_ms > budget_ms {
        tel.degradation.deadline_exceeded = true;
        return Err(StageError::DeadlineExceeded {
            stage,
            consumed_ms,
            budget_ms,
        });
    }
    Ok(())
}

impl DecisionPipeline {
    /// Runs the five stages in order, timing each into `tel`, and returns
    /// the plan and the predictions it was built from.
    ///
    /// Telemetry is accumulated through the borrowed `tel` so the stages
    /// that *did* run stay visible even when a later stage fails. Between
    /// stages the driver checks the quantum's deadline budget, and the
    /// reconstruction output passes a sanity gate with a staleness-bounded
    /// fallback to the last-good predictions.
    ///
    /// # Errors
    ///
    /// Returns the first [`StageError`] encountered (wrapped in
    /// [`DecisionError::Stage`]); the caller is expected to degrade to its
    /// last-good decision or the safe-mode allocation.
    pub fn decide(
        &mut self,
        ctx: &mut DecisionCtx,
        probe: &mut Probe,
        tel: &mut StageTelemetry,
    ) -> Result<(Plan, Predictions), DecisionError> {
        // Wall-clock reads below are the quantum's *budget* clock: they feed
        // stage telemetry and the deadline check (a real-time bound from the
        // paper's 100ms quantum), never the plan itself — every stage output
        // is a pure function of ctx/probe state.
        // lint:allow(DET-TAINT, reason = "wall-ms telemetry is diagnostic: plans and golden-record comparisons never read it — numerically invisible, like the PR-4 warm start")
        // lint:allow(DET-WALLCLOCK, reason = "deadline budget for the 100ms quantum; timing feeds telemetry and abort-on-overrun, not plan content")
        let start = Instant::now();
        let budget = ctx.resilience.deadline_ms;

        // lint:allow(DET-TAINT, reason = "wall-ms telemetry is diagnostic: plans and golden-record comparisons never read it — numerically invisible, like the PR-4 warm start")
        // lint:allow(DET-WALLCLOCK, reason = "stage wall-time telemetry only")
        let t = Instant::now();
        self.qos.relocate(ctx, tel)?;
        tel.qos_wall_ms += t.elapsed().as_secs_f64() * 1e3;
        check_deadline(start, tel, budget, "qos")?;

        // lint:allow(DET-TAINT, reason = "wall-ms telemetry is diagnostic: plans and golden-record comparisons never read it — numerically invisible, like the PR-4 warm start")
        // lint:allow(DET-WALLCLOCK, reason = "stage wall-time telemetry only")
        let t = Instant::now();
        self.profile.profile(ctx, probe, tel)?;
        tel.profile_wall_ms += t.elapsed().as_secs_f64() * 1e3;
        check_deadline(start, tel, budget, "profile")?;

        // lint:allow(DET-TAINT, reason = "wall-ms telemetry is diagnostic: plans and golden-record comparisons never read it — numerically invisible, like the PR-4 warm start")
        // lint:allow(DET-WALLCLOCK, reason = "stage wall-time telemetry only")
        let t = Instant::now();
        let mut raw = self.reconstruct.reconstruct(ctx, tel)?;
        tel.reconstruct_wall_ms += t.elapsed().as_secs_f64() * 1e3;
        // Sanity gate: a diverged solve (NaN, out-of-physical-range rows)
        // must not reach the QoS scan. Last-good predictions substitute
        // while they are fresh enough.
        let defects = prediction_defects(&raw, ctx.resilience);
        if defects > 0 {
            // A diverged solve must not seed the next quantum's warm start.
            self.reconstruct.discard_warm_state();
            match ctx.last_good_preds {
                Some((lg, age)) if age <= ctx.resilience.staleness_bound => {
                    tel.degradation.reconstruct_fallback = true;
                    tel.degradation.stale_age = tel.degradation.stale_age.max(age);
                    raw = lg.clone();
                }
                Some((_, age)) => {
                    return Err(StageError::PredictionsStale {
                        age,
                        bound: ctx.resilience.staleness_bound,
                    }
                    .into())
                }
                None => {
                    return Err(StageError::ReconstructionDiverged {
                        bad_values: defects,
                    }
                    .into())
                }
            }
        }
        check_deadline(start, tel, budget, "reconstruct")?;

        // lint:allow(DET-TAINT, reason = "wall-ms telemetry is diagnostic: plans and golden-record comparisons never read it — numerically invisible, like the PR-4 warm start")
        // lint:allow(DET-WALLCLOCK, reason = "stage wall-time telemetry only")
        let t = Instant::now();
        let (lc_configs, preds) = self.qos.pin(ctx, &raw, tel)?;
        tel.qos_wall_ms += t.elapsed().as_secs_f64() * 1e3;
        check_deadline(start, tel, budget, "qos")?;

        // lint:allow(DET-TAINT, reason = "wall-ms telemetry is diagnostic: plans and golden-record comparisons never read it — numerically invisible, like the PR-4 warm start")
        // lint:allow(DET-WALLCLOCK, reason = "stage wall-time telemetry only")
        let t = Instant::now();
        let point = self.search.search(ctx, &preds, &lc_configs, tel)?;
        tel.search_wall_ms += t.elapsed().as_secs_f64() * 1e3;
        check_deadline(start, tel, budget, "search")?;

        // lint:allow(DET-TAINT, reason = "wall-ms telemetry is diagnostic: plans and golden-record comparisons never read it — numerically invisible, like the PR-4 warm start")
        // lint:allow(DET-WALLCLOCK, reason = "stage wall-time telemetry only")
        let t = Instant::now();
        let batch = self.repair.repair(ctx, &preds, &lc_configs, &point, tel)?;
        tel.repair_wall_ms += t.elapsed().as_secs_f64() * 1e3;

        let plan = Plan {
            lc: ctx
                .lc
                .iter()
                .zip(&lc_configs)
                .map(|(a, &config)| LcAssignment {
                    cores: a.cores,
                    config,
                })
                .collect(),
            batch,
        };
        Ok((plan, preds))
    }
}

/// Validates one profiling sample against the physical sanity ranges.
/// Returns the sample with any invalid field zeroed (so the matrices skip
/// it) and the count of rejected fields, or `None` when nothing in the
/// sample is usable.
fn sanitize_sample(s: &SamplePoint, cfg: &ResilienceConfig) -> (Option<SamplePoint>, usize) {
    let ok = |v: f64, max: f64| v.is_finite() && (0.0..=max).contains(&v);
    let bips_ok = ok(s.bips, cfg.max_bips);
    let watts_ok = ok(s.watts, cfg.max_watts);
    let rejected = usize::from(!bips_ok) + usize::from(!watts_ok);
    if !bips_ok && !watts_ok {
        return (None, rejected);
    }
    let mut clean = *s;
    if !bips_ok {
        clean.bips = 0.0;
    }
    if !watts_ok {
        clean.watts = 0.0;
    }
    (Some(clean), rejected)
}

/// Total predicted LC power of the pinned configurations (W).
fn lc_watts_total(ctx: &DecisionCtx, preds: &Predictions, lc_configs: &[JobConfig]) -> f64 {
    ctx.lc
        .iter()
        .zip(lc_configs)
        .zip(&preds.lc)
        .map(|((a, config), lc)| a.cores as f64 * lc.watts[config.index()])
        .sum()
}

/// The fixed per-core power components of the current split, from every LC
/// tenant's predicted Watts at its pinned configuration.
fn account_for(ctx: &DecisionCtx, preds: &Predictions, lc_configs: &[JobConfig]) -> PowerAccount {
    PowerAccount::for_split(
        ctx.info.num_cores,
        ctx.total_lc_cores(),
        ctx.active_batch().len(),
        lc_watts_total(ctx, preds, lc_configs),
        ctx.gated_watts,
    )
}

/// §VIII-A1: two 1 ms frames in which half the cores run the widest-issue
/// configuration and half the narrowest (swapped in the second frame, to
/// avoid a chip-wide power overshoot), each job holding one LLC way.
#[derive(Debug, Default)]
pub struct SplitHalvesProfile;

impl ProfileStage for SplitHalvesProfile {
    fn profile(
        &mut self,
        ctx: &mut DecisionCtx,
        probe: &mut Probe,
        tel: &mut StageTelemetry,
    ) -> Result<(), StageError> {
        let high = JobConfig::profiling_high();
        let low = JobConfig::profiling_low();
        let mut valid_total = 0usize;
        let mut rejected_total = 0usize;
        for swap in [false, true] {
            let lc_configs: Vec<Vec<JobConfig>> = ctx
                .lc
                .iter()
                .map(|a| {
                    (0..a.cores)
                        .map(|i| if (i < a.cores / 2) ^ swap { high } else { low })
                        .collect()
                })
                .collect();
            let batch: Vec<BatchAction> = (0..ctx.num_batch)
                .map(|j| {
                    if !ctx.info.batch_active.get(j).copied().unwrap_or(true) {
                        return BatchAction::Gated;
                    }
                    BatchAction::Run(if (j < ctx.num_batch / 2) ^ swap {
                        high
                    } else {
                        low
                    })
                })
                .collect();
            // One bounded retry: if every sample of a frame is rejected
            // (a sensor blackout rather than ordinary loss), the frame is
            // reissued once before the stage gives up.
            let mut attempts = 0;
            loop {
                attempts += 1;
                let sample = probe(
                    &ProfilePlan {
                        lc_configs: lc_configs.clone(),
                        batch: batch.clone(),
                    },
                    1.0,
                );
                tel.profile_sim_ms += sample.duration_ms;
                let mut valid = 0usize;
                for s in &sample.samples {
                    let (clean, rejected) = sanitize_sample(s, ctx.resilience);
                    rejected_total += rejected;
                    if let Some(c) = clean {
                        ctx.matrices
                            .record_sample(c.job, c.config.index(), c.bips, c.watts);
                        valid += 1;
                        tel.samples_recorded += 1;
                    }
                }
                valid_total += valid;
                if valid > 0 || attempts > 1 {
                    break;
                }
                tel.degradation.sample_retries += 1;
            }
        }
        tel.degradation.samples_rejected += rejected_total;
        if valid_total == 0 {
            return Err(StageError::NoValidSamples {
                rejected: rejected_total,
            });
        }
        Ok(())
    }
}

/// §V: collaborative-filtering completion of the rating matrices via
/// parallel SGD.
pub struct CfReconstruct {
    reconstructor: Reconstructor,
    pool: Option<Arc<WorkerPool>>,
    warm: Option<(WarmStartConfig, WarmState)>,
}

impl CfReconstruct {
    /// Wraps a configured reconstructor. Solves spawn their own threads and
    /// cold-start every quantum; see [`CfReconstruct::with_pool`] and
    /// [`CfReconstruct::with_warm_start`].
    pub fn new(reconstructor: Reconstructor) -> CfReconstruct {
        CfReconstruct {
            reconstructor,
            pool: None,
            warm: None,
        }
    }

    /// Runs the parallel solves on a shared long-lived worker pool instead
    /// of spawning threads per quantum. Numerically invisible: HOGWILD is
    /// racy either way, and the serial path does not change.
    #[must_use]
    pub fn with_pool(mut self, pool: Option<Arc<WorkerPool>>) -> CfReconstruct {
        self.pool = pool;
        self
    }

    /// Keeps each quantum's factor models and refines them with a short
    /// decayed-learning-rate schedule next quantum instead of cold-starting.
    /// State self-invalidates on job churn (matrix generation) and is
    /// discarded whenever the pipeline's sanity gate trips.
    #[must_use]
    pub fn with_warm_start(mut self, warm: Option<WarmStartConfig>) -> CfReconstruct {
        self.warm = warm.map(|cfg| (cfg, WarmState::default()));
        self
    }
}

impl ReconstructStage for CfReconstruct {
    fn reconstruct(
        &mut self,
        ctx: &mut DecisionCtx,
        tel: &mut StageTelemetry,
    ) -> Result<Predictions, StageError> {
        // An injected stall burns wall-clock budget without changing the
        // result; the deadline check after this stage accounts for it.
        if ctx.faults.reconstruct_stall_ms > 0.0 {
            tel.degradation.injected_stall_ms += ctx.faults.reconstruct_stall_ms;
        }
        // Hogwild SGD runs a fixed epoch count per matrix; throughput and
        // power complete once per quantum, tails once per LC tenant. Each
        // tenant's tail row is completed at the effective load of the cores
        // it holds after relocation, the axis its observations live on.
        let loads: Vec<f64> = ctx
            .info
            .lc
            .iter()
            .zip(ctx.lc.iter())
            .map(|(l, a)| effective_load(l.load, a.cores))
            .collect();
        let outcome = ctx.matrices.reconstruct_session(
            &self.reconstructor,
            &loads,
            self.pool.as_deref(),
            self.warm.as_mut().map(|(cfg, state)| (&*cfg, state)),
        );
        // Warm solves run a short refinement schedule; cold solves run the
        // full epoch budget. With warm start off this reduces to the old
        // `(2 + tenants) * max_iters` accounting exactly.
        tel.sgd_epochs += (2 + loads.len() - outcome.warm_solves)
            * self.reconstructor.config.max_iters
            + outcome.warm_epochs;
        tel.warm_solves += outcome.warm_solves;
        let mut preds = outcome.predictions;
        // An injected divergence poisons the output with NaN — the
        // pipeline's sanity gate is expected to catch exactly this.
        if ctx.faults.reconstruct_diverge {
            poison_predictions(&mut preds);
        }
        Ok(preds)
    }

    fn discard_warm_state(&mut self) {
        if let Some((_, state)) = &mut self.warm {
            state.clear();
        }
    }
}

/// §VI-A: trust-region pinning with the reclaim/relinquish relocation
/// policy, applied per tenant in priority order.
#[derive(Debug, Clone, Copy)]
pub struct TrustRegionQos {
    /// Relinquish threshold: yield a reclaimed core when the predicted tail
    /// has at least this much slack (§VI-A: 20 %).
    pub slack: f64,
    /// QoS headroom: a configuration is considered safe when its predicted
    /// tail is below `headroom × QoS`, absorbing reconstruction error.
    pub headroom: f64,
}

impl Default for TrustRegionQos {
    fn default() -> TrustRegionQos {
        TrustRegionQos {
            slack: 0.2,
            headroom: 0.9,
        }
    }
}

impl TrustRegionQos {
    /// Pins one tenant's configuration from its reconstructed tail row.
    /// Returns `(config, met_qos)`.
    ///
    /// Among configurations predicted to meet QoS (with headroom), the scan
    /// minimizes predicted power, breaking ties toward smaller cache
    /// allocations — at tight caps the tenant's Watts are the binding
    /// resource; its ways only matter as a tiebreak against the batch jobs'
    /// cache demand.
    pub fn pin_lc_config(
        &self,
        lc: &LcPrediction,
        qos_ms: f64,
        last_config: Option<JobConfig>,
    ) -> (JobConfig, bool) {
        let mut best: Option<(JobConfig, f64)> = None;
        // Trust region: downsizing proceeds at most one step per dimension
        // per timeslice from the previous configuration (widening is
        // unlimited). Gradual descent means a mispredicted step lands just
        // past the previous — observed-safe — configuration, bounding the
        // magnitude of any transient violation.
        let floor =
            last_config.unwrap_or_else(|| JobConfig::new(CoreConfig::widest(), CacheAlloc::Four));
        let within_trust = |jc: JobConfig| {
            jc.core.fe.index() + 1 >= floor.core.fe.index()
                && jc.core.be.index() + 1 >= floor.core.be.index()
                && jc.core.ls.index() + 1 >= floor.core.ls.index()
                && jc.cache.index() + 1 >= floor.cache.index()
        };
        for c in 0..NUM_JOB_CONFIGS {
            if lc.tail_guarded[c] > qos_ms * self.headroom {
                continue;
            }
            let jc = JobConfig::from_index(c);
            if !within_trust(jc) {
                continue;
            }
            let watts = lc.watts[c];
            let better = match &best {
                None => true,
                Some((b, w)) => (watts, jc.cache) < (*w, b.cache),
            };
            if better {
                best = Some((jc, watts));
            }
        }
        match best {
            Some((jc, _)) => (jc, true),
            None => {
                // Nothing meets QoS: run the strongest configuration while
                // the relocation policy reclaims cores.
                (
                    JobConfig::new(CoreConfig::widest(), CacheAlloc::Four),
                    false,
                )
            }
        }
    }
}

impl QosStage for TrustRegionQos {
    fn relocate(
        &mut self,
        ctx: &mut DecisionCtx,
        tel: &mut StageTelemetry,
    ) -> Result<(), StageError> {
        // Reclaim half (§VI-A): a measured QoS violation while already at
        // the widest configuration means reconfiguration alone cannot
        // help — take one core from the batch jobs. Tenants are walked in
        // priority order, each checked against the shared core budget.
        for i in 0..ctx.lc.len() {
            let Some(lc_info) = ctx.info.lc.get(i) else {
                return Err(StageError::MissingTenant { tenant: i });
            };
            if let Some(tail) = lc_info.last_tail_ms {
                if tail > lc_info.qos_ms
                    && ctx.total_lc_cores() + 1 < ctx.info.num_cores
                    && ctx
                        .last_lc_config(i)
                        .is_some_and(|c| c.core == CoreConfig::widest())
                {
                    ctx.lc[i].cores += 1;
                    tel.reclaimed_core = true;
                }
            }
        }
        Ok(())
    }

    fn pin(
        &mut self,
        ctx: &mut DecisionCtx,
        preds: &Predictions,
        tel: &mut StageTelemetry,
    ) -> Result<(Vec<JobConfig>, Predictions), StageError> {
        let mut lc_configs = Vec::with_capacity(ctx.lc.len());
        let mut rescaled_lc = Vec::with_capacity(ctx.lc.len());
        for i in 0..ctx.lc.len() {
            let lc_info = ctx
                .info
                .lc
                .get(i)
                .ok_or(StageError::MissingTenant { tenant: i })?;
            let tenant_preds = preds
                .lc
                .get(i)
                .ok_or(StageError::MissingTenant { tenant: i })?;
            let last_config = ctx.last_lc_config(i);
            // The tenant's predictions were reconstructed at the effective
            // load of this core count; relocation below steps away from it.
            let reconstructed_cores = ctx.lc[i].cores;
            // Relinquish half: a reclaimed core is yielded back as soon as
            // the predictions say one fewer core still meets QoS with slack
            // (measured slack at the chosen configuration is not
            // meaningful — the scan deliberately sits near the headroom
            // boundary).
            if ctx.lc[i].cores > ctx.lc[i].min_cores {
                let fewer = tenant_preds.rescaled_step(reconstructed_cores, ctx.lc[i].cores - 1);
                let (_, met) = self.pin_lc_config(
                    &fewer,
                    lc_info.qos_ms * (1.0 - self.slack / 2.0),
                    last_config,
                );
                if met && lc_info.last_tail_ms.is_some_and(|t| t <= lc_info.qos_ms) {
                    ctx.lc[i].cores -= 1;
                    tel.relinquished_core = true;
                }
            }

            let rescaled = tenant_preds.rescaled_step(reconstructed_cores, ctx.lc[i].cores);
            // First touch of a load region: no observation within ±2 % load
            // means the saturation wall's position is unknown — run the
            // widest configuration for one slice and learn from it (this is
            // also the system's t = 0 state).
            let first_touch = ctx
                .matrices
                .tail_observations_near(
                    i,
                    bucket_for(effective_load(lc_info.load, ctx.lc[i].cores)),
                )
                .is_empty();
            let (config, _met) = if first_touch {
                (JobConfig::new(CoreConfig::widest(), CacheAlloc::Four), true)
            } else {
                self.pin_lc_config(&rescaled, lc_info.qos_ms, last_config)
            };
            lc_configs.push(config);
            rescaled_lc.push(rescaled);
        }
        let preds = Predictions {
            batch_bips: preds.batch_bips.clone(),
            batch_watts: preds.batch_watts.clone(),
            lc: rescaled_lc,
        };
        Ok((lc_configs, preds))
    }
}

/// Which design-space exploration algorithm drives stage 4.
#[derive(Debug, Clone)]
pub enum SearchAlgo {
    /// The paper's parallel Dynamically Dimensioned Search.
    Dds(ParallelDdsParams),
    /// Genetic algorithm at a matched evaluation budget (Fig. 10 ablation).
    Ga(GaParams),
}

/// §VI-A: the soft power/cache penalty objective over the batch dimensions,
/// explored by DDS or a GA.
pub struct PenaltySearch {
    /// The exploration algorithm.
    pub algo: SearchAlgo,
    pool: Option<Arc<WorkerPool>>,
    cache_evaluations: bool,
}

impl PenaltySearch {
    /// Wraps a search algorithm choice. DDS spawns its own threads and
    /// evaluates uncached; see [`PenaltySearch::with_pool`] and
    /// [`PenaltySearch::with_evaluation_cache`].
    pub fn new(algo: SearchAlgo) -> PenaltySearch {
        PenaltySearch {
            algo,
            pool: None,
            cache_evaluations: false,
        }
    }

    /// Runs DDS worker iterations on a shared long-lived pool. Bit-identical
    /// to the spawning backend at any pool width (the per-logical-worker RNG
    /// streams are independent of physical thread count).
    #[must_use]
    pub fn with_pool(mut self, pool: Option<Arc<WorkerPool>>) -> PenaltySearch {
        self.pool = pool;
        self
    }

    /// Memoizes objective evaluations per quantum, keyed by candidate point.
    /// The objective is pure within a quantum, so cached scores are
    /// bit-identical; hit/miss counts land in [`StageTelemetry`].
    #[must_use]
    pub fn with_evaluation_cache(mut self, on: bool) -> PenaltySearch {
        self.cache_evaluations = on;
        self
    }
}

impl SearchStage for PenaltySearch {
    fn search(
        &mut self,
        ctx: &DecisionCtx,
        preds: &Predictions,
        lc_configs: &[JobConfig],
        tel: &mut StageTelemetry,
    ) -> Result<Vec<usize>, StageError> {
        let lowest = JobConfig::profiling_low().index();
        let active = ctx.active_batch();
        if active.is_empty() {
            return Ok(vec![lowest; ctx.num_batch]);
        }
        let acct = account_for(ctx, preds, lc_configs);
        let base_watts = acct.base_watts();
        let bips = &preds.batch_bips;
        let watts = &preds.batch_watts;
        let lc_ways: f64 = lc_configs.iter().map(|c| c.cache.ways()).sum();
        let num_active = active.len();
        let jobs = active.clone();
        let jobs_b = active.clone();
        let jobs_c = active.clone();
        let objective = SoftPenalty {
            benefit: move |x: &[usize]| {
                let log_sum: f64 = x
                    .iter()
                    .zip(&jobs)
                    .map(|(&c, &j)| bips[j][c].max(1e-9).ln())
                    .sum();
                (log_sum / num_active as f64).exp()
            },
            power: move |x: &[usize]| {
                base_watts
                    + x.iter()
                        .zip(&jobs_b)
                        .map(|(&c, &j)| watts[j][c])
                        .sum::<f64>()
            },
            cache_ways: move |x: &[usize]| {
                lc_ways
                    + x.iter()
                        .map(|&c| JobConfig::from_index(c).cache.ways())
                        .sum::<f64>()
            },
            max_power: ctx.info.cap_watts,
            max_ways: 32.0,
            penalty_power: 2.0,
            penalty_cache: 2.0,
        };
        let space = SearchSpace::new(num_active, NUM_JOB_CONFIGS);
        let result = match &self.algo {
            SearchAlgo::Dds(params) => {
                if self.cache_evaluations {
                    let cached = CachedObjective::new(&objective);
                    let result = parallel_search_in(self.pool.as_deref(), &space, &cached, params);
                    tel.cache_hits += cached.hits();
                    tel.cache_misses += cached.misses();
                    result
                } else {
                    parallel_search_in(self.pool.as_deref(), &space, &objective, params)
                }
            }
            SearchAlgo::Ga(params) => ga_search(&space, &objective, params),
        };
        tel.search_evaluations += result.evaluations;
        // Scatter the active-job point back to global batch indices;
        // departed slots carry a placeholder that stage 5 gates.
        let mut point = vec![lowest; ctx.num_batch];
        for (slot, &j) in jobs_c.iter().enumerate() {
            point[j] = result.best_point[slot];
        }
        Ok(point)
    }
}

/// §VI-B last resort: if the cap is missed even with every batch job at the
/// narrowest configuration, gate batch cores in descending predicted power.
#[derive(Debug, Default)]
pub struct PowerCapRepair;

impl RepairStage for PowerCapRepair {
    fn repair(
        &mut self,
        ctx: &DecisionCtx,
        preds: &Predictions,
        lc_configs: &[JobConfig],
        point: &[usize],
        tel: &mut StageTelemetry,
    ) -> Result<Vec<BatchAction>, StageError> {
        let lowest = JobConfig::profiling_low().index();
        let active = ctx.active_batch();
        let lc_watts = lc_watts_total(ctx, preds, lc_configs);
        let narrowest_watts: Vec<f64> = active
            .iter()
            .map(|&j| preds.batch_watts[j][lowest])
            .collect();
        let lowest_power: f64 = lc_watts + narrowest_watts.iter().sum::<f64>();
        let is_active =
            |j: usize| -> bool { ctx.info.batch_active.get(j).copied().unwrap_or(true) };
        if lowest_power <= ctx.info.cap_watts {
            return Ok(point
                .iter()
                .enumerate()
                .map(|(j, &c)| {
                    if is_active(j) {
                        BatchAction::Run(JobConfig::from_index(c))
                    } else {
                        BatchAction::Gated
                    }
                })
                .collect());
        }
        // Not even the narrowest plan fits: start from all-narrowest and
        // gate the hungriest jobs until the predicted power fits.
        let gated = gate_descending_power(
            &narrowest_watts,
            lc_watts,
            ctx.info.cap_watts,
            ctx.gated_watts,
        );
        tel.gated_jobs += gated.iter().filter(|&&g| g).count();
        let mut actions = vec![BatchAction::Gated; ctx.num_batch];
        for (slot, &j) in active.iter().enumerate() {
            if !gated[slot] {
                actions[j] = BatchAction::Run(JobConfig::from_index(lowest));
            }
        }
        Ok(actions)
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::types::{LcSliceInfo, SliceInfo};

    const RES: ResilienceConfig = ResilienceConfig {
        deadline_ms: f64::INFINITY,
        staleness_bound: 5,
        breaker_open_after: 3,
        breaker_probe_interval: 4,
        breaker_close_after: 2,
        max_bips: 1e3,
        max_watts: 1e3,
        max_tail_ms: 1e4,
    };

    fn flat_predictions(tail_ms: f64) -> Predictions {
        Predictions {
            batch_bips: vec![vec![1.0; NUM_JOB_CONFIGS]; 4],
            batch_watts: vec![vec![2.0; NUM_JOB_CONFIGS]; 4],
            lc: vec![LcPrediction {
                watts: vec![3.0; NUM_JOB_CONFIGS],
                tail: vec![tail_ms; NUM_JOB_CONFIGS],
                tail_guarded: vec![tail_ms; NUM_JOB_CONFIGS],
            }],
        }
    }

    fn info(cap_watts: f64) -> SliceInfo {
        let service = workloads::latency::service_by_name("xapian").unwrap();
        SliceInfo {
            slice: 5,
            cap_watts,
            num_cores: 32,
            num_batch: 4,
            lc: vec![LcSliceInfo {
                service,
                qos_ms: 10.0,
                load: 0.8,
                last_tail_ms: Some(5.0),
                last_cores: 16,
            }],
            batch_active: vec![true; 4],
        }
    }

    fn test_matrices() -> JobMatrices {
        JobMatrices::new(
            workloads::oracle::Oracle::new(simulator::Chip::new(
                simulator::SystemParams::default(),
                simulator::power::CoreKind::Reconfigurable,
            )),
            &[],
            1,
            4,
        )
    }

    #[test]
    fn pin_minimizes_power_among_safe_configs() {
        let qos = TrustRegionQos::default();
        let mut preds = flat_predictions(1.0);
        // Make one configuration clearly cheapest.
        let cheap = JobConfig::new(CoreConfig::narrowest(), CacheAlloc::One).index();
        preds.lc[0].watts[cheap] = 0.5;
        // With the widest as the previous config, only one-step-down
        // configurations are eligible.
        let widest = JobConfig::new(CoreConfig::widest(), CacheAlloc::Four);
        let (jc, met) = qos.pin_lc_config(&preds.lc[0], 10.0, Some(widest));
        assert!(met);
        // The chosen config must be within one step of widest per dimension.
        assert!(jc.core.fe.index() + 1 >= widest.core.fe.index());
        assert!(jc.core.be.index() + 1 >= widest.core.be.index());
        assert!(jc.core.ls.index() + 1 >= widest.core.ls.index());
        assert!(jc.cache.index() + 1 >= widest.cache.index());
        // And it must be the cheapest within that trust region.
        let best_watts = (0..NUM_JOB_CONFIGS)
            .filter(|&c| {
                let x = JobConfig::from_index(c);
                x.core.fe.index() + 1 >= widest.core.fe.index()
                    && x.core.be.index() + 1 >= widest.core.be.index()
                    && x.core.ls.index() + 1 >= widest.core.ls.index()
                    && x.cache.index() + 1 >= widest.cache.index()
            })
            .map(|c| preds.lc[0].watts[c])
            .fold(f64::INFINITY, f64::min);
        assert!((preds.lc[0].watts[jc.index()] - best_watts).abs() < 1e-12);
    }

    #[test]
    fn pin_trust_region_downsizes_one_step_per_dimension() {
        let qos = TrustRegionQos::default();
        // Every configuration is predicted safe and equally cheap except
        // the narrowest, which is strictly cheapest — the scan wants it.
        let mut preds = flat_predictions(1.0);
        let narrow = JobConfig::new(CoreConfig::narrowest(), CacheAlloc::One);
        preds.lc[0].watts[narrow.index()] = 0.1;
        let widest = JobConfig::new(CoreConfig::widest(), CacheAlloc::Four);
        let (jc, met) = qos.pin_lc_config(&preds.lc[0], 10.0, Some(widest));
        assert!(met);
        assert_ne!(
            jc, narrow,
            "one quantum must not jump straight to the narrowest config"
        );
        // Each dimension moved at most one step down from the floor.
        assert!(jc.core.fe.index() + 1 >= widest.core.fe.index());
        assert!(jc.cache.index() + 1 >= widest.cache.index());
    }

    #[test]
    fn pin_allows_unrestricted_widening() {
        let qos = TrustRegionQos::default();
        // Only the widest configuration is safe; the previous plan was the
        // narrowest. Widening is not trust-limited, so the scan must reach
        // the widest in one quantum.
        let mut preds = flat_predictions(50.0);
        let widest = JobConfig::new(CoreConfig::widest(), CacheAlloc::Four);
        preds.lc[0].tail_guarded[widest.index()] = 1.0;
        let narrow = JobConfig::new(CoreConfig::narrowest(), CacheAlloc::One);
        let (jc, met) = qos.pin_lc_config(&preds.lc[0], 10.0, Some(narrow));
        assert!(met);
        assert_eq!(jc, widest);
    }

    #[test]
    fn pin_falls_back_to_widest_when_nothing_meets_qos() {
        let qos = TrustRegionQos::default();
        let preds = flat_predictions(1000.0);
        let (jc, met) = qos.pin_lc_config(&preds.lc[0], 10.0, None);
        assert!(!met);
        assert_eq!(jc, JobConfig::new(CoreConfig::widest(), CacheAlloc::Four));
    }

    #[test]
    fn repair_keeps_searched_point_when_narrowest_fits() {
        let mut repair = PowerCapRepair;
        let preds = flat_predictions(1.0);
        // lc 16 × 3 W + 4 × 2 W = 56 W, well under a 200 W cap.
        let inf = info(200.0);
        let mut matrices = test_matrices();
        let mut lc = vec![LcAllocation {
            cores: 16,
            min_cores: 16,
        }];
        let last = None;
        let ctx = DecisionCtx {
            info: &inf,
            matrices: &mut matrices,
            lc: &mut lc,
            last_plan: &last,
            num_batch: 4,
            gated_watts: 0.1,
            faults: QuantumFaults::NONE,
            resilience: &RES,
            last_good_preds: None,
        };
        let point = vec![3, 17, 42, 99];
        let mut tel = StageTelemetry::default();
        let actions = repair
            .repair(&ctx, &preds, &[JobConfig::from_index(0)], &point, &mut tel)
            .unwrap();
        let expect: Vec<BatchAction> = point
            .iter()
            .map(|&c| BatchAction::Run(JobConfig::from_index(c)))
            .collect();
        assert_eq!(actions, expect);
        assert_eq!(tel.gated_jobs, 0);
    }

    #[test]
    fn repair_gates_descending_power_until_under_cap() {
        let mut repair = PowerCapRepair;
        let mut preds = flat_predictions(1.0);
        let lowest = JobConfig::profiling_low().index();
        // Distinct narrowest-config powers so the gating order is known.
        for (j, w) in [(0usize, 8.0), (1, 6.0), (2, 4.0), (3, 2.0)] {
            preds.batch_watts[j][lowest] = w;
        }
        // lc 16 × 3 = 48 W + 20 W batch = 68 W against a 60 W cap with
        // 0.5 W gated cores: gating job 0 leaves 60.5, gating job 1 leaves
        // 55 — under the cap, so exactly jobs 0 and 1 gate.
        let inf = info(60.0);
        let mut matrices = test_matrices();
        let mut lc = vec![LcAllocation {
            cores: 16,
            min_cores: 16,
        }];
        let last = None;
        let ctx = DecisionCtx {
            info: &inf,
            matrices: &mut matrices,
            lc: &mut lc,
            last_plan: &last,
            num_batch: 4,
            gated_watts: 0.5,
            faults: QuantumFaults::NONE,
            resilience: &RES,
            last_good_preds: None,
        };
        let mut tel = StageTelemetry::default();
        let actions = repair
            .repair(
                &ctx,
                &preds,
                &[JobConfig::from_index(0)],
                &[0, 0, 0, 0],
                &mut tel,
            )
            .unwrap();
        assert_eq!(actions[0], BatchAction::Gated);
        assert_eq!(actions[1], BatchAction::Gated);
        assert_eq!(actions[2], BatchAction::Run(JobConfig::from_index(lowest)));
        assert_eq!(actions[3], BatchAction::Run(JobConfig::from_index(lowest)));
        assert_eq!(tel.gated_jobs, 2);
    }

    #[test]
    fn repair_gates_everything_at_impossible_caps() {
        let mut repair = PowerCapRepair;
        let preds = flat_predictions(1.0);
        // A 1 W cap cannot be met even fully gated: every job gates.
        let inf = info(1.0);
        let mut matrices = test_matrices();
        let mut lc = vec![LcAllocation {
            cores: 16,
            min_cores: 16,
        }];
        let last = None;
        let ctx = DecisionCtx {
            info: &inf,
            matrices: &mut matrices,
            lc: &mut lc,
            last_plan: &last,
            num_batch: 4,
            gated_watts: 0.5,
            faults: QuantumFaults::NONE,
            resilience: &RES,
            last_good_preds: None,
        };
        let mut tel = StageTelemetry::default();
        let actions = repair
            .repair(
                &ctx,
                &preds,
                &[JobConfig::from_index(0)],
                &[0, 0, 0, 0],
                &mut tel,
            )
            .unwrap();
        assert!(actions.iter().all(|a| *a == BatchAction::Gated));
        assert_eq!(tel.gated_jobs, 4);
    }

    #[test]
    fn repair_gates_departed_jobs_without_counting_them() {
        let mut repair = PowerCapRepair;
        let preds = flat_predictions(1.0);
        let mut inf = info(200.0);
        inf.batch_active[2] = false;
        let mut matrices = test_matrices();
        let mut lc = vec![LcAllocation {
            cores: 16,
            min_cores: 16,
        }];
        let last = None;
        let ctx = DecisionCtx {
            info: &inf,
            matrices: &mut matrices,
            lc: &mut lc,
            last_plan: &last,
            num_batch: 4,
            gated_watts: 0.1,
            faults: QuantumFaults::NONE,
            resilience: &RES,
            last_good_preds: None,
        };
        let mut tel = StageTelemetry::default();
        let actions = repair
            .repair(
                &ctx,
                &preds,
                &[JobConfig::from_index(0)],
                &[3, 17, 42, 99],
                &mut tel,
            )
            .unwrap();
        assert_eq!(actions[2], BatchAction::Gated, "departed slot is gated");
        assert_eq!(actions[0], BatchAction::Run(JobConfig::from_index(3)));
        assert_eq!(tel.gated_jobs, 0, "departure is not a repair gating");
    }

    #[test]
    fn relocate_reclaims_only_at_widest_config() {
        let mut qos = TrustRegionQos::default();
        let mut inf = info(100.0);
        inf.lc[0].last_tail_ms = Some(50.0);
        let mut matrices = test_matrices();
        let widest = JobConfig::new(CoreConfig::widest(), CacheAlloc::Four);
        let narrow = JobConfig::new(CoreConfig::narrowest(), CacheAlloc::One);
        for (config, expect_reclaim) in [(widest, true), (narrow, false)] {
            let mut lc = vec![LcAllocation {
                cores: 16,
                min_cores: 16,
            }];
            let last = Some(Plan::with_single_lc(16, config, vec![]));
            let mut ctx = DecisionCtx {
                info: &inf,
                matrices: &mut matrices,
                lc: &mut lc,
                last_plan: &last,
                num_batch: 4,
                gated_watts: 0.5,
                faults: QuantumFaults::NONE,
                resilience: &RES,
                last_good_preds: None,
            };
            let mut tel = StageTelemetry::default();
            qos.relocate(&mut ctx, &mut tel).unwrap();
            assert_eq!(tel.reclaimed_core, expect_reclaim, "config {config:?}");
            assert_eq!(lc[0].cores, if expect_reclaim { 17 } else { 16 });
        }
    }

    #[test]
    fn relocate_arbitrates_cores_between_two_tenants() {
        let mut qos = TrustRegionQos::default();
        let service = workloads::latency::service_by_name("xapian").unwrap();
        let masstree = workloads::latency::service_by_name("masstree").unwrap();
        // Both tenants violated at the widest config: both reclaim while
        // the shared budget lasts.
        let inf = SliceInfo {
            slice: 5,
            cap_watts: 100.0,
            num_cores: 32,
            num_batch: 4,
            lc: vec![
                LcSliceInfo {
                    service,
                    qos_ms: 6.0,
                    load: 0.8,
                    last_tail_ms: Some(50.0),
                    last_cores: 14,
                },
                LcSliceInfo {
                    service: masstree,
                    qos_ms: 8.0,
                    load: 0.8,
                    last_tail_ms: Some(50.0),
                    last_cores: 14,
                },
            ],
            batch_active: vec![true; 4],
        };
        let mut matrices = JobMatrices::new(
            workloads::oracle::Oracle::new(simulator::Chip::new(
                simulator::SystemParams::default(),
                simulator::power::CoreKind::Reconfigurable,
            )),
            &[],
            2,
            4,
        );
        let widest = JobConfig::new(CoreConfig::widest(), CacheAlloc::Four);
        let mut lc = vec![
            LcAllocation {
                cores: 14,
                min_cores: 14,
            },
            LcAllocation {
                cores: 14,
                min_cores: 14,
            },
        ];
        let last = Some(Plan {
            lc: vec![
                LcAssignment {
                    cores: 14,
                    config: widest,
                },
                LcAssignment {
                    cores: 14,
                    config: widest,
                },
            ],
            batch: vec![],
        });
        let mut ctx = DecisionCtx {
            info: &inf,
            matrices: &mut matrices,
            lc: &mut lc,
            last_plan: &last,
            num_batch: 4,
            gated_watts: 0.5,
            faults: QuantumFaults::NONE,
            resilience: &RES,
            last_good_preds: None,
        };
        let mut tel = StageTelemetry::default();
        qos.relocate(&mut ctx, &mut tel).unwrap();
        // Tenant 0 (higher priority) reclaims to 15; the total is then
        // 29 + 1 < 32, so tenant 1 also reclaims; a second pass would stop
        // at the budget.
        assert_eq!(lc[0].cores, 15);
        assert_eq!(lc[1].cores, 15);
        assert!(tel.reclaimed_core);
    }

    // --- stub stages for driving the hardened driver directly ---

    struct NoopProfile;
    impl ProfileStage for NoopProfile {
        fn profile(
            &mut self,
            _ctx: &mut DecisionCtx,
            _probe: &mut Probe,
            _tel: &mut StageTelemetry,
        ) -> Result<(), StageError> {
            Ok(())
        }
    }

    struct StaticReconstruct(Predictions);
    impl ReconstructStage for StaticReconstruct {
        fn reconstruct(
            &mut self,
            ctx: &mut DecisionCtx,
            tel: &mut StageTelemetry,
        ) -> Result<Predictions, StageError> {
            if ctx.faults.reconstruct_stall_ms > 0.0 {
                tel.degradation.injected_stall_ms += ctx.faults.reconstruct_stall_ms;
            }
            let mut preds = self.0.clone();
            if ctx.faults.reconstruct_diverge {
                poison_predictions(&mut preds);
            }
            Ok(preds)
        }
    }

    struct NarrowestSearch;
    impl SearchStage for NarrowestSearch {
        fn search(
            &mut self,
            ctx: &DecisionCtx,
            _preds: &Predictions,
            _lc_configs: &[JobConfig],
            _tel: &mut StageTelemetry,
        ) -> Result<Vec<usize>, StageError> {
            Ok(vec![JobConfig::profiling_low().index(); ctx.num_batch])
        }
    }

    fn stub_pipeline(preds: Predictions) -> DecisionPipeline {
        DecisionPipeline {
            profile: Box::new(NoopProfile),
            reconstruct: Box::new(StaticReconstruct(preds)),
            qos: Box::new(TrustRegionQos::default()),
            search: Box::new(NarrowestSearch),
            repair: Box::new(PowerCapRepair),
        }
    }

    fn null_probe() -> impl FnMut(&ProfilePlan, f64) -> ProfileSample {
        |_, _| ProfileSample {
            duration_ms: 0.0,
            samples: vec![],
            lc_tails_ms: vec![],
        }
    }

    #[test]
    fn sanity_gate_falls_back_to_fresh_last_good_predictions() {
        let good = flat_predictions(1.0);
        let mut pipeline = stub_pipeline(flat_predictions(1.0));
        let inf = info(200.0);
        let mut matrices = test_matrices();
        let mut lc = vec![LcAllocation {
            cores: 16,
            min_cores: 16,
        }];
        let last = None;
        let mut ctx = DecisionCtx {
            info: &inf,
            matrices: &mut matrices,
            lc: &mut lc,
            last_plan: &last,
            num_batch: 4,
            gated_watts: 0.1,
            faults: QuantumFaults {
                reconstruct_diverge: true,
                ..QuantumFaults::NONE
            },
            resilience: &RES,
            last_good_preds: Some((&good, 2)),
        };
        let mut probe = null_probe();
        let mut tel = StageTelemetry::default();
        let (plan, _) = pipeline.decide(&mut ctx, &mut probe, &mut tel).unwrap();
        assert!(tel.degradation.reconstruct_fallback);
        assert_eq!(tel.degradation.stale_age, 2);
        assert!(tel.degradation.degraded());
        assert_eq!(plan.lc.len(), 1);
    }

    #[test]
    fn sanity_gate_fails_without_or_beyond_last_good() {
        let inf = info(200.0);
        for (last_good_age, expected_stale) in [(None, false), (Some(9), true)] {
            let good = flat_predictions(1.0);
            let mut pipeline = stub_pipeline(flat_predictions(1.0));
            let mut matrices = test_matrices();
            let mut lc = vec![LcAllocation {
                cores: 16,
                min_cores: 16,
            }];
            let last = None;
            let mut ctx = DecisionCtx {
                info: &inf,
                matrices: &mut matrices,
                lc: &mut lc,
                last_plan: &last,
                num_batch: 4,
                gated_watts: 0.1,
                faults: QuantumFaults {
                    reconstruct_diverge: true,
                    ..QuantumFaults::NONE
                },
                resilience: &RES,
                last_good_preds: last_good_age.map(|age| (&good, age)),
            };
            let mut probe = null_probe();
            let mut tel = StageTelemetry::default();
            let err = pipeline
                .decide(&mut ctx, &mut probe, &mut tel)
                .expect_err("diverged reconstruction with no usable fallback");
            match err {
                DecisionError::Stage(StageError::PredictionsStale { age, bound }) => {
                    assert!(expected_stale);
                    assert_eq!(age, 9);
                    assert_eq!(bound, RES.staleness_bound);
                }
                DecisionError::Stage(StageError::ReconstructionDiverged { bad_values }) => {
                    assert!(!expected_stale);
                    assert!(bad_values > 0);
                }
                other => panic!("unexpected error {other:?}"),
            }
            assert_eq!(err.stage(), "reconstruct");
        }
    }

    #[test]
    fn injected_stall_trips_a_finite_deadline() {
        let tight = ResilienceConfig {
            deadline_ms: 100.0,
            ..ResilienceConfig::default()
        };
        let mut pipeline = stub_pipeline(flat_predictions(1.0));
        let inf = info(200.0);
        let mut matrices = test_matrices();
        let mut lc = vec![LcAllocation {
            cores: 16,
            min_cores: 16,
        }];
        let last = None;
        let mut ctx = DecisionCtx {
            info: &inf,
            matrices: &mut matrices,
            lc: &mut lc,
            last_plan: &last,
            num_batch: 4,
            gated_watts: 0.1,
            faults: QuantumFaults {
                reconstruct_stall_ms: 10_000.0,
                ..QuantumFaults::NONE
            },
            resilience: &tight,
            last_good_preds: None,
        };
        let mut probe = null_probe();
        let mut tel = StageTelemetry::default();
        let err = pipeline
            .decide(&mut ctx, &mut probe, &mut tel)
            .expect_err("a 10 s stall must blow a 100 ms budget");
        assert!(matches!(
            err,
            DecisionError::Stage(StageError::DeadlineExceeded {
                stage: "reconstruct",
                ..
            })
        ));
        assert!(tel.degradation.deadline_exceeded);
        assert!(tel.degradation.injected_stall_ms >= 10_000.0);
    }

    #[test]
    fn profile_rejects_invalid_samples_and_errors_when_nothing_survives() {
        let mut stage = SplitHalvesProfile;
        let inf = info(200.0);
        let mut matrices = test_matrices();
        let mut lc = vec![LcAllocation {
            cores: 16,
            min_cores: 16,
        }];
        let last = None;
        let mut ctx = DecisionCtx {
            info: &inf,
            matrices: &mut matrices,
            lc: &mut lc,
            last_plan: &last,
            num_batch: 4,
            gated_watts: 0.1,
            faults: QuantumFaults::NONE,
            resilience: &RES,
            last_good_preds: None,
        };
        let mut frames = 0usize;
        let mut probe = |_: &ProfilePlan, _: f64| {
            frames += 1;
            ProfileSample {
                duration_ms: 1.0,
                samples: vec![SamplePoint {
                    job: 0,
                    config: JobConfig::profiling_high(),
                    bips: f64::NAN,
                    watts: f64::NAN,
                }],
                lc_tails_ms: vec![],
            }
        };
        let mut tel = StageTelemetry::default();
        let err = stage
            .profile(&mut ctx, &mut probe, &mut tel)
            .expect_err("all-NaN samples must fail the stage");
        assert!(matches!(err, StageError::NoValidSamples { rejected: 8 }));
        // Two frames, each retried exactly once.
        assert_eq!(frames, 4);
        assert_eq!(tel.degradation.sample_retries, 2);
        assert_eq!(tel.degradation.samples_rejected, 8);
        assert_eq!(tel.samples_recorded, 0);
    }

    #[test]
    fn profile_salvages_the_finite_field_of_a_half_valid_sample() {
        let mut stage = SplitHalvesProfile;
        let inf = info(200.0);
        let mut matrices = test_matrices();
        let mut lc = vec![LcAllocation {
            cores: 16,
            min_cores: 16,
        }];
        let last = None;
        let mut ctx = DecisionCtx {
            info: &inf,
            matrices: &mut matrices,
            lc: &mut lc,
            last_plan: &last,
            num_batch: 4,
            gated_watts: 0.1,
            faults: QuantumFaults::NONE,
            resilience: &RES,
            last_good_preds: None,
        };
        // Valid bips, blacked-out watts: the sample still counts, only the
        // watts field is rejected.
        let mut probe = |_: &ProfilePlan, _: f64| ProfileSample {
            duration_ms: 1.0,
            samples: vec![SamplePoint {
                job: 1,
                config: JobConfig::profiling_high(),
                bips: 2.0,
                watts: f64::NAN,
            }],
            lc_tails_ms: vec![],
        };
        let mut tel = StageTelemetry::default();
        stage.profile(&mut ctx, &mut probe, &mut tel).unwrap();
        assert_eq!(tel.samples_recorded, 2);
        assert_eq!(tel.degradation.samples_rejected, 2);
        assert_eq!(tel.degradation.sample_retries, 0);
    }
}
