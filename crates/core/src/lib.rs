//! CuttleSys: data-driven resource management for interactive services on
//! reconfigurable multicores.
//!
//! This crate is the paper's primary contribution — the online runtime that
//! every 100 ms decision quantum profiles the co-scheduled jobs for 2 ms,
//! reconstructs their throughput/tail-latency/power across all 108 core and
//! cache configurations with collaborative filtering, and searches the joint
//! configuration space with parallel Dynamically Dimensioned Search, meeting
//! the latency-critical service's QoS and maximizing batch throughput under
//! a power budget.
//!
//! Modules:
//!
//! * [`types`] — the shared vocabulary: scenarios, plans, profiling frames,
//!   per-slice records, and the [`ResourceManager`] trait.
//! * [`testbed`] — the simulated server every resource manager runs on:
//!   timeslice execution, noisy measurements, and ground-truth records.
//! * [`driver`] — the simulation loop as a steppable value
//!   ([`driver::ScenarioDriver`]): one 100 ms slice per call, with batch
//!   jobs injected and drained between steps (runtime churn).
//! * [`lifecycle`] — the tenant lifecycle state machine the control plane
//!   enforces (Registering → … → Retired; illegal transitions are errors).
//! * [`control`] — the sans-io control-plane core ([`control::ControlCore`]):
//!   admission control, lifecycle tracking, step-one-quantum, snapshots.
//! * [`matrices`] — the Resource Controller's rating-matrix bookkeeping:
//!   offline-characterized training rows plus online observations.
//! * [`pipeline`] — the decision quantum as an instrumented five-stage
//!   pipeline (profile → reconstruct → pin → search → repair), with
//!   swappable stage implementations.
//! * [`telemetry`] — per-stage wall-clock timings and work counters,
//!   threaded through the slice records (the source of the Table II
//!   overhead report).
//! * [`accounting`] — plan-level power arithmetic shared by the pipeline
//!   stages and the baseline managers.
//! * [`faults`] — seeded deterministic fault injection ([`FaultPlan`],
//!   [`faults::FaultInjector`]) and the graceful-degradation policy: typed
//!   stage errors, the last-good fallback bounds, and the safe-mode circuit
//!   breaker.
//! * [`runtime`] — the CuttleSys manager itself (§IV–§VI), a composition
//!   of the default pipeline stages wrapped in the degradation ladder.
//! * [`managers`] — baseline managers: no-gating, core-level gating (± way
//!   partitioning), oracle-like and fixed 50-50 asymmetric multicores,
//!   Flicker, and a PID feedback controller.
//!
//! # Quick example
//!
//! ```
//! use cuttlesys::types::Scenario;
//! use cuttlesys::testbed::run_scenario;
//! use cuttlesys::runtime::CuttleSysManager;
//!
//! let scenario = Scenario::quick_demo();
//! let mut manager = CuttleSysManager::for_scenario(&scenario);
//! let record = run_scenario(&scenario, &mut manager);
//! assert_eq!(record.slices.len(), scenario.duration_slices);
//! // Every CuttleSys decision carries per-stage instrumentation.
//! assert!(record.stage_summary().is_some());
//! ```

#![warn(clippy::unwrap_used, clippy::expect_used)]

pub mod accounting;
pub mod control;
pub mod driver;
pub mod faults;
pub mod lifecycle;
pub mod managers;
pub mod matrices;
pub mod pipeline;
pub mod runtime;
pub mod telemetry;
pub mod testbed;
pub mod types;

pub use control::{
    AdmissionError, ControlCore, ControlError, ControlEvent, ControlSnapshot, TenantId, TenantKind,
};
pub use driver::ScenarioDriver;
pub use faults::{DecisionError, FaultInjector, FaultPlan, ResilienceConfig, StageError};
pub use lifecycle::{LifecycleError, LifecycleState, TenantLifecycle};
pub use runtime::{CuttleSysManager, PerfConfig};
pub use testbed::run_scenario;
pub use types::{Plan, ResourceManager, RunRecord, Scenario};

/// Draws a standard normal variate via the Box–Muller transform (shared by
/// the testbed's measurement-noise model).
pub(crate) fn rng_normal(rng: &mut impl rand::RngExt) -> f64 {
    let u1: f64 = rng.random_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.random_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}
