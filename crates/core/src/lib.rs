//! CuttleSys: data-driven resource management for interactive services on
//! reconfigurable multicores.
//!
//! This crate is the paper's primary contribution — the online runtime that
//! every 100 ms decision quantum profiles the co-scheduled jobs for 2 ms,
//! reconstructs their throughput/tail-latency/power across all 108 core and
//! cache configurations with collaborative filtering, and searches the joint
//! configuration space with parallel Dynamically Dimensioned Search, meeting
//! the latency-critical service's QoS and maximizing batch throughput under
//! a power budget.
//!
//! Modules:
//!
//! * [`testbed`] — the simulated server every resource manager runs on:
//!   scenarios (service + SPEC mix + load pattern + power-cap schedule),
//!   timeslice execution, noisy measurements, and per-slice records.
//! * [`matrices`] — the Resource Controller's rating-matrix bookkeeping:
//!   offline-characterized training rows plus online observations.
//! * [`runtime`] — the CuttleSys manager itself (§IV-§VI).
//! * [`managers`] — baseline managers: no-gating, core-level gating (± way
//!   partitioning), oracle-like and fixed 50-50 asymmetric multicores, and
//!   Flicker.
//!
//! # Quick example
//!
//! ```
//! use cuttlesys::testbed::{run_scenario, Scenario};
//! use cuttlesys::runtime::CuttleSysManager;
//!
//! let scenario = Scenario::quick_demo();
//! let mut manager = CuttleSysManager::for_scenario(&scenario);
//! let record = run_scenario(&scenario, &mut manager);
//! assert_eq!(record.slices.len(), scenario.duration_slices);
//! ```

pub mod managers;
pub mod matrices;
pub mod runtime;
pub mod testbed;

pub use runtime::CuttleSysManager;
pub use testbed::{run_scenario, Plan, ResourceManager, RunRecord, Scenario};

/// Draws a standard normal variate via the Box–Muller transform (shared by
/// the testbed's measurement-noise model).
pub(crate) fn rng_normal(rng: &mut impl rand::RngExt) -> f64 {
    let u1: f64 = rng.random_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.random_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}
