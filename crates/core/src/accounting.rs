//! Plan-level power accounting shared by the CuttleSys pipeline stages and
//! the baseline managers.
//!
//! Three pieces of arithmetic recur across the runtime and the
//! gating/Flicker baselines: summing a plan's predicted chip power from its
//! per-core components, gating jobs in descending power until a budget is
//! met (§VI-B's last resort), and netting a profiling frame's energy out of
//! the slice budget so the steady state is planned against what is actually
//! left. They live here so every manager agrees on the arithmetic.

/// Fixed per-core power components of a plan: the latency-critical cores
/// and any cores with no job to run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerAccount {
    /// Total predicted (or measured) power of every LC tenant's cores (W).
    pub lc_watts: f64,
    /// Power of a gated core (W).
    pub gated_watts: f64,
    /// Cores with no job assigned — gated by construction.
    pub idle_cores: usize,
}

impl PowerAccount {
    /// Builds the account for a chip split: `num_cores` total, `lc_cores`
    /// held across all LC tenants (drawing `lc_watts` in total), and
    /// `num_batch` *present* batch jobs on the remainder.
    pub fn for_split(
        num_cores: usize,
        lc_cores: usize,
        num_batch: usize,
        lc_watts: f64,
        gated_watts: f64,
    ) -> PowerAccount {
        let batch_cores = num_cores.saturating_sub(lc_cores);
        PowerAccount {
            lc_watts,
            gated_watts,
            idle_cores: batch_cores.saturating_sub(num_batch),
        }
    }

    /// Power of the LC tenants' cores (W).
    pub fn lc_watts(&self) -> f64 {
        self.lc_watts
    }

    /// Power of the job-less (gated) cores (W).
    pub fn idle_watts(&self) -> f64 {
        self.idle_cores as f64 * self.gated_watts
    }

    /// Fixed power a batch plan sits on top of: LC plus idle cores (W).
    pub fn base_watts(&self) -> f64 {
        self.lc_watts() + self.idle_watts()
    }
}

/// §VI-B's last resort, shared by CuttleSys and Flicker: starting from
/// every batch job running (predicted per-core power `job_watts[j]`) on top
/// of `base_watts`, gate jobs in descending power — replacing each gated
/// job's Watts with `gated_watts` — until the predicted total fits
/// `cap_watts`. Returns the gating mask (`true` = gated).
pub fn gate_descending_power(
    job_watts: &[f64],
    base_watts: f64,
    cap_watts: f64,
    gated_watts: f64,
) -> Vec<bool> {
    let mut gated = vec![false; job_watts.len()];
    let mut power = base_watts + job_watts.iter().sum::<f64>();
    let mut order: Vec<usize> = (0..job_watts.len()).collect();
    order.sort_by(|&a, &b| job_watts[b].total_cmp(&job_watts[a]));
    for j in order {
        if power <= cap_watts {
            break;
        }
        power -= job_watts[j] - gated_watts;
        gated[j] = true;
    }
    gated
}

/// The steady-state power budget left after a profiling prefix.
///
/// A cap constrains the *slice-average* power. A manager that spends
/// `spent_ms` of the `slice_ms` quantum profiling at `spent_watts` must
/// plan its steady state against the remaining energy:
///
/// ```text
/// (cap × slice − spent_watts × spent_ms) / (slice − spent_ms)
/// ```
///
/// Without this correction a high-power profiling frame (e.g. the gating
/// baseline's 1 ms all-widest probe) silently tips the slice average over
/// the cap even when the steady state itself fits. Degenerate inputs
/// (no time left, or a profile so hungry the remainder is negative) clamp
/// to zero.
pub fn steady_state_budget(cap_watts: f64, slice_ms: f64, spent_ms: f64, spent_watts: f64) -> f64 {
    let remaining_ms = slice_ms - spent_ms;
    if remaining_ms <= 0.0 {
        return 0.0;
    }
    ((cap_watts * slice_ms - spent_watts * spent_ms) / remaining_ms).max(0.0)
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn account_sums_components() {
        let acct = PowerAccount::for_split(32, 18, 14, 54.0, 0.5);
        assert_eq!(acct.idle_cores, 0);
        assert!((acct.lc_watts() - 54.0).abs() < 1e-12);
        // Relocating beyond the batch-job count leaves idle cores gated.
        let acct = PowerAccount::for_split(32, 12, 16, 36.0, 0.5);
        assert_eq!(acct.idle_cores, 4);
        assert!((acct.base_watts() - (36.0 + 2.0)).abs() < 1e-12);
    }

    #[test]
    fn gating_stops_exactly_when_under_cap() {
        // base 10 W + jobs 5+4+3+2 W = 24 W against a 17 W cap with 0.5 W
        // gated cores: gating the 5 W job leaves 19.5, gating the 4 W job
        // leaves 16 — under the cap, so exactly two jobs gate.
        let gated = gate_descending_power(&[5.0, 4.0, 3.0, 2.0], 10.0, 17.0, 0.5);
        assert_eq!(gated, vec![true, true, false, false]);
    }

    #[test]
    fn gating_is_a_no_op_when_already_under() {
        let gated = gate_descending_power(&[5.0, 4.0], 1.0, 20.0, 0.5);
        assert_eq!(gated, vec![false, false]);
    }

    #[test]
    fn gating_exhausts_all_jobs_at_impossible_caps() {
        let gated = gate_descending_power(&[5.0, 4.0, 3.0], 100.0, 1.0, 0.5);
        assert_eq!(gated, vec![true, true, true]);
    }

    #[test]
    fn budget_nets_out_profiling_energy() {
        // 100 W cap over 100 ms with 1 ms spent at 150 W: the steady state
        // may use (10000 − 150) / 99 ≈ 99.49 W.
        let b = steady_state_budget(100.0, 100.0, 1.0, 150.0);
        assert!((b - (100.0 * 100.0 - 150.0) / 99.0).abs() < 1e-12);
        // A frugal profile frame leaves more than the cap.
        assert!(steady_state_budget(100.0, 100.0, 1.0, 50.0) > 100.0);
        // No profiling: the budget is the cap.
        assert!((steady_state_budget(100.0, 100.0, 0.0, 0.0) - 100.0).abs() < 1e-12);
    }

    #[test]
    fn budget_clamps_degenerate_inputs() {
        assert_eq!(steady_state_budget(100.0, 100.0, 100.0, 150.0), 0.0);
        assert_eq!(steady_state_budget(1.0, 100.0, 99.0, 200.0), 0.0);
    }
}
