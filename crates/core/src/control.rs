//! The sans-io control-plane core: admission, lifecycle, one quantum at a
//! time.
//!
//! [`ControlCore`] wraps a [`ScenarioDriver`] and a [`CuttleSysManager`]
//! behind the small API a long-lived service needs:
//!
//! * **register / deregister** — batch tenants join and leave at runtime.
//!   Registration passes admission control: the candidate's *worst-case*
//!   power (its peak per-core draw across all 108 configurations, from the
//!   same offline oracle characterization the rating matrices train on)
//!   must fit in the steady-state budget left after every already-admitted
//!   tenant's worst case is committed
//!   ([`crate::accounting::steady_state_budget`]). Rejection is permanent
//!   for that registration: the tenant goes Registering → Retired and the
//!   caller gets [`AdmissionError`].
//! * **step_quantum** — runs one 100 ms decision quantum and settles every
//!   tenant's [`TenantLifecycle`] from what the quantum actually did:
//!   degraded quanta (last-good replay, safe mode, open breaker) move live
//!   tenants to Degraded, an LC tenant whose core reservation changed
//!   passes through Relocating, drained batch jobs retire once their last
//!   slice has run.
//! * **events** — every lifecycle transition, admission rejection, breaker
//!   open/close, and degraded quantum is queued as a [`ControlEvent`];
//!   the service layer drains the queue after each quantum and broadcasts.
//! * **snapshot** — a serializable [`ControlSnapshot`] of the tenant table
//!   (the `/state` endpoint renders it via [`ControlSnapshot::to_json`]).
//!
//! The core is deliberately **sans-io**: it touches no wall clock, spawns
//! no threads, and opens no sockets — every step is a pure function of the
//! scenario seed, the registration sequence, and the manager's decisions.
//! The `service` crate owns the reactor thread, the broadcast bus, and the
//! metrics endpoint; this split is what makes a recorded registration trace
//! replayable bit-for-bit (see `tests/control_plane.rs`).

use simulator::power::CoreKind;
use simulator::Chip;
use util::json::JsonValue;
use workloads::batch::SpecBenchmark;
use workloads::oracle::Oracle;

use crate::accounting::steady_state_budget;
use crate::driver::{DriveError, ScenarioDriver};
use crate::lifecycle::{LifecycleError, LifecycleState, NodeId, RelocationTarget, TenantLifecycle};
use crate::runtime::CuttleSysManager;
use crate::types::{
    BatchJobSpec, JobSpec, ResourceManager, RunRecord, Scenario, SliceRecord, TIMESLICE_MS,
};

/// The profiling window at the head of every quantum (two 1 ms
/// split-halves frames, §VIII-A1). Admission charges this window at the
/// full nominal budget: during profiling the chip runs a configuration
/// pattern the admission check cannot predict.
const PROFILING_MS: f64 = 2.0;

/// Opaque handle to one tenant in a [`ControlCore`]. Ids are never reused:
/// a retired tenant keeps its row in the tenant table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TenantId(usize);

impl TenantId {
    /// The tenant's index in [`ControlCore::tenants`].
    pub fn index(self) -> usize {
        self.0
    }

    /// Reconstructs an id from its tenant-table index (e.g. from a recorded
    /// trace or a parsed snapshot). Ids are assigned in registration order,
    /// which is what makes traces replayable.
    pub fn from_index(index: usize) -> TenantId {
        TenantId(index)
    }
}

impl std::fmt::Display for TenantId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// What kind of job a tenant is, and where it lives in the job tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TenantKind {
    /// An interactive service (declared in the scenario; cannot leave).
    LatencyCritical {
        /// Index among LC tenants (priority order).
        lc_index: usize,
    },
    /// A throughput application (may register and deregister at runtime).
    Batch {
        /// Index among batch jobs.
        batch_index: usize,
    },
}

impl TenantKind {
    /// Stable name for metrics and JSON.
    pub fn name(self) -> &'static str {
        match self {
            TenantKind::LatencyCritical { .. } => "latency_critical",
            TenantKind::Batch { .. } => "batch",
        }
    }
}

/// One row of the control plane's tenant table.
#[derive(Debug, Clone)]
pub struct TenantEntry {
    name: String,
    kind: TenantKind,
    lifecycle: TenantLifecycle,
}

impl TenantEntry {
    /// The tenant's registered name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The tenant's kind and job-table index.
    pub fn kind(&self) -> TenantKind {
        self.kind
    }

    /// The tenant's current lifecycle state.
    pub fn state(&self) -> LifecycleState {
        self.lifecycle.state()
    }

    /// Lifecycle transitions taken so far.
    pub fn transitions(&self) -> usize {
        self.lifecycle.transitions()
    }
}

/// A control-plane occurrence, queued by the core and broadcast by the
/// service layer.
#[derive(Debug, Clone, PartialEq)]
pub enum ControlEvent {
    /// A tenant moved between lifecycle states.
    Lifecycle {
        /// The node whose control plane took the transition.
        node: NodeId,
        /// The tenant.
        tenant: TenantId,
        /// Its registered name.
        name: String,
        /// The state it left.
        from: LifecycleState,
        /// The state it entered.
        to: LifecycleState,
        /// The next-to-run slice when the transition happened.
        slice: usize,
    },
    /// Admission control rejected a registration.
    AdmissionRejected {
        /// The node whose admission control rejected it.
        node: NodeId,
        /// The (retired) tenant row recording the attempt.
        tenant: TenantId,
        /// The candidate's registered name.
        name: String,
        /// Committed + candidate worst-case power (W).
        required_watts: f64,
        /// The steady-state budget it had to fit (W).
        budget_watts: f64,
        /// The next-to-run slice when the rejection happened.
        slice: usize,
    },
    /// The safe-mode circuit breaker opened during a quantum.
    BreakerOpened {
        /// The node whose breaker opened.
        node: NodeId,
        /// The slice whose quantum opened it.
        slice: usize,
    },
    /// The safe-mode circuit breaker closed during a quantum.
    BreakerClosed {
        /// The node whose breaker closed.
        node: NodeId,
        /// The slice whose quantum closed it.
        slice: usize,
    },
    /// A quantum was served from the degradation ladder.
    QuantumDegraded {
        /// The node whose quantum degraded.
        node: NodeId,
        /// The degraded slice.
        slice: usize,
        /// Whether the ladder bottomed out in safe mode.
        safe_mode: bool,
    },
}

impl ControlEvent {
    /// The node whose control plane produced the event.
    pub fn node(&self) -> NodeId {
        match self {
            ControlEvent::Lifecycle { node, .. }
            | ControlEvent::AdmissionRejected { node, .. }
            | ControlEvent::BreakerOpened { node, .. }
            | ControlEvent::BreakerClosed { node, .. }
            | ControlEvent::QuantumDegraded { node, .. } => *node,
        }
    }
}

/// Why admission control rejected a registration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AdmissionError {
    /// The candidate's worst-case power cannot fit in the steady-state
    /// budget next to the already-committed tenants.
    PowerBudgetExceeded {
        /// Committed + candidate worst-case power (W).
        required_watts: f64,
        /// The steady-state budget it had to fit (W).
        budget_watts: f64,
    },
}

impl std::fmt::Display for AdmissionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AdmissionError::PowerBudgetExceeded {
                required_watts,
                budget_watts,
            } => write!(
                f,
                "admission rejected: worst-case {required_watts:.1} W exceeds \
                 steady-state budget {budget_watts:.1} W"
            ),
        }
    }
}

impl std::error::Error for AdmissionError {}

/// A control-plane request that could not be honored.
#[derive(Debug, Clone, PartialEq)]
pub enum ControlError {
    /// No tenant has this id.
    UnknownTenant(TenantId),
    /// The operation applies only to batch tenants (LC tenants are declared
    /// in the scenario and pinned for the life of the service).
    NotABatchTenant(TenantId),
    /// A lifecycle transition the state machine forbids — by construction a
    /// control-plane logic bug, surfaced hard rather than papered over.
    Lifecycle(LifecycleError),
    /// The driver refused a churn request.
    Drive(DriveError),
}

impl std::fmt::Display for ControlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ControlError::UnknownTenant(id) => write!(f, "unknown tenant {id}"),
            ControlError::NotABatchTenant(id) => {
                write!(
                    f,
                    "tenant {id} is latency-critical and cannot be deregistered"
                )
            }
            ControlError::Lifecycle(e) => write!(f, "{e}"),
            ControlError::Drive(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ControlError {}

impl From<LifecycleError> for ControlError {
    fn from(e: LifecycleError) -> ControlError {
        ControlError::Lifecycle(e)
    }
}

impl From<DriveError> for ControlError {
    fn from(e: DriveError) -> ControlError {
        ControlError::Drive(e)
    }
}

/// A serializable view of one tenant for [`ControlSnapshot`].
#[derive(Debug, Clone, PartialEq)]
pub struct TenantSnapshot {
    /// Registered name.
    pub name: String,
    /// `"latency_critical"` or `"batch"`.
    pub kind: &'static str,
    /// Current lifecycle state.
    pub state: LifecycleState,
    /// Lifecycle transitions taken so far.
    pub transitions: usize,
}

/// A point-in-time view of the control plane (the `/state` endpoint).
#[derive(Debug, Clone, PartialEq)]
pub struct ControlSnapshot {
    /// The node this control plane runs on.
    pub node: NodeId,
    /// Index of the next slice to run.
    pub slice: usize,
    /// Whether the manager's safe-mode circuit breaker is open.
    pub breaker_open: bool,
    /// Every tenant ever registered, in registration order.
    pub tenants: Vec<TenantSnapshot>,
}

impl ControlSnapshot {
    /// The snapshot as a JSON document.
    pub fn to_json(&self) -> JsonValue {
        JsonValue::Obj(vec![
            ("node".into(), JsonValue::Str(self.node.to_string())),
            ("slice".into(), JsonValue::Num(self.slice as f64)),
            ("breaker_open".into(), JsonValue::Bool(self.breaker_open)),
            (
                "tenants".into(),
                JsonValue::Arr(
                    self.tenants
                        .iter()
                        .map(|t| {
                            JsonValue::Obj(vec![
                                ("name".into(), JsonValue::Str(t.name.clone())),
                                ("kind".into(), JsonValue::Str(t.kind.to_string())),
                                ("state".into(), JsonValue::Str(t.state.name().to_string())),
                                ("transitions".into(), JsonValue::Num(t.transitions as f64)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

/// The sans-io control plane: a [`ScenarioDriver`], a [`CuttleSysManager`],
/// and the tenant table, stepped one quantum at a time.
pub struct ControlCore {
    node: NodeId,
    driver: ScenarioDriver,
    manager: CuttleSysManager,
    oracle: Oracle,
    tenants: Vec<TenantEntry>,
    prev_lc_cores: Vec<usize>,
    prev_breaker: (usize, usize),
    pending: Vec<ControlEvent>,
}

impl ControlCore {
    /// Builds the control plane over a scenario. Every job the scenario
    /// declares becomes a pre-admitted tenant (Registering → Admitted
    /// immediately): the scenario is the operator's statement of the
    /// intended steady co-location, so admission control applies only to
    /// *runtime* registrations.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as
    /// [`ScenarioDriver::new`] / [`CuttleSysManager::for_scenario`].
    // Declared tenants bypass admission, so these transitions are legal by
    // construction.
    pub fn new(scenario: &Scenario) -> ControlCore {
        ControlCore::on_node(scenario, NodeId::local())
    }

    /// Like [`new`](Self::new), but stamps every event and snapshot with the
    /// given node identity. A cluster coordinator builds one core per node;
    /// single-node deployments use [`new`](Self::new), whose
    /// [`NodeId::local`] identity is node 0 — the two produce bit-identical
    /// records.
    #[allow(clippy::expect_used)]
    pub fn on_node(scenario: &Scenario, node: NodeId) -> ControlCore {
        let mut core = ControlCore {
            node,
            driver: ScenarioDriver::new(scenario),
            manager: CuttleSysManager::for_scenario(scenario),
            oracle: Oracle::new(Chip::new(scenario.params, CoreKind::Reconfigurable)),
            tenants: Vec::new(),
            prev_lc_cores: scenario.lc_jobs().iter().map(|lc| lc.cores).collect(),
            prev_breaker: (0, 0),
            pending: Vec::new(),
        };
        for (i, lc) in scenario.lc_jobs().iter().enumerate() {
            let id = core.push_tenant(
                format!("{}#{i}", lc.service.name),
                TenantKind::LatencyCritical { lc_index: i },
            );
            core.transition(id, LifecycleState::Admitted)
                .expect("declared tenant admission is legal");
        }
        for (j, b) in scenario.batch_jobs().iter().enumerate() {
            let id = core.push_tenant(
                format!("{}#{j}", b.app.name),
                TenantKind::Batch { batch_index: j },
            );
            core.transition(id, LifecycleState::Admitted)
                .expect("declared tenant admission is legal");
        }
        core
    }

    fn push_tenant(&mut self, name: String, kind: TenantKind) -> TenantId {
        let id = TenantId(self.tenants.len());
        self.tenants.push(TenantEntry {
            name,
            kind,
            lifecycle: TenantLifecycle::new(),
        });
        id
    }

    /// Applies `id → to`, queuing the lifecycle event.
    fn transition(&mut self, id: TenantId, to: LifecycleState) -> Result<(), ControlError> {
        let slice = self.driver.next_slice();
        let entry = self
            .tenants
            .get_mut(id.0)
            .ok_or(ControlError::UnknownTenant(id))?;
        let from = entry.lifecycle.state();
        entry.lifecycle.transition(to)?;
        self.pending.push(ControlEvent::Lifecycle {
            node: self.node,
            tenant: id,
            name: entry.name.clone(),
            from,
            to,
            slice,
        });
        Ok(())
    }

    /// Like [`transition`](Self::transition) but a no-op (and no event)
    /// when the tenant is already in `to`'s state kind (a tenant relocating
    /// toward another node stays put when a quantum re-settles it as
    /// relocating locally).
    fn settle(&mut self, id: TenantId, to: LifecycleState) -> Result<(), ControlError> {
        let state = self
            .tenants
            .get(id.0)
            .ok_or(ControlError::UnknownTenant(id))?
            .lifecycle
            .state();
        if state.same_kind(to) {
            return Ok(());
        }
        self.transition(id, to)
    }

    /// The worst-case steady-state power a tenant can draw: its peak
    /// per-core draw across all configurations (from the oracle
    /// characterization), times its core reservation for LC tenants.
    fn worst_case_watts(&self, kind: TenantKind) -> f64 {
        let peak = |row: Vec<f64>| row.into_iter().fold(0.0, f64::max);
        match kind {
            TenantKind::LatencyCritical { lc_index } => {
                let lc = self.driver.scenario().lc_jobs()[lc_index];
                lc.cores as f64 * peak(self.oracle.power_row(&lc.service.profile))
            }
            TenantKind::Batch { batch_index } => {
                let b = self.driver.scenario().batch_jobs()[batch_index];
                peak(self.oracle.power_row(&b.app.profile))
            }
        }
    }

    /// Admission arithmetic for a candidate batch app: `(required, budget)`
    /// where `required` is every non-retired tenant's worst case plus the
    /// candidate's, and `budget` is the steady-state power left after the
    /// profiling window is charged at the (candidate-inclusive) nominal
    /// budget.
    fn admission_check(&self, app: SpecBenchmark) -> (f64, f64) {
        let scenario = self.driver.scenario();
        // The nominal budget is defined over the full co-location (§VII-A),
        // so evaluate it as if the candidate were already present.
        let mut hypothetical = scenario.clone();
        hypothetical.jobs.push(JobSpec::Batch(BatchJobSpec {
            app,
            arrive_slice: self.driver.next_slice(),
            depart_slice: None,
        }));
        let nominal = hypothetical.nominal_budget_watts();
        let t_s = self.driver.next_slice() as f64 * TIMESLICE_MS / 1000.0;
        let cap_watts = scenario.cap.load_at(t_s) * nominal;
        let committed: f64 = self
            .tenants
            .iter()
            .filter(|t| {
                let s = t.lifecycle.state();
                s != LifecycleState::Registering && !s.is_terminal()
            })
            .map(|t| self.worst_case_watts(t.kind))
            .sum();
        let candidate = self
            .oracle
            .power_row(&app.profile)
            .into_iter()
            .fold(0.0, f64::max);
        let budget = steady_state_budget(cap_watts, TIMESLICE_MS, PROFILING_MS, nominal);
        (committed + candidate, budget)
    }

    /// Registers a batch tenant at runtime, arriving at the next slice.
    ///
    /// The registration is recorded in the tenant table either way: an
    /// accepted tenant lands in Admitted, a rejected one in Retired (with
    /// an [`ControlEvent::AdmissionRejected`] queued).
    ///
    /// # Errors
    ///
    /// Returns [`AdmissionError`] when the candidate's worst-case power
    /// cannot fit in the steady-state budget.
    // Registering → {Admitted, Retired} are both legal by the table.
    #[allow(clippy::expect_used)]
    pub fn register_batch(
        &mut self,
        name: &str,
        app: SpecBenchmark,
    ) -> Result<TenantId, AdmissionError> {
        let slice = self.driver.next_slice();
        let (required_watts, budget_watts) = self.admission_check(app);
        if required_watts > budget_watts {
            let id = self.push_tenant(
                name.to_string(),
                // The job never materializes; record the index it *would*
                // have taken. The row is terminal, so it is never used to
                // address the job tables.
                TenantKind::Batch {
                    batch_index: self.driver.scenario().num_batch(),
                },
            );
            self.transition(id, LifecycleState::Retired)
                .expect("rejection is legal");
            self.pending.push(ControlEvent::AdmissionRejected {
                node: self.node,
                tenant: id,
                name: name.to_string(),
                required_watts,
                budget_watts,
                slice,
            });
            return Err(AdmissionError::PowerBudgetExceeded {
                required_watts,
                budget_watts,
            });
        }
        let batch_index = self.driver.admit_batch(app);
        let grown = self.manager.admit_batch();
        debug_assert_eq!(batch_index, grown, "driver and manager row counts agree");
        let id = self.push_tenant(name.to_string(), TenantKind::Batch { batch_index });
        self.transition(id, LifecycleState::Admitted)
            .expect("admission is legal");
        Ok(id)
    }

    /// Deregisters a batch tenant: it drains at the next slice boundary and
    /// retires once its last slice has run.
    ///
    /// # Errors
    ///
    /// [`ControlError::NotABatchTenant`] for LC tenants (they are declared
    /// in the scenario and pinned), [`ControlError::Lifecycle`] when the
    /// tenant cannot drain from its current state (e.g. already draining or
    /// retired), [`ControlError::Drive`] when the driver has no running job
    /// at the tenant's index.
    pub fn deregister(&mut self, id: TenantId) -> Result<(), ControlError> {
        let entry = self
            .tenants
            .get(id.0)
            .ok_or(ControlError::UnknownTenant(id))?;
        let batch_index = match entry.kind {
            TenantKind::Batch { batch_index } => batch_index,
            TenantKind::LatencyCritical { .. } => return Err(ControlError::NotABatchTenant(id)),
        };
        let from = entry.lifecycle.state();
        if !from.can_transition(LifecycleState::Draining) {
            return Err(ControlError::Lifecycle(LifecycleError {
                from,
                to: LifecycleState::Draining,
            }));
        }
        self.driver.drain_batch(batch_index)?;
        self.transition(id, LifecycleState::Draining)
    }

    /// Runs one decision quantum and settles every tenant's lifecycle from
    /// what the quantum did. Queued [`ControlEvent`]s are drained with
    /// [`drain_events`](Self::drain_events).
    ///
    /// # Errors
    ///
    /// Returns [`ControlError::Lifecycle`] if settling implies an illegal
    /// transition — a control-plane logic bug, surfaced hard.
    pub fn step_quantum(&mut self) -> Result<SliceRecord, ControlError> {
        let slice = self.driver.next_slice();
        let record = self.driver.step(&mut self.manager).clone();
        let after = self.driver.next_slice();
        let degraded = record
            .telemetry
            .as_ref()
            .is_some_and(|t| t.degradation.degraded());
        let safe_mode = record
            .telemetry
            .as_ref()
            .is_some_and(|t| t.degradation.safe_mode);
        let ran = self.driver.scenario().batch_active(slice);
        let present_next = self.driver.scenario().batch_active(after);

        for i in 0..self.tenants.len() {
            let id = TenantId(i);
            let (kind, state) = {
                let t = &self.tenants[i];
                (t.kind, t.lifecycle.state())
            };
            match kind {
                TenantKind::LatencyCritical { lc_index } => {
                    let cores = record.lc[lc_index].cores;
                    let moved = cores != self.prev_lc_cores[lc_index];
                    self.prev_lc_cores[lc_index] = cores;
                    if state == LifecycleState::Admitted {
                        self.transition(id, LifecycleState::Running)?;
                    }
                    if self.tenants[i].lifecycle.state().is_live() {
                        let target = if degraded {
                            LifecycleState::Degraded
                        } else if moved {
                            LifecycleState::Relocating(RelocationTarget::Local)
                        } else {
                            LifecycleState::Running
                        };
                        self.settle(id, target)?;
                    }
                }
                TenantKind::Batch { batch_index } => {
                    if state == LifecycleState::Admitted
                        && ran.get(batch_index).copied().unwrap_or(false)
                    {
                        self.transition(id, LifecycleState::Running)?;
                    }
                    let state = self.tenants[i].lifecycle.state();
                    if state.is_live() {
                        let target = if degraded {
                            LifecycleState::Degraded
                        } else {
                            LifecycleState::Running
                        };
                        self.settle(id, target)?;
                    } else if state == LifecycleState::Draining
                        && !present_next.get(batch_index).copied().unwrap_or(false)
                    {
                        self.transition(id, LifecycleState::Retired)?;
                    }
                }
            }
        }

        let (opens, closes) = self.manager.breaker_cycles();
        if opens > self.prev_breaker.0 {
            self.pending.push(ControlEvent::BreakerOpened {
                node: self.node,
                slice,
            });
        }
        if closes > self.prev_breaker.1 {
            self.pending.push(ControlEvent::BreakerClosed {
                node: self.node,
                slice,
            });
        }
        self.prev_breaker = (opens, closes);
        if degraded {
            self.pending.push(ControlEvent::QuantumDegraded {
                node: self.node,
                slice,
                safe_mode,
            });
        }
        Ok(record)
    }

    /// Drains every non-terminal tenant to Retired: batch jobs are drained
    /// through the driver, LC tenants are released directly (the run is
    /// over; there is nothing to hand off to).
    ///
    /// # Errors
    ///
    /// Returns [`ControlError::Lifecycle`] if a tenant cannot legally reach
    /// Retired — impossible by the transition table, so any error here is a
    /// logic bug.
    pub fn shutdown(&mut self) -> Result<(), ControlError> {
        for i in 0..self.tenants.len() {
            let id = TenantId(i);
            let state = self.tenants[i].lifecycle.state();
            match state {
                LifecycleState::Retired => {}
                LifecycleState::Registering => self.transition(id, LifecycleState::Retired)?,
                LifecycleState::Draining => self.transition(id, LifecycleState::Retired)?,
                _ => {
                    if let TenantKind::Batch { batch_index } = self.tenants[i].kind {
                        // The job may already have departed (NotRunning);
                        // shutdown retires it either way.
                        let _ = self.driver.drain_batch(batch_index);
                    }
                    self.transition(id, LifecycleState::Draining)?;
                    self.transition(id, LifecycleState::Retired)?;
                }
            }
        }
        Ok(())
    }

    /// Takes every event queued since the previous drain, in order.
    pub fn drain_events(&mut self) -> Vec<ControlEvent> {
        std::mem::take(&mut self.pending)
    }

    /// A point-in-time view of the tenant table.
    pub fn snapshot(&self) -> ControlSnapshot {
        ControlSnapshot {
            node: self.node,
            slice: self.driver.next_slice(),
            breaker_open: self.manager.breaker_open(),
            tenants: self
                .tenants
                .iter()
                .map(|t| TenantSnapshot {
                    name: t.name.clone(),
                    kind: t.kind.name(),
                    state: t.lifecycle.state(),
                    transitions: t.lifecycle.transitions(),
                })
                .collect(),
        }
    }

    /// The node identity stamped on this core's events and snapshots.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// The admission arithmetic for a candidate batch app, without
    /// registering it: `(required_watts, budget_watts)`. A cluster placement
    /// layer calls this on every node to bin-pack a tenant onto the node
    /// with the most worst-case headroom.
    pub fn admission_preview(&self, app: SpecBenchmark) -> (f64, f64) {
        self.admission_check(app)
    }

    /// Scales the offered load of one LC service (cluster load balancing
    /// shifts traffic between replicas of a service on different nodes).
    ///
    /// # Errors
    ///
    /// Returns [`DriveError::UnknownLcService`] when `lc_index` is out of
    /// range.
    pub fn set_lc_traffic_share(&mut self, lc_index: usize, share: f64) -> Result<(), DriveError> {
        self.driver.set_lc_share(lc_index, share)
    }

    /// The current per-LC traffic-share multipliers.
    pub fn lc_traffic_shares(&self) -> &[f64] {
        self.driver.lc_shares()
    }

    /// Every tenant ever registered, in registration order.
    pub fn tenants(&self) -> &[TenantEntry] {
        &self.tenants
    }

    /// One tenant, if the id is valid.
    pub fn tenant(&self, id: TenantId) -> Option<&TenantEntry> {
        self.tenants.get(id.0)
    }

    /// The slice records produced so far.
    pub fn records(&self) -> &[SliceRecord] {
        self.driver.records()
    }

    /// Index of the next slice to run.
    pub fn next_slice(&self) -> usize {
        self.driver.next_slice()
    }

    /// Whether the scenario's declared horizon has been simulated (the
    /// service may keep stepping past it).
    pub fn is_done(&self) -> bool {
        self.driver.is_done()
    }

    /// The scenario as currently constituted (runtime churn included).
    pub fn scenario(&self) -> &Scenario {
        self.driver.scenario()
    }

    /// The manager driving the decisions.
    pub fn manager(&self) -> &CuttleSysManager {
        &self.manager
    }

    /// Consumes the control plane into the completed run record.
    pub fn into_record(self) -> RunRecord {
        let scheme = self.manager.name();
        self.driver.into_record(scheme)
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use workloads::batch;

    fn quiet(slices: usize) -> Scenario {
        Scenario {
            noise: 0.0,
            phases: false,
            duration_slices: slices,
            ..Scenario::quick_demo()
        }
    }

    #[test]
    fn declared_tenants_are_pre_admitted_and_promote_on_first_quantum() {
        let s = quiet(2);
        let mut core = ControlCore::new(&s);
        assert_eq!(core.tenants().len(), s.num_lc() + s.num_batch());
        assert!(core
            .tenants()
            .iter()
            .all(|t| t.state() == LifecycleState::Admitted));
        core.step_quantum().unwrap();
        for t in core.tenants() {
            assert!(t.state().is_live(), "{} is {:?}", t.name(), t.state());
        }
        let events = core.drain_events();
        assert!(events.iter().any(
            |e| matches!(e, ControlEvent::Lifecycle { to, .. } if *to == LifecycleState::Running)
        ));
    }

    /// Zeroes the wall-clock stage timings (and the cache counters that
    /// track wall-clock-budgeted work) so records compare on simulated
    /// quantities only — the same convention as `tests/determinism.rs`.
    fn comparable(mut r: RunRecord) -> RunRecord {
        for s in r.slices.iter_mut() {
            if let Some(t) = s.telemetry.as_mut() {
                t.profile_wall_ms = 0.0;
                t.reconstruct_wall_ms = 0.0;
                t.qos_wall_ms = 0.0;
                t.search_wall_ms = 0.0;
                t.repair_wall_ms = 0.0;
                t.cache_hits = 0;
                t.cache_misses = 0;
            }
        }
        r
    }

    #[test]
    fn stepping_matches_run_scenario_bit_for_bit() {
        let s = Scenario::quick_demo();
        let expected = crate::testbed::run_scenario(&s, &mut CuttleSysManager::for_scenario(&s));
        let mut core = ControlCore::new(&s);
        while !core.is_done() {
            core.step_quantum().unwrap();
        }
        assert_eq!(comparable(core.into_record()), comparable(expected));
    }

    #[test]
    fn deregistered_batch_tenant_drains_then_retires() {
        let mut core = ControlCore::new(&quiet(4));
        core.step_quantum().unwrap();
        let id = core
            .tenants()
            .iter()
            .enumerate()
            .find(|(_, t)| matches!(t.kind(), TenantKind::Batch { .. }))
            .map(|(i, _)| TenantId(i))
            .unwrap();
        core.deregister(id).unwrap();
        assert_eq!(core.tenant(id).unwrap().state(), LifecycleState::Draining);
        // Double deregistration is an explicit lifecycle error.
        assert!(matches!(
            core.deregister(id),
            Err(ControlError::Lifecycle(_))
        ));
        core.step_quantum().unwrap();
        assert_eq!(core.tenant(id).unwrap().state(), LifecycleState::Retired);
    }

    #[test]
    fn lc_tenants_cannot_deregister() {
        let mut core = ControlCore::new(&quiet(2));
        assert_eq!(
            core.deregister(TenantId(0)),
            Err(ControlError::NotABatchTenant(TenantId(0)))
        );
    }

    #[test]
    fn runtime_registration_is_admitted_under_a_loose_cap() {
        let mut s = quiet(4);
        // A loose cap leaves steady-state headroom for one more job.
        s.cap = workloads::loadgen::LoadPattern::Constant(2.0);
        let mut core = ControlCore::new(&s);
        core.step_quantum().unwrap();
        let app = batch::mix(1, 0xBEEF).apps[0];
        let id = core.register_batch("newcomer", app).expect("admitted");
        assert_eq!(core.tenant(id).unwrap().state(), LifecycleState::Admitted);
        core.step_quantum().unwrap();
        assert!(core.tenant(id).unwrap().state().is_live());
        assert_eq!(core.scenario().num_batch(), quiet(4).num_batch() + 1);
    }

    #[test]
    fn admission_control_rejects_when_the_budget_cannot_fit() {
        let mut s = quiet(2);
        // A starvation cap: nothing fits next to the committed tenants.
        s.cap = workloads::loadgen::LoadPattern::Constant(0.05);
        let mut core = ControlCore::new(&s);
        let app = batch::mix(1, 0xBEEF).apps[0];
        let before = core.tenants().len();
        let err = core.register_batch("hopeful", app).unwrap_err();
        let AdmissionError::PowerBudgetExceeded {
            required_watts,
            budget_watts,
        } = err;
        assert!(required_watts > budget_watts);
        // The rejection is recorded: a retired tenant row plus an event.
        assert_eq!(core.tenants().len(), before + 1);
        assert_eq!(
            core.tenants().last().unwrap().state(),
            LifecycleState::Retired
        );
        assert!(core
            .drain_events()
            .iter()
            .any(|e| matches!(e, ControlEvent::AdmissionRejected { .. })));
        // The job tables did not grow.
        assert_eq!(core.scenario().num_batch(), quiet(2).num_batch());
    }

    #[test]
    fn shutdown_retires_every_tenant() {
        let mut core = ControlCore::new(&quiet(3));
        core.step_quantum().unwrap();
        core.shutdown().unwrap();
        assert!(core.tenants().iter().all(|t| t.state().is_terminal()));
    }

    #[test]
    fn snapshot_serializes_the_tenant_table() {
        let core = ControlCore::new(&quiet(2));
        let json = core.snapshot().to_json().to_string();
        assert!(json.contains("\"slice\":0"), "{json}");
        assert!(json.contains("\"state\":\"admitted\""), "{json}");
        assert!(json.contains("\"kind\":\"latency_critical\""), "{json}");
    }
}
