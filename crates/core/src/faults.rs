//! Seeded fault injection and the graceful-degradation policy.
//!
//! CuttleSys only works when every 100 ms quantum completes: two profiling
//! frames land, three SGD reconstructions converge, the reconfiguration
//! commands take effect, and the power telemetry reads back. Production
//! schedulers cannot assume any of that, so this module provides both sides
//! of the robustness story:
//!
//! * **Injection** — a [`FaultPlan`] describes, as per-quantum
//!   probabilities, which failures a run suffers: dropped or corrupted
//!   profiling samples (noise, bias, NaN), stalled or diverged
//!   reconstructions, failed reconfiguration commands (the core stays in its
//!   previous shape), and power-telemetry blackouts. A [`FaultInjector`]
//!   realizes the plan *deterministically*: every decision is a pure
//!   function of `(plan seed, quantum, sample)` via the counter-based
//!   streams in [`simulator::fault`], so a fault run is exactly as
//!   reproducible as a clean one and never perturbs the simulation's own
//!   RNG.
//! * **Degradation** — [`StageError`]/[`DecisionError`] type the ways a
//!   decision quantum can fail, [`ResilienceConfig`] bounds the responses
//!   (sample sanity ranges, prediction staleness, a per-quantum deadline),
//!   and [`CircuitBreaker`] drops the manager into a safe-mode allocation
//!   after consecutive failed quanta, probing its way back. The ladder is
//!   strictly ordered: retry the sample, fall back to the last-good
//!   decision, and only then give up into safe mode.
//!
//! Every rung the manager descends is recorded in
//! [`crate::telemetry::DegradationEvents`] so tests and benches can assert
//! that no fallback went unreported.

use serde::Serialize;
use simulator::fault::{unit, Corruption, FaultStream};
use simulator::{CacheAlloc, CoreConfig, JobConfig};

use crate::accounting::gate_descending_power;
use crate::matrices::Predictions;
use crate::pipeline::LcAllocation;
use crate::types::{BatchAction, LcAssignment, Plan, ProfileSample, SliceInfo};

/// A seeded, declarative description of the faults a run suffers.
///
/// All rates are per-event probabilities in `[0, 1]`; the `window` (when
/// present) restricts injection to a half-open slice range, which is how
/// tests model a mid-run blackout. The default plan is [`FaultPlan::none`].
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct FaultPlan {
    /// Seed of the fault streams — independent of the scenario seed.
    pub seed: u64,
    /// Probability that a profiling sample is dropped outright.
    pub sample_drop: f64,
    /// Probability that a surviving profiling sample is corrupted.
    pub sample_corrupt: f64,
    /// Relative sigma of the multiplicative noise corruption.
    pub corrupt_sigma: f64,
    /// Relative offset of the bias corruption (a miscalibrated sensor).
    pub corrupt_bias: f64,
    /// Fraction of corruptions that return NaN instead of a plausible value.
    pub corrupt_nan: f64,
    /// Per-quantum probability that the reconstruction stalls.
    pub reconstruct_stall: f64,
    /// Wall-clock milliseconds a stalled reconstruction loses.
    pub stall_ms: f64,
    /// Per-quantum probability that the reconstruction diverges to NaN.
    pub reconstruct_diverge: f64,
    /// Per-quantum probability that the reconfiguration command fails and
    /// every core keeps its previous configuration.
    pub reconfig_fail: f64,
    /// Per-quantum probability that power telemetry blacks out (NaN).
    pub power_blackout: f64,
    /// Optional half-open `[start, end)` slice window outside which no
    /// fault fires.
    pub window: Option<(usize, usize)>,
}

impl FaultPlan {
    /// The fault-free plan: nothing ever fires, and the injector is a
    /// guaranteed no-op (bit-identical behaviour to a build without fault
    /// hooks).
    pub fn none() -> FaultPlan {
        FaultPlan {
            seed: 0,
            sample_drop: 0.0,
            sample_corrupt: 0.0,
            corrupt_sigma: 0.0,
            corrupt_bias: 0.0,
            corrupt_nan: 0.0,
            reconstruct_stall: 0.0,
            stall_ms: 0.0,
            reconstruct_diverge: 0.0,
            reconfig_fail: 0.0,
            power_blackout: 0.0,
            window: None,
        }
    }

    /// The default lossy-sensor profile: samples vanish or come back wrong,
    /// and power telemetry occasionally blacks out, but compute never fails.
    pub fn lossy_sensors(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            sample_drop: 0.15,
            sample_corrupt: 0.15,
            corrupt_sigma: 0.5,
            corrupt_bias: 0.3,
            corrupt_nan: 0.3,
            power_blackout: 0.1,
            ..FaultPlan::none()
        }
    }

    /// The flaky-reconfiguration profile: commands fail, reconstructions
    /// stall or diverge, but the sensors are honest.
    pub fn flaky_reconfig(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            reconfig_fail: 0.25,
            reconstruct_stall: 0.2,
            stall_ms: 50.0,
            reconstruct_diverge: 0.15,
            ..FaultPlan::none()
        }
    }

    /// Looks up a named profile (`clean`, `lossy-sensors`, `flaky-reconfig`)
    /// — the vocabulary the fault-matrix CI job and the bench bin share.
    pub fn named(name: &str, seed: u64) -> Option<FaultPlan> {
        match name {
            "clean" => Some(FaultPlan::none()),
            "lossy-sensors" => Some(FaultPlan::lossy_sensors(seed)),
            "flaky-reconfig" => Some(FaultPlan::flaky_reconfig(seed)),
            _ => None,
        }
    }

    /// Restricts the plan to the half-open slice window `[start, end)`.
    #[must_use]
    pub fn with_window(mut self, start: usize, end: usize) -> FaultPlan {
        self.window = Some((start, end));
        self
    }

    /// Whether no fault can ever fire under this plan.
    pub fn is_clean(&self) -> bool {
        self.sample_drop == 0.0
            && self.sample_corrupt == 0.0
            && self.reconstruct_stall == 0.0
            && self.reconstruct_diverge == 0.0
            && self.reconfig_fail == 0.0
            && self.power_blackout == 0.0
    }

    /// Whether the plan is live at `slice` (inside the window, if any).
    pub fn active_at(&self, slice: usize) -> bool {
        !self.is_clean()
            && self
                .window
                .is_none_or(|(start, end)| (start..end).contains(&slice))
    }
}

impl Default for FaultPlan {
    fn default() -> FaultPlan {
        FaultPlan::none()
    }
}

/// The compute-side faults of one decision quantum, fixed before the
/// quantum starts. Environment-side faults (sample corruption, blackout,
/// reconfiguration failure) are applied by the testbed from the same plan.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize)]
pub struct QuantumFaults {
    /// Wall-clock milliseconds an injected stall adds to reconstruction.
    pub reconstruct_stall_ms: f64,
    /// Whether this quantum's reconstruction diverges to NaN.
    pub reconstruct_diverge: bool,
    /// Whether this quantum's reconfiguration command fails.
    pub reconfig_fail: bool,
    /// Whether power telemetry is blacked out this quantum.
    pub power_blackout: bool,
}

impl QuantumFaults {
    /// The fault-free quantum.
    pub const NONE: QuantumFaults = QuantumFaults {
        reconstruct_stall_ms: 0.0,
        reconstruct_diverge: false,
        reconfig_fail: false,
        power_blackout: false,
    };
}

/// Counts of the environment faults that actually fired in one slice, for
/// the run record (so a degraded decision can be traced to its cause).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize)]
pub struct InjectedFaults {
    /// Profiling samples dropped before the manager saw them.
    pub samples_dropped: usize,
    /// Profiling samples corrupted (noise, bias, or NaN).
    pub samples_corrupted: usize,
    /// Whether power telemetry was blacked out this slice.
    pub power_blackout: bool,
    /// Whether the reconfiguration command failed this slice.
    pub reconfig_failed: bool,
}

impl InjectedFaults {
    /// Whether any fault fired.
    pub fn any(&self) -> bool {
        self.samples_dropped > 0
            || self.samples_corrupted > 0
            || self.power_blackout
            || self.reconfig_failed
    }
}

/// Realizes a [`FaultPlan`] deterministically.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    plan: FaultPlan,
}

impl FaultInjector {
    /// Wraps a plan.
    pub fn new(plan: FaultPlan) -> FaultInjector {
        FaultInjector { plan }
    }

    /// The plan being realized.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Whether this injector can never fire (a guaranteed no-op).
    pub fn is_clean(&self) -> bool {
        self.plan.is_clean()
    }

    /// The compute-side faults of quantum `slice` — a pure function of the
    /// plan seed and the slice index.
    pub fn quantum(&self, slice: usize) -> QuantumFaults {
        if !self.plan.active_at(slice) {
            return QuantumFaults::NONE;
        }
        let s = slice as u64;
        let stall = self.plan.reconstruct_stall > 0.0
            && unit(self.plan.seed, FaultStream::Reconstruct, s) < self.plan.reconstruct_stall;
        QuantumFaults {
            reconstruct_stall_ms: if stall { self.plan.stall_ms } else { 0.0 },
            reconstruct_diverge: self.plan.reconstruct_diverge > 0.0
                && unit(
                    self.plan.seed,
                    FaultStream::Reconstruct,
                    s.wrapping_add(1 << 40),
                ) < self.plan.reconstruct_diverge,
            reconfig_fail: self.plan.reconfig_fail > 0.0
                && unit(self.plan.seed, FaultStream::Reconfig, s) < self.plan.reconfig_fail,
            power_blackout: self.plan.power_blackout > 0.0
                && unit(self.plan.seed, FaultStream::Power, s) < self.plan.power_blackout,
        }
    }

    /// Drops and corrupts the samples of one profiling frame in place,
    /// deterministically in `(slice, frame, sample index)`. Returns
    /// `(dropped, corrupted)` counts.
    pub fn corrupt_profile(
        &self,
        slice: usize,
        frame: u64,
        sample: &mut ProfileSample,
    ) -> (usize, usize) {
        if !self.plan.active_at(slice)
            || (self.plan.sample_drop == 0.0 && self.plan.sample_corrupt == 0.0)
        {
            return (0, 0);
        }
        let mut dropped = 0;
        let mut corrupted = 0;
        let mut k = 0u64;
        sample.samples.retain_mut(|s| {
            let index = ((slice as u64) << 24) ^ (frame << 16) ^ k;
            k += 1;
            let u = unit(self.plan.seed, FaultStream::Sample, index);
            if u < self.plan.sample_drop {
                dropped += 1;
                return false;
            }
            if u < self.plan.sample_drop + self.plan.sample_corrupt {
                let kind = self.corruption_kind(index);
                s.bips = kind.apply(s.bips, self.plan.seed, index.wrapping_mul(3) + 1);
                s.watts = kind.apply(s.watts, self.plan.seed, index.wrapping_mul(3) + 2);
                corrupted += 1;
            }
            true
        });
        (dropped, corrupted)
    }

    /// Which corruption a corrupted sample at `index` suffers.
    fn corruption_kind(&self, index: u64) -> Corruption {
        let v = unit(
            self.plan.seed,
            FaultStream::Corruption,
            index.wrapping_mul(3),
        );
        if v < self.plan.corrupt_nan {
            Corruption::Nan
        } else if v < self.plan.corrupt_nan + (1.0 - self.plan.corrupt_nan) / 2.0 {
            Corruption::Noise {
                sigma: self.plan.corrupt_sigma,
            }
        } else {
            Corruption::Bias {
                bias: self.plan.corrupt_bias,
            }
        }
    }
}

/// A failure of one pipeline stage.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum StageError {
    /// Every profiling sample of the quantum was rejected, even after the
    /// bounded retry.
    NoValidSamples {
        /// Samples rejected by validation this quantum.
        rejected: usize,
    },
    /// Reconstruction produced non-finite or out-of-physical-range values
    /// and no last-good predictions were available to fall back to.
    ReconstructionDiverged {
        /// Offending prediction entries.
        bad_values: usize,
    },
    /// Reconstruction failed and the last-good predictions were older than
    /// the staleness bound.
    PredictionsStale {
        /// Quanta since the predictions were produced.
        age: usize,
        /// The configured bound.
        bound: usize,
    },
    /// The per-quantum compute deadline was exceeded.
    DeadlineExceeded {
        /// The stage after which the budget ran out.
        stage: &'static str,
        /// Wall-clock (plus injected stall) consumed so far (ms).
        consumed_ms: f64,
        /// The configured budget (ms).
        budget_ms: f64,
    },
    /// The slice info did not describe an LC tenant the pipeline needed.
    MissingTenant {
        /// Index of the missing tenant.
        tenant: usize,
    },
}

impl StageError {
    /// The pipeline stage the error is attributed to (one of
    /// [`crate::telemetry::STAGE_NAMES`]).
    pub fn stage(&self) -> &'static str {
        match self {
            StageError::NoValidSamples { .. } => "profile",
            StageError::ReconstructionDiverged { .. } | StageError::PredictionsStale { .. } => {
                "reconstruct"
            }
            StageError::DeadlineExceeded { stage, .. } => stage,
            StageError::MissingTenant { .. } => "qos",
        }
    }
}

impl std::fmt::Display for StageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StageError::NoValidSamples { rejected } => {
                write!(f, "no valid profiling samples ({rejected} rejected)")
            }
            StageError::ReconstructionDiverged { bad_values } => {
                write!(f, "reconstruction diverged ({bad_values} bad values)")
            }
            StageError::PredictionsStale { age, bound } => {
                write!(
                    f,
                    "last-good predictions too stale (age {age} > bound {bound})"
                )
            }
            StageError::DeadlineExceeded {
                stage,
                consumed_ms,
                budget_ms,
            } => write!(
                f,
                "deadline exceeded after {stage} ({consumed_ms:.1} ms > {budget_ms:.1} ms)"
            ),
            StageError::MissingTenant { tenant } => {
                write!(f, "slice info missing LC tenant {tenant}")
            }
        }
    }
}

impl std::error::Error for StageError {}

/// A failure of one decision quantum, as surfaced by
/// [`crate::runtime::CuttleSysManager::decide`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DecisionError {
    /// A pipeline stage failed.
    Stage(StageError),
    /// The scenario describes no LC tenant where one is required.
    NoTenants,
    /// A plan or context had the wrong shape for the current slice.
    PlanShape {
        /// Entries expected.
        expected: usize,
        /// Entries found.
        got: usize,
    },
}

impl DecisionError {
    /// The pipeline stage the failure is attributed to.
    pub fn stage(&self) -> &'static str {
        match self {
            DecisionError::Stage(e) => e.stage(),
            DecisionError::NoTenants | DecisionError::PlanShape { .. } => "qos",
        }
    }
}

impl From<StageError> for DecisionError {
    fn from(e: StageError) -> DecisionError {
        DecisionError::Stage(e)
    }
}

impl std::fmt::Display for DecisionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecisionError::Stage(e) => write!(f, "stage failed: {e}"),
            DecisionError::NoTenants => write!(f, "scenario has no LC tenant"),
            DecisionError::PlanShape { expected, got } => {
                write!(f, "plan shape mismatch (expected {expected}, got {got})")
            }
        }
    }
}

impl std::error::Error for DecisionError {}

/// Bounds on the degradation ladder's responses.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct ResilienceConfig {
    /// Per-quantum compute budget (wall-clock plus injected stalls, ms).
    /// Infinite by default: wall-clock deadlines are opt-in because debug
    /// builds and loaded CI machines would otherwise trip them
    /// nondeterministically.
    pub deadline_ms: f64,
    /// Maximum age (in quanta) at which last-good predictions or plans may
    /// still substitute for a failed quantum.
    pub staleness_bound: usize,
    /// Consecutive failed quanta before the circuit breaker opens.
    pub breaker_open_after: usize,
    /// While open, probe a full decision every this many quanta.
    pub breaker_probe_interval: usize,
    /// Successful probes required to close the breaker again.
    pub breaker_close_after: usize,
    /// Physical sanity ceiling for a per-core throughput sample (BIPS).
    pub max_bips: f64,
    /// Physical sanity ceiling for a per-core power sample (W).
    pub max_watts: f64,
    /// Physical sanity ceiling for a predicted tail latency (ms).
    pub max_tail_ms: f64,
}

impl Default for ResilienceConfig {
    fn default() -> ResilienceConfig {
        ResilienceConfig {
            deadline_ms: f64::INFINITY,
            staleness_bound: 5,
            breaker_open_after: 3,
            breaker_probe_interval: 4,
            breaker_close_after: 2,
            max_bips: 1e3,
            max_watts: 1e3,
            max_tail_ms: 1e4,
        }
    }
}

/// Circuit-breaker state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
enum BreakerState {
    /// Normal operation.
    Closed,
    /// Safe mode; probing a full decision periodically.
    Open,
}

/// Trips into safe mode after consecutive failed quanta and probes its way
/// back to full operation.
#[derive(Debug, Clone, Serialize)]
pub struct CircuitBreaker {
    state: BreakerState,
    consecutive_failures: usize,
    quanta_open: usize,
    probe_successes: usize,
    /// Times the breaker has opened over the run.
    pub opens: usize,
    /// Times the breaker has closed again after probing recovery.
    pub closes: usize,
}

impl CircuitBreaker {
    /// A closed (healthy) breaker.
    pub fn new() -> CircuitBreaker {
        CircuitBreaker {
            state: BreakerState::Closed,
            consecutive_failures: 0,
            quanta_open: 0,
            probe_successes: 0,
            opens: 0,
            closes: 0,
        }
    }

    /// Whether the breaker is open (safe mode).
    pub fn is_open(&self) -> bool {
        self.state == BreakerState::Open
    }

    /// Advances the breaker's clock at the start of a quantum.
    pub fn begin_quantum(&mut self) {
        if self.state == BreakerState::Open {
            self.quanta_open += 1;
        }
    }

    /// Whether an open breaker should probe a full decision this quantum.
    pub fn should_probe(&self, cfg: &ResilienceConfig) -> bool {
        self.state == BreakerState::Open
            && cfg.breaker_probe_interval > 0
            && self.quanta_open.is_multiple_of(cfg.breaker_probe_interval)
    }

    /// Records a successful decision (normal or probe).
    pub fn on_success(&mut self, cfg: &ResilienceConfig) {
        match self.state {
            BreakerState::Closed => self.consecutive_failures = 0,
            BreakerState::Open => {
                self.probe_successes += 1;
                if self.probe_successes >= cfg.breaker_close_after {
                    self.state = BreakerState::Closed;
                    self.consecutive_failures = 0;
                    self.quanta_open = 0;
                    self.probe_successes = 0;
                    self.closes += 1;
                }
            }
        }
    }

    /// Records a failed decision (normal or probe).
    pub fn on_failure(&mut self, cfg: &ResilienceConfig) {
        match self.state {
            BreakerState::Closed => {
                self.consecutive_failures += 1;
                if self.consecutive_failures >= cfg.breaker_open_after {
                    self.state = BreakerState::Open;
                    self.quanta_open = 0;
                    self.probe_successes = 0;
                    self.opens += 1;
                }
            }
            BreakerState::Open => self.probe_successes = 0,
        }
    }
}

impl Default for CircuitBreaker {
    fn default() -> CircuitBreaker {
        CircuitBreaker::new()
    }
}

/// The safe-mode allocation: every LC tenant at its current core count and
/// the widest configuration (QoS first), every batch job gated or — when
/// last-good predictions allow power accounting — at the narrowest
/// configuration with descending-power gating against the cap. This is a
/// core-gating-style plan: maximally conservative, always cap-respecting.
pub fn safe_mode_plan(
    info: &SliceInfo,
    lc: &[LcAllocation],
    preds: Option<&Predictions>,
    gated_watts: f64,
) -> Plan {
    let widest = JobConfig::new(CoreConfig::widest(), CacheAlloc::Four);
    let lc_assignments: Vec<LcAssignment> = lc
        .iter()
        .map(|a| LcAssignment {
            cores: a.cores,
            config: widest,
        })
        .collect();
    let mut batch = vec![BatchAction::Gated; info.num_batch];
    if let Some(preds) = preds {
        let lowest = JobConfig::profiling_low().index();
        let active: Vec<usize> = (0..info.num_batch)
            .filter(|&j| info.batch_active.get(j).copied().unwrap_or(true))
            .collect();
        let lc_watts: f64 = lc_assignments
            .iter()
            .zip(&preds.lc)
            .map(|(a, p)| {
                let w = p.watts.get(widest.index()).copied().unwrap_or(0.0);
                if w.is_finite() {
                    a.cores as f64 * w
                } else {
                    0.0
                }
            })
            .sum();
        let narrowest_watts: Vec<f64> = active
            .iter()
            .map(|&j| {
                let w = preds
                    .batch_watts
                    .get(j)
                    .and_then(|row| row.get(lowest))
                    .copied()
                    .unwrap_or(f64::INFINITY);
                if w.is_finite() {
                    w
                } else {
                    f64::INFINITY
                }
            })
            .collect();
        let gated = gate_descending_power(&narrowest_watts, lc_watts, info.cap_watts, gated_watts);
        for (slot, &j) in active.iter().enumerate() {
            if !gated[slot] {
                batch[j] = BatchAction::Run(JobConfig::from_index(lowest));
            }
        }
    }
    Plan {
        lc: lc_assignments,
        batch,
    }
}

/// Counts non-finite or out-of-physical-range entries in a prediction set —
/// the reconstruction sanity gate (NaN / row-divergence check).
pub fn prediction_defects(preds: &Predictions, cfg: &ResilienceConfig) -> usize {
    let bad_rate = |v: f64, max: f64| !v.is_finite() || v < 0.0 || v > max;
    let mut bad = 0;
    for row in preds.batch_bips.iter() {
        bad += row.iter().filter(|&&v| bad_rate(v, cfg.max_bips)).count();
    }
    for row in preds.batch_watts.iter() {
        bad += row.iter().filter(|&&v| bad_rate(v, cfg.max_watts)).count();
    }
    for lc in preds.lc.iter() {
        bad += lc
            .watts
            .iter()
            .filter(|&&v| bad_rate(v, cfg.max_watts))
            .count();
        bad += lc
            .tail
            .iter()
            .chain(lc.tail_guarded.iter())
            .filter(|&&v| bad_rate(v, cfg.max_tail_ms))
            .count();
    }
    bad
}

/// Poisons a prediction set with NaN, modelling a diverged SGD solve. The
/// sanity gate downstream is expected to catch exactly this.
pub fn poison_predictions(preds: &mut Predictions) {
    for row in preds
        .batch_bips
        .iter_mut()
        .chain(preds.batch_watts.iter_mut())
    {
        row.fill(f64::NAN);
    }
    for lc in preds.lc.iter_mut() {
        lc.watts.fill(f64::NAN);
        lc.tail.fill(f64::NAN);
        lc.tail_guarded.fill(f64::NAN);
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::matrices::LcPrediction;
    use crate::types::{LcSliceInfo, SamplePoint};
    use simulator::NUM_JOB_CONFIGS;

    fn lossy() -> FaultInjector {
        FaultInjector::new(FaultPlan::lossy_sensors(7))
    }

    #[test]
    fn clean_plan_never_fires() {
        let inj = FaultInjector::new(FaultPlan::none());
        assert!(inj.is_clean());
        for slice in 0..100 {
            assert_eq!(inj.quantum(slice), QuantumFaults::NONE);
        }
    }

    #[test]
    fn quantum_faults_are_deterministic_and_seed_sensitive() {
        let a = FaultInjector::new(FaultPlan::flaky_reconfig(1));
        let b = FaultInjector::new(FaultPlan::flaky_reconfig(1));
        let c = FaultInjector::new(FaultPlan::flaky_reconfig(2));
        let fires = |inj: &FaultInjector| -> Vec<QuantumFaults> {
            (0..200).map(|s| inj.quantum(s)).collect()
        };
        assert_eq!(fires(&a), fires(&b));
        assert_ne!(fires(&a), fires(&c));
        // At these rates something must fire within 200 quanta.
        assert!(fires(&a).iter().any(|q| q.reconfig_fail));
        assert!(fires(&a).iter().any(|q| q.reconstruct_stall_ms > 0.0));
    }

    #[test]
    fn windowed_plan_only_fires_inside_the_window() {
        let plan = FaultPlan {
            reconfig_fail: 1.0,
            ..FaultPlan::none()
        }
        .with_window(3, 6);
        let inj = FaultInjector::new(plan);
        for slice in 0..10 {
            assert_eq!(
                inj.quantum(slice).reconfig_fail,
                (3..6).contains(&slice),
                "slice {slice}"
            );
        }
    }

    #[test]
    fn sample_corruption_is_deterministic_and_counts_events() {
        let inj = lossy();
        let mk = || ProfileSample {
            duration_ms: 1.0,
            samples: (0..40)
                .map(|j| SamplePoint {
                    job: j,
                    config: JobConfig::from_index(j % NUM_JOB_CONFIGS),
                    bips: 2.0,
                    watts: 3.0,
                })
                .collect(),
            lc_tails_ms: vec![5.0],
        };
        let mut a = mk();
        let mut b = mk();
        let (dropped_a, corrupted_a) = inj.corrupt_profile(4, 1, &mut a);
        let (dropped_b, corrupted_b) = inj.corrupt_profile(4, 1, &mut b);
        // NaN-corrupted samples defeat PartialEq; compare debug renderings
        // (bit-identical values render identically, including NaN).
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
        assert_eq!((dropped_a, corrupted_a), (dropped_b, corrupted_b));
        assert_eq!(a.samples.len(), 40 - dropped_a);
        assert!(dropped_a > 0, "15% drop over 40 samples should fire");
        assert!(
            corrupted_a > 0,
            "15% corruption over 40 samples should fire"
        );
        // A different frame corrupts differently.
        let mut c = mk();
        inj.corrupt_profile(4, 2, &mut c);
        assert_ne!(format!("{a:?}"), format!("{c:?}"));
    }

    #[test]
    fn breaker_opens_after_consecutive_failures_and_probes_back() {
        let cfg = ResilienceConfig::default();
        let mut b = CircuitBreaker::new();
        for _ in 0..cfg.breaker_open_after - 1 {
            b.begin_quantum();
            b.on_failure(&cfg);
            assert!(!b.is_open());
        }
        b.begin_quantum();
        b.on_failure(&cfg);
        assert!(b.is_open());
        assert_eq!(b.opens, 1);
        // While open, most quanta are safe mode; every probe_interval-th
        // quantum probes. Two successful probes close it.
        let mut probes = 0;
        for _ in 0..20 {
            b.begin_quantum();
            if b.should_probe(&cfg) {
                probes += 1;
                b.on_success(&cfg);
            }
            if !b.is_open() {
                break;
            }
        }
        assert_eq!(probes, cfg.breaker_close_after);
        assert!(!b.is_open());
        assert_eq!(b.closes, 1);
        // A failure after recovery starts the count fresh.
        b.on_failure(&cfg);
        assert!(!b.is_open());
    }

    #[test]
    fn sanity_gate_counts_poisoned_predictions() {
        let cfg = ResilienceConfig::default();
        let mut preds = Predictions {
            batch_bips: vec![vec![1.0; NUM_JOB_CONFIGS]; 2],
            batch_watts: vec![vec![2.0; NUM_JOB_CONFIGS]; 2],
            lc: vec![LcPrediction {
                watts: vec![3.0; NUM_JOB_CONFIGS],
                tail: vec![4.0; NUM_JOB_CONFIGS],
                tail_guarded: vec![4.0; NUM_JOB_CONFIGS],
            }],
        };
        assert_eq!(prediction_defects(&preds, &cfg), 0);
        preds.batch_bips[0][0] = f64::NAN;
        preds.lc[0].tail[3] = -1.0;
        preds.lc[0].watts[5] = 1e9;
        assert_eq!(prediction_defects(&preds, &cfg), 3);
        poison_predictions(&mut preds);
        assert!(prediction_defects(&preds, &cfg) > 100);
    }

    #[test]
    fn safe_mode_plan_is_cap_respecting_and_widest_for_lc() {
        let service = workloads::latency::service_by_name("xapian").unwrap();
        let info = SliceInfo {
            slice: 0,
            cap_watts: 52.0,
            num_cores: 32,
            num_batch: 4,
            lc: vec![LcSliceInfo {
                service,
                qos_ms: 10.0,
                load: 0.5,
                last_tail_ms: None,
                last_cores: 16,
            }],
            batch_active: vec![true, true, false, true],
        };
        let lc = vec![LcAllocation {
            cores: 16,
            min_cores: 16,
        }];
        // Without predictions: everything batch-side gates.
        let plan = safe_mode_plan(&info, &lc, None, 0.5);
        assert_eq!(plan.lc[0].cores, 16);
        assert_eq!(plan.lc[0].config.core, CoreConfig::widest());
        assert!(plan.batch.iter().all(|a| *a == BatchAction::Gated));
        // With predictions: narrowest configs, gated in descending power
        // until the cap fits; the absent job stays gated.
        let lowest = JobConfig::profiling_low().index();
        let mut preds = Predictions {
            batch_bips: vec![vec![1.0; NUM_JOB_CONFIGS]; 4],
            batch_watts: vec![vec![1.0; NUM_JOB_CONFIGS]; 4],
            lc: vec![LcPrediction {
                watts: vec![3.0; NUM_JOB_CONFIGS],
                tail: vec![1.0; NUM_JOB_CONFIGS],
                tail_guarded: vec![1.0; NUM_JOB_CONFIGS],
            }],
        };
        // LC 16 × 3 W = 48 W; jobs 0/1/3 at 8/2/1 W total 59 W > 52 W cap,
        // so the hungriest job gates (59 − 8 + 0.5 = 51.5 W fits).
        preds.batch_watts[0][lowest] = 8.0;
        preds.batch_watts[1][lowest] = 2.0;
        preds.batch_watts[3][lowest] = 1.0;
        let plan = safe_mode_plan(&info, &lc, Some(&preds), 0.5);
        assert_eq!(plan.batch[0], BatchAction::Gated, "hungriest job gates");
        assert_eq!(plan.batch[2], BatchAction::Gated, "absent job stays gated");
        assert_eq!(
            plan.batch[1],
            BatchAction::Run(JobConfig::from_index(lowest))
        );
        assert_eq!(
            plan.batch[3],
            BatchAction::Run(JobConfig::from_index(lowest))
        );
    }
}
