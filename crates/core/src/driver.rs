//! The steppable simulation loop: scenario *driving* split from scenario
//! construction.
//!
//! [`crate::testbed::run_scenario`] used to be one monolithic function:
//! build a [`Testbed`], loop over every timeslice, return the
//! [`RunRecord`]. That shape forces the whole co-location to be fixed in
//! the [`Scenario`] at t = 0, which is exactly what a long-lived control
//! plane cannot accept — tenants register and deregister while the
//! decision loop is running.
//!
//! [`ScenarioDriver`] owns the per-slice state that used to live in
//! `run_scenario`'s local variables and exposes the loop body as
//! [`ScenarioDriver::step`]. Between steps the job population may change:
//!
//! * [`ScenarioDriver::admit_batch`] appends a batch job arriving at the
//!   next slice. The job's phase profile is seeded from its *index*
//!   (`seed ^ (0x1000 + i)`) and evaluated at absolute simulation time, so
//!   a job admitted at slice `k` behaves bit-identically to a static
//!   scenario that declared it with `arrive_slice = k` from the start.
//! * [`ScenarioDriver::drain_batch`] marks a batch job as departing, which
//!   flows through the existing churn machinery (`batch_active`) — again
//!   bit-identical to a static `depart_slice`.
//!
//! The driver touches no wall clock and spawns no threads; every step is a
//! pure function of the seed, the scenario, and the manager's decisions.
//! That keeps the replay guarantee that the control-plane tests pin: a
//! recorded registration trace replayed through the service reproduces the
//! equivalent static scenario's record bit-for-bit.

use simulator::JobConfig;
use workloads::batch::SpecBenchmark;
use workloads::phase::PhasedProfile;
use workloads::queueing::MmcQueue;

use crate::faults::{FaultInjector, InjectedFaults};
use crate::testbed::Testbed;
use crate::types::{
    BatchAction, BatchJobSpec, JobSpec, LcAssignment, Plan, ProfilePlan, ProfileSample,
    ResourceManager, RunRecord, SamplePoint, Scenario, SliceInfo, SliceOutcome, SliceRecord,
    TIMESLICE_MS,
};

/// Errors from runtime churn requests on a driver.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DriveError {
    /// The batch index does not exist.
    UnknownBatchJob(usize),
    /// The batch job already departed (or never arrived).
    NotRunning(usize),
    /// The LC service index does not exist.
    UnknownLcService(usize),
}

impl std::fmt::Display for DriveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DriveError::UnknownBatchJob(j) => write!(f, "unknown batch job index {j}"),
            DriveError::NotRunning(j) => write!(f, "batch job {j} is not running"),
            DriveError::UnknownLcService(i) => write!(f, "unknown LC service index {i}"),
        }
    }
}

impl std::error::Error for DriveError {}

/// The simulation loop as a value: constructed once from a [`Scenario`],
/// stepped one 100 ms timeslice at a time.
pub struct ScenarioDriver {
    tb: Testbed,
    injector: FaultInjector,
    last_tails: Vec<Option<f64>>,
    last_cores: Vec<usize>,
    lc_shares: Vec<f64>,
    next_slice: usize,
    slices: Vec<SliceRecord>,
}

impl ScenarioDriver {
    /// Builds the driver (and its testbed) for a scenario.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`Testbed::new`].
    pub fn new(scenario: &Scenario) -> ScenarioDriver {
        let last_cores = scenario.lc_jobs().iter().map(|lc| lc.cores).collect();
        ScenarioDriver {
            tb: Testbed::new(scenario),
            injector: FaultInjector::new(scenario.faults.clone()),
            last_tails: vec![None; scenario.num_lc()],
            last_cores,
            lc_shares: vec![1.0; scenario.num_lc()],
            next_slice: 0,
            slices: Vec::with_capacity(scenario.duration_slices),
        }
    }

    /// Scales the offered load of LC service `lc_index` by `share` from the
    /// next slice on. The default share of 1.0 multiplies the declared load
    /// pattern by exactly 1.0, so an untouched driver is bit-identical to a
    /// pre-share one; cluster load balancing moves traffic between replicas
    /// on different nodes by adjusting shares while conserving their sum.
    ///
    /// # Errors
    ///
    /// Returns [`DriveError::UnknownLcService`] when `lc_index` is out of
    /// range.
    pub fn set_lc_share(&mut self, lc_index: usize, share: f64) -> Result<(), DriveError> {
        let slot = self
            .lc_shares
            .get_mut(lc_index)
            .ok_or(DriveError::UnknownLcService(lc_index))?;
        *slot = share;
        Ok(())
    }

    /// The current per-LC traffic-share multipliers.
    pub fn lc_shares(&self) -> &[f64] {
        &self.lc_shares
    }

    /// The scenario as currently constituted (runtime churn included).
    pub fn scenario(&self) -> &Scenario {
        &self.tb.scenario
    }

    /// Index of the next slice [`step`](Self::step) will simulate.
    pub fn next_slice(&self) -> usize {
        self.next_slice
    }

    /// Whether the scenario's declared horizon has been simulated.
    /// [`step`](Self::step) may still be called past the horizon — load and
    /// cap patterns are total functions of time — which is how the service
    /// runs open-ended.
    pub fn is_done(&self) -> bool {
        self.next_slice >= self.tb.scenario.duration_slices
    }

    /// The slice records produced so far.
    pub fn records(&self) -> &[SliceRecord] {
        &self.slices
    }

    /// Consumes the driver into a completed run record.
    pub fn into_record(self, scheme: String) -> RunRecord {
        RunRecord {
            scheme,
            slices: self.slices,
        }
    }

    /// Appends a batch job arriving at the next slice, returning its batch
    /// index. The testbed state this grows (phase profile, instruction and
    /// configuration slots) is exactly what [`Testbed::new`] would have
    /// built for a static scenario declaring the same job with
    /// `arrive_slice = next_slice`.
    pub fn admit_batch(&mut self, app: SpecBenchmark) -> usize {
        let i = self.tb.scenario.num_batch();
        self.tb.scenario.jobs.push(JobSpec::Batch(BatchJobSpec {
            app,
            arrive_slice: self.next_slice,
            depart_slice: None,
        }));
        self.tb.profiles.push(if self.tb.scenario.phases {
            PhasedProfile::with_seed(app.profile, self.tb.scenario.seed ^ (0x1000 + i as u64))
        } else {
            PhasedProfile::steady(app.profile)
        });
        self.tb.active.push(false);
        self.tb.instructions.push(0.0);
        self.tb.last_config.push(None);
        i
    }

    /// Marks batch job `batch_idx` as departing before the next slice.
    ///
    /// # Errors
    ///
    /// Returns [`DriveError`] if the index is unknown or the job is not
    /// currently scheduled to be running at the next slice.
    pub fn drain_batch(&mut self, batch_idx: usize) -> Result<(), DriveError> {
        let next = self.next_slice;
        let spec = self
            .tb
            .scenario
            .jobs
            .iter_mut()
            .filter_map(|j| match j {
                JobSpec::Batch(b) => Some(b),
                JobSpec::LatencyCritical(_) => None,
            })
            .nth(batch_idx)
            .ok_or(DriveError::UnknownBatchJob(batch_idx))?;
        if !spec.active_at(next) {
            return Err(DriveError::NotRunning(batch_idx));
        }
        spec.depart_slice = Some(next);
        Ok(())
    }

    /// Simulates one timeslice under `manager` and returns its ground-truth
    /// record. This is the loop body `run_scenario` used to inline; the
    /// ordering of every RNG draw is preserved so records are bit-identical
    /// to the pre-split implementation.
    pub fn step(&mut self, manager: &mut dyn ResourceManager) -> &SliceRecord {
        let slice = self.next_slice;
        let tb = &mut self.tb;
        let injector = &self.injector;
        let num_lc = tb.num_lc;
        let num_jobs = tb.instructions.len();
        let lc_specs: Vec<_> = tb.scenario.lc_jobs().into_iter().cloned().collect();

        let qf = injector.quantum(slice);
        let mut slice_faults = InjectedFaults {
            power_blackout: qf.power_blackout,
            reconfig_failed: qf.reconfig_fail,
            ..InjectedFaults::default()
        };
        let t_s = slice as f64 * TIMESLICE_MS / 1000.0;
        for (i, lc) in lc_specs.iter().enumerate() {
            tb.current_load[i] = lc.load.load_at(t_s) * self.lc_shares[i];
        }
        tb.active = tb.scenario.batch_active(slice);
        let cap_watts = tb.scenario.cap.load_at(t_s) * tb.scenario.nominal_budget_watts();
        tb.slice_end_ms = (slice + 1) as f64 * TIMESLICE_MS;
        tb.energy_mj = 0.0;
        tb.instructions.iter_mut().for_each(|i| *i = 0.0);
        tb.tail_segments.iter_mut().for_each(Vec::clear);

        let info = SliceInfo {
            slice,
            cap_watts,
            num_cores: tb.scenario.params.num_cores,
            num_batch: tb.scenario.num_batch(),
            lc: lc_specs
                .iter()
                .enumerate()
                .map(|(i, lc)| crate::types::LcSliceInfo {
                    service: lc.service,
                    qos_ms: lc.qos_ms,
                    load: tb.current_load[i],
                    last_tail_ms: self.last_tails[i],
                    last_cores: self.last_cores[i],
                })
                .collect(),
            batch_active: tb.active.clone(),
        };

        // Let the manager probe; each probe consumes slice time.
        let plan = {
            let tb_ref = &mut *tb;
            let sf = &mut slice_faults;
            let mut frame_idx = 0u64;
            let mut probe = |pp: &ProfilePlan, ms: f64| -> ProfileSample {
                let remaining = tb_ref.slice_end_ms - tb_ref.now_ms;
                let ms = ms.min(remaining.max(0.0));
                if ms <= 0.0 {
                    return ProfileSample {
                        duration_ms: 0.0,
                        samples: Vec::new(),
                        lc_tails_ms: vec![0.0; num_lc],
                    };
                }
                let result = tb_ref.run_frame(&pp.lc_configs, &pp.batch, ms);
                let mut samples = Vec::new();
                // LC tenants: one sample per distinct configuration among
                // each tenant's cores.
                let mut offset = 0;
                for (i, configs) in pp.lc_configs.iter().enumerate() {
                    let mut seen: Vec<JobConfig> = Vec::new();
                    for cfg in configs {
                        if seen.contains(cfg) {
                            continue;
                        }
                        seen.push(*cfg);
                        let cores: Vec<usize> = configs
                            .iter()
                            .enumerate()
                            .filter(|(_, c)| *c == cfg)
                            .map(|(k, _)| offset + k)
                            .collect();
                        let bips = cores
                            .iter()
                            .map(|&c| result.per_core_bips[c].get())
                            .sum::<f64>()
                            / cores.len() as f64;
                        let watts = cores
                            .iter()
                            .map(|&c| result.per_core_watts[c].get())
                            .sum::<f64>()
                            / cores.len() as f64;
                        samples.push(SamplePoint {
                            job: i,
                            config: *cfg,
                            bips: tb_ref.noisy(bips),
                            watts: tb_ref.noisy(watts),
                        });
                    }
                    offset += configs.len();
                }
                // Batch: per-core bips of each running job.
                for (j, action) in pp.batch.iter().enumerate() {
                    if let BatchAction::Run(config) = action {
                        let bips = result.per_job_bips[num_lc + j].get();
                        if bips > 0.0 {
                            let watts = result.per_job_watts[num_lc + j].get();
                            samples.push(SamplePoint {
                                job: num_lc + j,
                                config: *config,
                                bips: tb_ref.noisy(bips),
                                watts: tb_ref.noisy(watts),
                            });
                        }
                    }
                }
                let lc_tails_ms: Vec<f64> = (0..num_lc)
                    .map(|i| {
                        let p99 = tb_ref.tail_segments[i]
                            .last()
                            .map(|seg| {
                                MmcQueue::new(seg.servers, seg.service_rate, seg.arrival_rate)
                                    .p99_ms()
                                    .get()
                            })
                            .unwrap_or(0.0);
                        tb_ref.noisy(p99)
                    })
                    .collect();
                let mut sample = ProfileSample {
                    duration_ms: ms,
                    samples,
                    lc_tails_ms,
                };
                // Environment faults, applied strictly *after* every noise
                // draw so the RNG stream matches a clean run exactly.
                if qf.power_blackout {
                    for s in sample.samples.iter_mut() {
                        s.watts = f64::NAN;
                    }
                }
                let (dropped, corrupted) = injector.corrupt_profile(slice, frame_idx, &mut sample);
                frame_idx += 1;
                sf.samples_dropped += dropped;
                sf.samples_corrupted += corrupted;
                sample
            };
            manager.plan(&info, &mut probe)
        };
        assert_eq!(plan.lc.len(), num_lc, "plan must cover every LC tenant");
        let telemetry = manager.take_telemetry();

        // Steady phase for the remainder of the slice. A failed
        // reconfiguration command leaves every job in the configuration it
        // last ran (gating still works — only reshaping fails), so the
        // *applied* plan can differ from what the manager requested.
        let applied_plan = if qf.reconfig_fail {
            Plan {
                lc: plan
                    .lc
                    .iter()
                    .enumerate()
                    .map(|(i, a)| LcAssignment {
                        cores: a.cores,
                        config: tb.last_config[i].unwrap_or(a.config),
                    })
                    .collect(),
                batch: plan
                    .batch
                    .iter()
                    .enumerate()
                    .map(|(j, a)| match a {
                        BatchAction::Run(cfg) => {
                            BatchAction::Run(tb.last_config[num_lc + j].unwrap_or(*cfg))
                        }
                        BatchAction::Gated => BatchAction::Gated,
                    })
                    .collect(),
            }
        } else {
            plan.clone()
        };
        let steady_ms = (tb.slice_end_ms - tb.now_ms).max(0.0);
        let lc_configs: Vec<Vec<JobConfig>> = applied_plan
            .lc
            .iter()
            .map(|a| vec![a.config; a.cores])
            .collect();
        let steady = if steady_ms > 0.0 {
            Some(tb.run_frame(&lc_configs, &applied_plan.batch, steady_ms))
        } else {
            None
        };

        let tails_ms: Vec<f64> = (0..num_lc).map(|i| tb.window_p99(i)).collect();
        let chip_watts = tb.energy_mj / TIMESLICE_MS;
        let batch_instr: f64 = tb.instructions[num_lc..].iter().sum();
        let gmean = steady
            .as_ref()
            .map(|r| {
                // Jobs idled by time-multiplex rotation executed nothing
                // this slice; the geo-mean covers the jobs that ran.
                let running: Vec<simulator::Bips> = applied_plan
                    .batch
                    .iter()
                    .enumerate()
                    .filter(|(_, a)| matches!(a, BatchAction::Run(_)))
                    .map(|(j, _)| r.per_job_bips[num_lc + j])
                    .filter(|b| b.get() > 0.0)
                    .collect();
                simulator::metrics::geometric_mean(&running).get()
            })
            .unwrap_or(0.0);

        let record = SliceRecord {
            t_s,
            cap_watts,
            chip_watts,
            power_violation: chip_watts > cap_watts * 1.001,
            lc: lc_specs
                .iter()
                .enumerate()
                .map(|(i, lc)| crate::types::LcSliceRecord {
                    service: lc.service.name,
                    qos_ms: lc.qos_ms,
                    load: tb.current_load[i],
                    tail_ms: tails_ms[i],
                    qos_violation: tails_ms[i] > lc.qos_ms,
                    cores: applied_plan.lc[i].cores,
                    config: applied_plan.lc[i].config,
                })
                .collect(),
            batch_instructions: batch_instr,
            total_instructions: tb.instructions.iter().sum(),
            per_job_instructions: tb.instructions.clone(),
            batch_configs: applied_plan.batch.iter().map(|a| a.config()).collect(),
            batch_gmean_bips: gmean,
            telemetry,
            fault: if injector.is_clean() {
                None
            } else {
                Some(slice_faults)
            },
        };

        // Tell the manager what happened (noisy measurements). The outcome
        // carries the *applied* plan so observations land on the
        // configurations that physically ran.
        let (m_bips, mut m_watts) = if let Some(r) = &steady {
            let mut bips = Vec::with_capacity(num_jobs);
            let mut watts = Vec::with_capacity(num_jobs);
            for j in 0..num_jobs {
                let per_core = if j < num_lc {
                    applied_plan.lc[j].cores as f64
                } else {
                    1.0
                };
                bips.push(tb.noisy(r.per_job_bips[j].get() / per_core));
                watts.push(tb.noisy(r.per_job_watts[j].get() / per_core));
            }
            (bips, watts)
        } else {
            (vec![0.0; num_jobs], vec![0.0; num_jobs])
        };
        // A power-telemetry blackout NaNs the watt readings after the noise
        // draws, keeping the RNG stream identical to a clean run.
        if qf.power_blackout {
            for w in m_watts.iter_mut() {
                *w = f64::NAN;
            }
        }
        let measured_tails: Vec<f64> = tails_ms.iter().map(|&t| tb.noisy(t)).collect();
        manager.observe(&SliceOutcome {
            plan: applied_plan.clone(),
            measured_bips: m_bips,
            measured_watts: m_watts,
            tails_ms: measured_tails.clone(),
        });

        for (i, &tail) in measured_tails.iter().enumerate().take(num_lc) {
            self.last_tails[i] = Some(tail);
            self.last_cores[i] = applied_plan.lc[i].cores;
        }
        tb.rotation += 1;
        tb.now_ms = tb.slice_end_ms;
        self.next_slice += 1;
        self.slices.push(record);
        // Pushed on the line above, so the vector is non-empty.
        #[allow(clippy::unwrap_used)]
        self.slices.last().unwrap()
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::testbed::run_scenario;
    use workloads::batch;

    /// A trivial manager: everything at the widest configuration.
    struct Widest;

    impl ResourceManager for Widest {
        fn name(&self) -> String {
            "widest".to_string()
        }

        fn plan(
            &mut self,
            info: &SliceInfo,
            _probe: &mut dyn FnMut(&ProfilePlan, f64) -> ProfileSample,
        ) -> Plan {
            let cores: Vec<usize> = info.lc.iter().map(|l| l.last_cores).collect();
            Plan::all_widest(&cores, info.num_batch)
        }
    }

    fn quiet(slices: usize) -> Scenario {
        Scenario {
            noise: 0.0,
            phases: false,
            duration_slices: slices,
            ..Scenario::quick_demo()
        }
    }

    #[test]
    fn stepping_matches_run_scenario_exactly() {
        let s = Scenario::quick_demo();
        let whole = run_scenario(&s, &mut Widest);
        let mut driver = ScenarioDriver::new(&s);
        let mut m = Widest;
        while !driver.is_done() {
            driver.step(&mut m);
        }
        let stepped = driver.into_record(m.name());
        assert_eq!(whole, stepped);
    }

    #[test]
    fn runtime_admission_matches_a_static_arrival() {
        let newcomer = batch::mix(1, 0xBEEF).apps[0];
        // Static: the job is declared up front, arriving at slice 2.
        let mut s_static = quiet(4);
        s_static.jobs.push(JobSpec::Batch(BatchJobSpec {
            app: newcomer,
            arrive_slice: 2,
            depart_slice: None,
        }));
        let expected = run_scenario(&s_static, &mut Widest);

        // Dynamic: the same job is admitted between slices 1 and 2.
        let mut driver = ScenarioDriver::new(&quiet(4));
        let mut m = Widest;
        driver.step(&mut m);
        driver.step(&mut m);
        let idx = driver.admit_batch(newcomer);
        assert_eq!(idx, quiet(4).num_batch());
        driver.step(&mut m);
        driver.step(&mut m);
        let got = driver.into_record(m.name());

        // The pre-admission slices differ in record *shape* (the static run
        // already carries the job's zero-instruction slot) but not in any
        // simulated quantity; from the arrival slice on they are identical.
        assert_eq!(got.slices.len(), expected.slices.len());
        for (i, (g, e)) in got.slices.iter().zip(&expected.slices).enumerate() {
            assert_eq!(g.chip_watts.to_bits(), e.chip_watts.to_bits(), "slice {i}");
            assert_eq!(
                g.total_instructions.to_bits(),
                e.total_instructions.to_bits(),
                "slice {i}"
            );
            assert_eq!(g.tail_ms().to_bits(), e.tail_ms().to_bits(), "slice {i}");
        }
        assert_eq!(&got.slices[2..], &expected.slices[2..]);
    }

    #[test]
    fn runtime_drain_matches_a_static_departure() {
        // Static: batch job 0 departs before slice 2.
        let mut s_static = quiet(4);
        for job in s_static.jobs.iter_mut() {
            if let JobSpec::Batch(b) = job {
                b.depart_slice = Some(2);
                break;
            }
        }
        let expected = run_scenario(&s_static, &mut Widest);

        // Dynamic: the same departure is requested between slices 1 and 2.
        let mut driver = ScenarioDriver::new(&quiet(4));
        let mut m = Widest;
        driver.step(&mut m);
        driver.step(&mut m);
        driver.drain_batch(0).expect("job 0 is running");
        driver.step(&mut m);
        driver.step(&mut m);
        assert_eq!(driver.into_record(m.name()), expected);
    }

    #[test]
    fn drain_rejects_unknown_and_departed_jobs() {
        let mut driver = ScenarioDriver::new(&quiet(3));
        assert_eq!(
            driver.drain_batch(999),
            Err(DriveError::UnknownBatchJob(999))
        );
        driver.drain_batch(0).expect("running");
        assert_eq!(driver.drain_batch(0), Err(DriveError::NotRunning(0)));
    }

    #[test]
    fn step_past_the_horizon_keeps_simulating() {
        let mut driver = ScenarioDriver::new(&quiet(2));
        let mut m = Widest;
        while !driver.is_done() {
            driver.step(&mut m);
        }
        let extra = driver.step(&mut m).clone();
        assert_eq!(extra.t_s, 0.2);
        assert!(extra.total_instructions > 0.0);
    }
}
