//! The simulated server every resource manager runs on.
//!
//! A [`Scenario`] fixes the co-location (one TailBench-like service plus a
//! 16-app SPEC mix), the input-load pattern, the power-cap schedule, and the
//! chip. [`run_scenario`] advances it in 100 ms timeslices; each slice the
//! [`ResourceManager`] under test may run short profiling frames (consuming
//! real slice time, as in the paper — "results include all overheads") and
//! must return a [`Plan`]; the remainder of the slice runs in steady state.
//! The shared vocabulary (scenarios, plans, records) lives in
//! [`crate::types`]; this module is only the simulation loop.
//!
//! Managers only see *measurements*: noisy per-job throughput and power
//! samples from the frames they request, and the tail latency of the
//! previous timeslice. Ground truth (exact instructions, chip power, QoS
//! verdicts) goes into the per-slice records that the experiment harness
//! reports.
//!
//! Tail latency over a slice is computed from the *mixture* of queueing
//! regimes the slice contained: a 1 ms profiling frame in a narrow
//! configuration contributes ~1 % of the window's requests, which is exactly
//! the paper's argument for why Flicker's long profiling phases blow the
//! 99th percentile while CuttleSys' 2 ms split-halves profiling does not.

use rand::rngs::StdRng;
use rand::SeedableRng;
use simulator::{CacheAlloc, Chip, CoreState, JobConfig, JobId, LlcPartition};
use workloads::phase::PhasedProfile;
use workloads::queueing::MmcQueue;

use crate::rng_normal;
use crate::types::{
    BatchAction, ProfilePlan, ProfileSample, ResourceManager, RunRecord, SamplePoint, Scenario,
    SliceInfo, SliceOutcome, SliceRecord, TIMESLICE_MS,
};

/// A queueing regime segment within a slice.
struct TailSegment {
    duration_ms: f64,
    servers: usize,
    service_rate: f64,
    arrival_rate: f64,
}

impl TailSegment {
    /// Service capacity in requests per millisecond.
    fn capacity(&self) -> f64 {
        self.servers as f64 * self.service_rate
    }

    /// Steady-state stochastic p99 with utilization capped below
    /// saturation: the fluid backlog model accounts for overload
    /// separately, so the stochastic component here only models queueing
    /// jitter.
    fn stochastic_p99(&self) -> f64 {
        let capped_arrival = self.arrival_rate.min(0.95 * self.capacity());
        MmcQueue::new(self.servers, self.service_rate, capped_arrival)
            .p99_ms()
            .get()
    }
}

/// The simulated server.
pub struct Testbed {
    scenario: Scenario,
    chip: Chip,
    profiles: Vec<PhasedProfile>,
    rng: StdRng,
    now_ms: f64,
    slice_end_ms: f64,
    current_load: f64,
    // Per-slice accumulators.
    energy_mj: f64,
    instructions: Vec<f64>,
    tail_segments: Vec<TailSegment>,
    carry_backlog: f64,
    rotation: usize,
    /// Configuration each job ran in during the previous frame, for
    /// charging reconfiguration transition stalls.
    last_config: Vec<Option<JobConfig>>,
}

impl Testbed {
    /// Builds the testbed for a scenario.
    ///
    /// # Panics
    ///
    /// Panics if the scenario's LC core count is zero or exceeds the chip.
    pub fn new(scenario: &Scenario) -> Testbed {
        assert!(
            scenario.lc_cores > 0 && scenario.lc_cores < scenario.params.num_cores,
            "LC cores must leave room for batch jobs"
        );
        let chip = Chip::new(scenario.params, scenario.kind);
        let mut profiles = Vec::with_capacity(1 + scenario.num_batch());
        let svc_profile = scenario.service.profile;
        profiles.push(if scenario.phases {
            PhasedProfile::with_seed(svc_profile, scenario.seed ^ 0xABCD)
        } else {
            PhasedProfile::steady(svc_profile)
        });
        for (i, app) in scenario.mix.apps.iter().enumerate() {
            profiles.push(if scenario.phases {
                PhasedProfile::with_seed(app.profile, scenario.seed ^ (0x1000 + i as u64))
            } else {
                PhasedProfile::steady(app.profile)
            });
        }
        Testbed {
            chip,
            profiles,
            rng: StdRng::seed_from_u64(scenario.seed),
            now_ms: 0.0,
            slice_end_ms: 0.0,
            current_load: 0.0,
            energy_mj: 0.0,
            instructions: vec![0.0; 1 + scenario.num_batch()],
            tail_segments: Vec::new(),
            carry_backlog: 0.0,
            rotation: 0,
            last_config: vec![None; 1 + scenario.num_batch()],
            scenario: scenario.clone(),
        }
    }

    fn noisy(&mut self, value: f64) -> f64 {
        let sigma = self.scenario.noise;
        if sigma == 0.0 {
            return value;
        }
        (value * (1.0 + sigma * rng_normal(&mut self.rng))).max(0.0)
    }

    /// Instantaneous profiles at the current simulation time.
    fn profiles_now(&self) -> Vec<simulator::AppProfile> {
        let t_s = self.now_ms / 1000.0;
        self.profiles.iter().map(|p| p.at(t_s)).collect()
    }

    /// Builds core states and partition for a frame; returns also the list
    /// of running batch jobs (after core-count multiplexing).
    fn frame_layout(
        &mut self,
        lc_cores: usize,
        lc_configs: &[JobConfig],
        batch: &[BatchAction],
    ) -> (Vec<CoreState>, LlcPartition, Vec<usize>) {
        assert_eq!(lc_configs.len(), lc_cores, "need one LC config per LC core");
        assert_eq!(
            batch.len(),
            self.scenario.num_batch(),
            "one action per batch job"
        );
        let num_cores = self.scenario.params.num_cores;
        assert!(lc_cores < num_cores, "LC cannot occupy the whole chip");
        let batch_cores = num_cores - lc_cores;

        let mut cores = Vec::with_capacity(num_cores);
        let mut partition = LlcPartition::new();
        for cfg in lc_configs {
            cores.push(CoreState::Active {
                job: JobId(0),
                config: cfg.core,
            });
        }
        // The LC job's cache allocation follows its (first) configuration.
        partition.set(
            JobId(0),
            lc_configs
                .first()
                .map(|c| c.cache)
                .unwrap_or(CacheAlloc::One),
        );

        let runnable: Vec<usize> = (0..batch.len())
            .filter(|&j| matches!(batch[j], BatchAction::Run(_)))
            .collect();
        // Time-multiplex when the LC service reclaimed cores: rotate which
        // jobs run each frame.
        let running: Vec<usize> = if runnable.len() > batch_cores {
            let start = self.rotation % runnable.len();
            (0..batch_cores)
                .map(|k| runnable[(start + k) % runnable.len()])
                .collect()
        } else {
            runnable
        };
        for &j in &running {
            let config = batch[j].config().expect("running job has a config");
            cores.push(CoreState::Active {
                job: JobId(1 + j),
                config: config.core,
            });
            partition.set(JobId(1 + j), config.cache);
        }
        // Remaining cores (gated jobs' cores and any surplus) are gated.
        while cores.len() < num_cores {
            cores.push(CoreState::Gated);
        }
        (cores, partition, running)
    }

    /// Runs one frame, accumulating energy, instructions, and the LC tail
    /// segment; returns the frame result and contention.
    fn run_frame(
        &mut self,
        lc_cores: usize,
        lc_configs: &[JobConfig],
        batch: &[BatchAction],
        ms: f64,
    ) -> simulator::FrameResult {
        let (cores, partition, _running) = self.frame_layout(lc_cores, lc_configs, batch);
        let profiles = self.profiles_now();
        let result = self.chip.simulate_frame(&cores, &profiles, &partition, ms);
        self.energy_mj += result.chip_watts.get() * ms;
        // Reconfiguration transition stall: a job whose configuration
        // changed since the previous frame loses the drain/gating time at
        // the head of this frame.
        let transition_ms = self.scenario.params.reconfig_transition_us / 1000.0;
        let mut stall = vec![0.0f64; 1 + self.scenario.num_batch()];
        let lc_now = lc_configs.first().copied();
        if lc_now.is_some() && self.last_config[0].is_some() && self.last_config[0] != lc_now {
            stall[0] = (transition_ms / ms).min(1.0);
        }
        self.last_config[0] = lc_now.or(self.last_config[0]);
        for (j, action) in batch.iter().enumerate() {
            if let BatchAction::Run(cfg) = action {
                if self.last_config[1 + j].is_some_and(|prev| prev != *cfg) {
                    stall[1 + j] = (transition_ms / ms).min(1.0);
                }
                self.last_config[1 + j] = Some(*cfg);
            }
        }
        for (j, instr) in self.instructions.iter_mut().enumerate() {
            *instr += result.job_instructions(JobId(j)) * (1.0 - stall[j]);
        }
        // Tail segment: heterogeneous LC cores are approximated by the mean
        // per-core service rate.
        let svc = &self.scenario.service;
        let mean_rate = lc_configs
            .iter()
            .map(|c| {
                svc.service_rate_per_core(self.chip.perf(), c.core, c.cache, result.contention)
            })
            .sum::<f64>()
            / lc_cores.max(1) as f64;
        self.tail_segments.push(TailSegment {
            duration_ms: ms,
            servers: lc_cores.max(1),
            service_rate: mean_rate.max(1e-9),
            arrival_rate: svc.arrival_rate_per_ms(self.current_load),
        });
        self.now_ms += ms;
        result
    }

    /// 99th percentile latency over the slice, from a fluid-backlog model
    /// over the slice's segments plus a capped stochastic component.
    ///
    /// The fluid pass integrates the queue length `Q' = λ − kμ(t)` across
    /// segments (carrying backlog across slices, so sustained overload
    /// compounds until the relocation policy reacts); a request arriving at
    /// time `t` waits `Q(t)` drained at the slice's best capacity on top of
    /// the segment's steady-state jitter. The jitter term is additionally
    /// capped at `segment duration + recovery p99`: a request that starts
    /// in a brief narrow-configuration frame finishes under the
    /// configuration that follows it, which is why CuttleSys' 2 ms
    /// profiling barely moves the window p99 while Flicker's 90 ms
    /// profiling destroys it (§VIII-E).
    fn window_p99(&mut self) -> f64 {
        if self.tail_segments.is_empty() {
            return 0.0;
        }
        let recovery_capacity = self
            .tail_segments
            .iter()
            .map(TailSegment::capacity)
            .fold(f64::MIN_POSITIVE, f64::max);
        let recovery_p99 = self
            .tail_segments
            .iter()
            .max_by(|a, b| a.capacity().total_cmp(&b.capacity()))
            .expect("segments are non-empty")
            .stochastic_p99();

        let mut q = self.carry_backlog;
        let mut samples: Vec<(f64, f64)> = Vec::new();
        for seg in &self.tail_segments {
            let steps = (seg.duration_ms / 0.25).ceil().max(1.0) as usize;
            let dt = seg.duration_ms / steps as f64;
            let jitter = seg.stochastic_p99().min(seg.duration_ms + recovery_p99);
            for _ in 0..steps {
                q = (q + (seg.arrival_rate - seg.capacity()) * dt).max(0.0);
                samples.push((q / recovery_capacity + jitter, dt));
            }
        }
        self.carry_backlog = q;

        // Weighted 99th percentile over arrival time (arrival rate is
        // constant within a slice, so time weights are arrival weights).
        samples.sort_by(|a, b| a.0.total_cmp(&b.0));
        let total: f64 = samples.iter().map(|s| s.1).sum();
        let mut acc = 0.0;
        for (latency, w) in &samples {
            acc += w;
            if acc >= 0.99 * total {
                return *latency;
            }
        }
        samples.last().expect("samples are non-empty").0
    }
}

/// Runs a scenario under a manager, returning ground-truth records.
pub fn run_scenario(scenario: &Scenario, manager: &mut dyn ResourceManager) -> RunRecord {
    let mut tb = Testbed::new(scenario);
    let mut slices = Vec::with_capacity(scenario.duration_slices);
    let mut last_tail: Option<f64> = None;
    let mut last_lc_cores = scenario.lc_cores;

    for slice in 0..scenario.duration_slices {
        let t_s = slice as f64 * TIMESLICE_MS / 1000.0;
        tb.current_load = scenario.load.load_at(t_s);
        let cap_watts = scenario.cap.load_at(t_s) * scenario.nominal_budget_watts();
        tb.slice_end_ms = (slice + 1) as f64 * TIMESLICE_MS;
        tb.energy_mj = 0.0;
        tb.instructions.iter_mut().for_each(|i| *i = 0.0);
        tb.tail_segments.clear();

        let info = SliceInfo {
            slice,
            load: tb.current_load,
            cap_watts,
            num_cores: scenario.params.num_cores,
            num_batch: scenario.num_batch(),
            qos_ms: scenario.service.qos_ms,
            last_tail_ms: last_tail,
            last_lc_cores,
        };

        // Let the manager probe; each probe consumes slice time.
        let plan = {
            let tb_ref = &mut tb;
            let mut probe = |pp: &ProfilePlan, ms: f64| -> ProfileSample {
                let remaining = tb_ref.slice_end_ms - tb_ref.now_ms;
                let ms = ms.min(remaining.max(0.0));
                if ms <= 0.0 {
                    return ProfileSample {
                        duration_ms: 0.0,
                        samples: Vec::new(),
                        lc_tail_ms: 0.0,
                    };
                }
                let result = tb_ref.run_frame(pp.lc_cores, &pp.lc_configs, &pp.batch, ms);
                let mut samples = Vec::new();
                // LC: one sample per distinct configuration among its cores.
                let mut seen: Vec<JobConfig> = Vec::new();
                for cfg in &pp.lc_configs {
                    if seen.contains(cfg) {
                        continue;
                    }
                    seen.push(*cfg);
                    let cores: Vec<usize> = pp
                        .lc_configs
                        .iter()
                        .enumerate()
                        .filter(|(_, c)| *c == cfg)
                        .map(|(i, _)| i)
                        .collect();
                    let bips = cores
                        .iter()
                        .map(|&i| result.per_core_bips[i].get())
                        .sum::<f64>()
                        / cores.len() as f64;
                    let watts = cores
                        .iter()
                        .map(|&i| result.per_core_watts[i].get())
                        .sum::<f64>()
                        / cores.len() as f64;
                    samples.push(SamplePoint {
                        job: 0,
                        config: *cfg,
                        bips: tb_ref.noisy(bips),
                        watts: tb_ref.noisy(watts),
                    });
                }
                // Batch: per-core bips of each running job.
                for (j, action) in pp.batch.iter().enumerate() {
                    if let BatchAction::Run(config) = action {
                        let bips = result.per_job_bips[1 + j].get();
                        if bips > 0.0 {
                            let watts = result.per_job_watts[1 + j].get();
                            samples.push(SamplePoint {
                                job: 1 + j,
                                config: *config,
                                bips: tb_ref.noisy(bips),
                                watts: tb_ref.noisy(watts),
                            });
                        }
                    }
                }
                let lc_tail_ms = {
                    let seg = tb_ref.tail_segments.last().expect("frame pushed a segment");
                    let p99 = MmcQueue::new(seg.servers, seg.service_rate, seg.arrival_rate)
                        .p99_ms()
                        .get();
                    tb_ref.noisy(p99)
                };
                ProfileSample {
                    duration_ms: ms,
                    samples,
                    lc_tail_ms,
                }
            };
            manager.plan(&info, &mut probe)
        };
        let telemetry = manager.take_telemetry();

        // Steady phase for the remainder of the slice.
        let steady_ms = (tb.slice_end_ms - tb.now_ms).max(0.0);
        let lc_configs = vec![plan.lc_config; plan.lc_cores];
        let steady = if steady_ms > 0.0 {
            Some(tb.run_frame(plan.lc_cores, &lc_configs, &plan.batch, steady_ms))
        } else {
            None
        };

        let tail_ms = tb.window_p99();
        let chip_watts = tb.energy_mj / TIMESLICE_MS;
        let batch_instr: f64 = tb.instructions[1..].iter().sum();
        let gmean = steady
            .as_ref()
            .map(|r| {
                // Jobs idled by time-multiplex rotation executed nothing
                // this slice; the geo-mean covers the jobs that ran.
                let running: Vec<simulator::Bips> = plan
                    .batch
                    .iter()
                    .enumerate()
                    .filter(|(_, a)| matches!(a, BatchAction::Run(_)))
                    .map(|(j, _)| r.per_job_bips[1 + j])
                    .filter(|b| b.get() > 0.0)
                    .collect();
                simulator::metrics::geometric_mean(&running).get()
            })
            .unwrap_or(0.0);

        let record = SliceRecord {
            t_s,
            load: tb.current_load,
            cap_watts,
            chip_watts,
            power_violation: chip_watts > cap_watts * 1.001,
            tail_ms,
            qos_violation: tail_ms > scenario.service.qos_ms,
            batch_instructions: batch_instr,
            total_instructions: tb.instructions.iter().sum(),
            per_job_instructions: tb.instructions.clone(),
            lc_cores: plan.lc_cores,
            lc_config: plan.lc_config,
            batch_configs: plan.batch.iter().map(|a| a.config()).collect(),
            batch_gmean_bips: gmean,
            telemetry,
        };

        // Tell the manager what happened (noisy measurements).
        let (m_bips, m_watts) = if let Some(r) = &steady {
            let mut bips = Vec::with_capacity(1 + scenario.num_batch());
            let mut watts = Vec::with_capacity(1 + scenario.num_batch());
            for j in 0..=scenario.num_batch() {
                let per_core = if j == 0 { plan.lc_cores as f64 } else { 1.0 };
                bips.push(tb.noisy(r.per_job_bips[j].get() / per_core));
                watts.push(tb.noisy(r.per_job_watts[j].get() / per_core));
            }
            (bips, watts)
        } else {
            (
                vec![0.0; 1 + scenario.num_batch()],
                vec![0.0; 1 + scenario.num_batch()],
            )
        };
        let measured_tail = tb.noisy(tail_ms);
        manager.observe(&SliceOutcome {
            plan: plan.clone(),
            measured_bips: m_bips,
            measured_watts: m_watts,
            tail_ms: measured_tail,
        });

        last_tail = Some(measured_tail);
        last_lc_cores = plan.lc_cores;
        tb.rotation += 1;
        tb.now_ms = tb.slice_end_ms;
        slices.push(record);
    }

    RunRecord {
        scheme: manager.name(),
        slices,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Plan;
    use simulator::CoreConfig;

    /// A trivial manager: everything at the widest configuration.
    struct Widest;

    impl ResourceManager for Widest {
        fn name(&self) -> String {
            "widest".to_string()
        }

        fn plan(
            &mut self,
            info: &SliceInfo,
            _probe: &mut dyn FnMut(&ProfilePlan, f64) -> ProfileSample,
        ) -> Plan {
            Plan::all_widest(info.last_lc_cores, info.num_batch)
        }
    }

    /// A manager that gates every batch job.
    struct AllGated;

    impl ResourceManager for AllGated {
        fn name(&self) -> String {
            "all-gated".to_string()
        }

        fn plan(
            &mut self,
            info: &SliceInfo,
            _probe: &mut dyn FnMut(&ProfilePlan, f64) -> ProfileSample,
        ) -> Plan {
            Plan {
                lc_cores: info.last_lc_cores,
                lc_config: JobConfig::new(CoreConfig::widest(), CacheAlloc::Four),
                batch: vec![BatchAction::Gated; info.num_batch],
            }
        }
    }

    #[test]
    fn widest_plan_runs_and_meets_qos_at_80_percent() {
        let scenario = Scenario {
            noise: 0.0,
            phases: false,
            ..Scenario::quick_demo()
        };
        let record = run_scenario(&scenario, &mut Widest);
        assert_eq!(record.slices.len(), 3);
        assert_eq!(
            record.qos_violations(),
            0,
            "widest config must meet QoS: {record:?}"
        );
        assert!(record.batch_instructions() > 0.0);
        // A manager without instrumentation leaves the telemetry empty.
        assert!(record.slices.iter().all(|s| s.telemetry.is_none()));
        assert!(record.stage_summary().is_none());
    }

    #[test]
    fn gating_batch_jobs_zeroes_their_instructions() {
        let scenario = Scenario {
            noise: 0.0,
            phases: false,
            ..Scenario::quick_demo()
        };
        let gated = run_scenario(&scenario, &mut AllGated);
        assert_eq!(gated.batch_instructions(), 0.0);
        // The LC service still executes.
        assert!(gated.slices[0].total_instructions > 0.0);
        // And draws far less power than the all-widest plan.
        let widest = run_scenario(&scenario, &mut Widest);
        assert!(gated.slices[0].chip_watts < widest.slices[0].chip_watts / 2.0);
    }

    #[test]
    fn probe_time_is_deducted_from_the_slice() {
        struct Prober {
            probed_ms: f64,
        }
        impl ResourceManager for Prober {
            fn name(&self) -> String {
                "prober".into()
            }
            fn plan(
                &mut self,
                info: &SliceInfo,
                probe: &mut dyn FnMut(&ProfilePlan, f64) -> ProfileSample,
            ) -> Plan {
                let pp = ProfilePlan {
                    lc_cores: info.last_lc_cores,
                    lc_configs: vec![JobConfig::profiling_high(); info.last_lc_cores],
                    batch: vec![BatchAction::Run(JobConfig::profiling_low()); info.num_batch],
                };
                let s = probe(&pp, 1.0);
                self.probed_ms += s.duration_ms;
                assert!(!s.samples.is_empty());
                Plan::all_widest(info.last_lc_cores, info.num_batch)
            }
        }
        let scenario = Scenario {
            noise: 0.0,
            phases: false,
            ..Scenario::quick_demo()
        };
        let mut m = Prober { probed_ms: 0.0 };
        let record = run_scenario(&scenario, &mut m);
        assert_eq!(m.probed_ms, 3.0, "one 1 ms probe per slice");
        assert_eq!(record.slices.len(), 3);
    }

    #[test]
    fn profile_samples_report_distinct_lc_configs() {
        struct SplitProber;
        impl ResourceManager for SplitProber {
            fn name(&self) -> String {
                "split".into()
            }
            fn plan(
                &mut self,
                info: &SliceInfo,
                probe: &mut dyn FnMut(&ProfilePlan, f64) -> ProfileSample,
            ) -> Plan {
                let k = info.last_lc_cores;
                let mut lc_configs = vec![JobConfig::profiling_high(); k];
                for cfg in lc_configs.iter_mut().skip(k / 2) {
                    *cfg = JobConfig::profiling_low();
                }
                let pp = ProfilePlan {
                    lc_cores: k,
                    lc_configs,
                    batch: vec![BatchAction::Run(JobConfig::profiling_high()); info.num_batch],
                };
                let s = probe(&pp, 1.0);
                let lc_samples: Vec<_> = s.samples.iter().filter(|sp| sp.job == 0).collect();
                assert_eq!(lc_samples.len(), 2, "expected high+low LC samples");
                assert!(lc_samples[0].bips > lc_samples[1].bips);
                Plan::all_widest(k, info.num_batch)
            }
        }
        let scenario = Scenario {
            noise: 0.0,
            phases: false,
            ..Scenario::quick_demo()
        };
        run_scenario(&scenario, &mut SplitProber);
    }

    #[test]
    fn narrow_lc_config_violates_qos_at_high_load() {
        struct NarrowLc;
        impl ResourceManager for NarrowLc {
            fn name(&self) -> String {
                "narrow-lc".into()
            }
            fn plan(
                &mut self,
                info: &SliceInfo,
                _probe: &mut dyn FnMut(&ProfilePlan, f64) -> ProfileSample,
            ) -> Plan {
                let mut plan = Plan::all_widest(info.last_lc_cores, info.num_batch);
                plan.lc_config = JobConfig::profiling_low();
                plan
            }
        }
        let scenario = Scenario {
            noise: 0.0,
            phases: false,
            ..Scenario::quick_demo()
        };
        let record = run_scenario(&scenario, &mut NarrowLc);
        assert_eq!(record.qos_violations(), record.slices.len());
        assert!(record.worst_tail_ratio(scenario.service.qos_ms) > 2.0);
    }

    #[test]
    fn reclaiming_cores_multiplexes_batch_jobs() {
        struct Reclaimer;
        impl ResourceManager for Reclaimer {
            fn name(&self) -> String {
                "reclaimer".into()
            }
            fn plan(
                &mut self,
                info: &SliceInfo,
                _probe: &mut dyn FnMut(&ProfilePlan, f64) -> ProfileSample,
            ) -> Plan {
                Plan {
                    lc_cores: 18,
                    ..Plan::all_widest(18, info.num_batch)
                }
            }
        }
        let scenario = Scenario {
            noise: 0.0,
            phases: false,
            ..Scenario::quick_demo()
        };
        let reclaimed = run_scenario(&scenario, &mut Reclaimer);
        let baseline = run_scenario(&scenario, &mut Widest);
        // 14 cores for 16 jobs: batch throughput must drop vs 16 cores.
        assert!(
            reclaimed.batch_instructions() < baseline.batch_instructions(),
            "time multiplexing should cost throughput"
        );
        // But every job should still make progress across slices (rotation).
        let per_job: Vec<f64> = (1..=16)
            .map(|j| {
                reclaimed
                    .slices
                    .iter()
                    .map(|s| s.per_job_instructions[j])
                    .sum()
            })
            .collect();
        assert!(
            per_job.iter().all(|&i| i > 0.0),
            "rotation must serve every job: {per_job:?}"
        );
    }

    #[test]
    fn nominal_budget_is_stable_and_positive() {
        let scenario = Scenario::paper_default();
        let b = scenario.nominal_budget_watts();
        assert!(b > 50.0 && b < 400.0, "implausible budget {b}");
        assert_eq!(b, scenario.nominal_budget_watts());
    }
}
