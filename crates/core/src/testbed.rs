//! The simulated server every resource manager runs on.
//!
//! A [`Scenario`] fixes the co-location (one or more TailBench-like services
//! plus a SPEC batch mix, with optional arrival/departure churn), the
//! per-tenant input-load patterns, the power-cap schedule, and the chip.
//! [`run_scenario`] advances it in 100 ms timeslices; each slice the
//! [`ResourceManager`] under test may run short profiling frames (consuming
//! real slice time, as in the paper — "results include all overheads") and
//! must return a [`Plan`]; the remainder of the slice runs in steady state.
//! The shared vocabulary (scenarios, plans, records) lives in
//! [`crate::types`]; this module is only the simulation loop.
//!
//! Managers only see *measurements*: noisy per-job throughput and power
//! samples from the frames they request, and each tenant's tail latency from
//! the previous timeslice. Ground truth (exact instructions, chip power, QoS
//! verdicts) goes into the per-slice records that the experiment harness
//! reports.
//!
//! Tail latency over a slice is computed per tenant from the *mixture* of
//! queueing regimes the slice contained: a 1 ms profiling frame in a narrow
//! configuration contributes ~1 % of the window's requests, which is exactly
//! the paper's argument for why Flicker's long profiling phases blow the
//! 99th percentile while CuttleSys' 2 ms split-halves profiling does not.

use rand::rngs::StdRng;
use rand::SeedableRng;
use simulator::{CacheAlloc, Chip, CoreState, JobConfig, JobId, LlcPartition};
use workloads::phase::PhasedProfile;
use workloads::queueing::MmcQueue;

use crate::rng_normal;
use crate::types::{BatchAction, ResourceManager, RunRecord, Scenario};

/// A queueing regime segment within a slice, for one LC tenant.
pub(crate) struct TailSegment {
    pub(crate) duration_ms: f64,
    pub(crate) servers: usize,
    pub(crate) service_rate: f64,
    pub(crate) arrival_rate: f64,
}

impl TailSegment {
    /// Service capacity in requests per millisecond.
    fn capacity(&self) -> f64 {
        self.servers as f64 * self.service_rate
    }

    /// Steady-state stochastic p99 with utilization capped below
    /// saturation: the fluid backlog model accounts for overload
    /// separately, so the stochastic component here only models queueing
    /// jitter.
    fn stochastic_p99(&self) -> f64 {
        let capped_arrival = self.arrival_rate.min(0.95 * self.capacity());
        MmcQueue::new(self.servers, self.service_rate, capped_arrival)
            .p99_ms()
            .get()
    }
}

/// The simulated server.
///
/// Fields are `pub(crate)` so [`crate::driver::ScenarioDriver`] — the
/// steppable simulation loop split out of this module — can drive frames
/// and mutate churn state without widening the public API.
pub struct Testbed {
    pub(crate) scenario: Scenario,
    pub(crate) chip: Chip,
    pub(crate) profiles: Vec<PhasedProfile>,
    pub(crate) rng: StdRng,
    pub(crate) now_ms: f64,
    pub(crate) slice_end_ms: f64,
    pub(crate) num_lc: usize,
    /// Per-tenant input load during the current slice.
    pub(crate) current_load: Vec<f64>,
    /// Which batch jobs are present during the current slice (churn).
    pub(crate) active: Vec<bool>,
    // Per-slice accumulators.
    pub(crate) energy_mj: f64,
    pub(crate) instructions: Vec<f64>,
    /// Per-tenant queueing regime segments of the current slice.
    pub(crate) tail_segments: Vec<Vec<TailSegment>>,
    /// Per-tenant fluid backlog carried across slices.
    pub(crate) carry_backlog: Vec<f64>,
    pub(crate) rotation: usize,
    /// Configuration each job ran in during the previous frame, for
    /// charging reconfiguration transition stalls.
    pub(crate) last_config: Vec<Option<JobConfig>>,
}

impl Testbed {
    /// Builds the testbed for a scenario.
    ///
    /// # Panics
    ///
    /// Panics if the scenario has no LC tenant, or the tenants' combined
    /// core reservation is zero or exceeds the chip.
    pub fn new(scenario: &Scenario) -> Testbed {
        let num_lc = scenario.num_lc();
        assert!(num_lc > 0, "scenario needs at least one LC tenant");
        let total_lc = scenario.total_lc_cores();
        assert!(
            total_lc > 0 && total_lc < scenario.params.num_cores,
            "LC cores must leave room for batch jobs"
        );
        let chip = Chip::new(scenario.params, scenario.kind);
        let num_jobs = num_lc + scenario.num_batch();
        let mut profiles = Vec::with_capacity(num_jobs);
        for (i, lc) in scenario.lc_jobs().iter().enumerate() {
            profiles.push(if scenario.phases {
                PhasedProfile::with_seed(
                    lc.service.profile,
                    scenario.seed ^ (0xABCD + (i as u64) * 0x10000),
                )
            } else {
                PhasedProfile::steady(lc.service.profile)
            });
        }
        for (i, b) in scenario.batch_jobs().iter().enumerate() {
            profiles.push(if scenario.phases {
                PhasedProfile::with_seed(b.app.profile, scenario.seed ^ (0x1000 + i as u64))
            } else {
                PhasedProfile::steady(b.app.profile)
            });
        }
        Testbed {
            chip,
            profiles,
            rng: StdRng::seed_from_u64(scenario.seed),
            now_ms: 0.0,
            slice_end_ms: 0.0,
            num_lc,
            current_load: vec![0.0; num_lc],
            active: vec![true; scenario.num_batch()],
            energy_mj: 0.0,
            instructions: vec![0.0; num_jobs],
            tail_segments: (0..num_lc).map(|_| Vec::new()).collect(),
            carry_backlog: vec![0.0; num_lc],
            rotation: 0,
            last_config: vec![None; num_jobs],
            scenario: scenario.clone(),
        }
    }

    pub(crate) fn noisy(&mut self, value: f64) -> f64 {
        let sigma = self.scenario.noise;
        if sigma == 0.0 {
            return value;
        }
        (value * (1.0 + sigma * rng_normal(&mut self.rng))).max(0.0)
    }

    /// Instantaneous profiles at the current simulation time.
    fn profiles_now(&self) -> Vec<simulator::AppProfile> {
        let t_s = self.now_ms / 1000.0;
        self.profiles.iter().map(|p| p.at(t_s)).collect()
    }

    /// Builds core states and partition for a frame (LC tenants' cores in
    /// priority order, then batch); returns also the list of running batch
    /// jobs (after churn filtering and core-count multiplexing).
    fn frame_layout(
        &mut self,
        lc_configs: &[Vec<JobConfig>],
        batch: &[BatchAction],
    ) -> (Vec<CoreState>, LlcPartition, Vec<usize>) {
        assert_eq!(lc_configs.len(), self.num_lc, "one config list per tenant");
        assert_eq!(
            batch.len(),
            self.scenario.num_batch(),
            "one action per batch job"
        );
        let num_cores = self.scenario.params.num_cores;
        let lc_cores: usize = lc_configs.iter().map(Vec::len).sum();
        assert!(lc_cores < num_cores, "LC cannot occupy the whole chip");
        let batch_cores = num_cores - lc_cores;

        let mut cores = Vec::with_capacity(num_cores);
        let mut partition = LlcPartition::new();
        for (i, configs) in lc_configs.iter().enumerate() {
            for cfg in configs {
                cores.push(CoreState::Active {
                    job: JobId(i),
                    config: cfg.core,
                });
            }
            // Each tenant's cache allocation follows its (first)
            // configuration.
            partition.set(
                JobId(i),
                configs.first().map(|c| c.cache).unwrap_or(CacheAlloc::One),
            );
        }

        let runnable: Vec<usize> = (0..batch.len())
            .filter(|&j| self.active[j] && matches!(batch[j], BatchAction::Run(_)))
            .collect();
        // Time-multiplex when the LC tenants reclaimed cores: rotate which
        // jobs run each frame.
        let running: Vec<usize> = if runnable.len() > batch_cores {
            let start = self.rotation % runnable.len();
            (0..batch_cores)
                .map(|k| runnable[(start + k) % runnable.len()])
                .collect()
        } else {
            runnable
        };
        for &j in &running {
            // `running` only holds `Run` actions by construction.
            let Some(config) = batch[j].config() else {
                continue;
            };
            cores.push(CoreState::Active {
                job: JobId(self.num_lc + j),
                config: config.core,
            });
            partition.set(JobId(self.num_lc + j), config.cache);
        }
        // Remaining cores (gated jobs' cores and any surplus) are gated.
        while cores.len() < num_cores {
            cores.push(CoreState::Gated);
        }
        (cores, partition, running)
    }

    /// Runs one frame, accumulating energy, instructions, and each tenant's
    /// tail segment; returns the frame result and contention.
    pub(crate) fn run_frame(
        &mut self,
        lc_configs: &[Vec<JobConfig>],
        batch: &[BatchAction],
        ms: f64,
    ) -> simulator::FrameResult {
        let (cores, partition, _running) = self.frame_layout(lc_configs, batch);
        let profiles = self.profiles_now();
        let result = self.chip.simulate_frame(&cores, &profiles, &partition, ms);
        self.energy_mj += result.chip_watts.get() * ms;
        // Reconfiguration transition stall: a job whose configuration
        // changed since the previous frame loses the drain/gating time at
        // the head of this frame.
        let transition_ms = self.scenario.params.reconfig_transition_us / 1000.0;
        let mut stall = vec![0.0f64; self.instructions.len()];
        for (i, configs) in lc_configs.iter().enumerate() {
            let lc_now = configs.first().copied();
            if lc_now.is_some() && self.last_config[i].is_some() && self.last_config[i] != lc_now {
                stall[i] = (transition_ms / ms).min(1.0);
            }
            self.last_config[i] = lc_now.or(self.last_config[i]);
        }
        for (j, action) in batch.iter().enumerate() {
            if let BatchAction::Run(cfg) = action {
                let g = self.num_lc + j;
                if self.last_config[g].is_some_and(|prev| prev != *cfg) {
                    stall[g] = (transition_ms / ms).min(1.0);
                }
                self.last_config[g] = Some(*cfg);
            }
        }
        for (j, instr) in self.instructions.iter_mut().enumerate() {
            *instr += result.job_instructions(JobId(j)) * (1.0 - stall[j]);
        }
        // One tail segment per tenant: heterogeneous cores within a tenant
        // are approximated by the mean per-core service rate.
        let lc_specs = self.scenario.lc_jobs();
        for (i, configs) in lc_configs.iter().enumerate() {
            let svc = &lc_specs[i].service;
            let mean_rate = configs
                .iter()
                .map(|c| {
                    svc.service_rate_per_core(self.chip.perf(), c.core, c.cache, result.contention)
                })
                .sum::<f64>()
                / configs.len().max(1) as f64;
            self.tail_segments[i].push(TailSegment {
                duration_ms: ms,
                servers: configs.len().max(1),
                service_rate: mean_rate.max(1e-9),
                arrival_rate: svc.arrival_rate_per_ms(self.current_load[i]),
            });
        }
        self.now_ms += ms;
        result
    }

    /// Tenant `lc`'s 99th percentile latency over the slice, from a
    /// fluid-backlog model over the slice's segments plus a capped
    /// stochastic component.
    ///
    /// The fluid pass integrates the queue length `Q' = λ − kμ(t)` across
    /// segments (carrying backlog across slices, so sustained overload
    /// compounds until the relocation policy reacts); a request arriving at
    /// time `t` waits `Q(t)` drained at the slice's best capacity on top of
    /// the segment's steady-state jitter. The jitter term is additionally
    /// capped at `segment duration + recovery p99`: a request that starts
    /// in a brief narrow-configuration frame finishes under the
    /// configuration that follows it, which is why CuttleSys' 2 ms
    /// profiling barely moves the window p99 while Flicker's 90 ms
    /// profiling destroys it (§VIII-E).
    pub(crate) fn window_p99(&mut self, lc: usize) -> f64 {
        let segments = &self.tail_segments[lc];
        if segments.is_empty() {
            return 0.0;
        }
        let recovery_capacity = segments
            .iter()
            .map(TailSegment::capacity)
            .fold(f64::MIN_POSITIVE, f64::max);
        let recovery_p99 = segments
            .iter()
            .max_by(|a, b| a.capacity().total_cmp(&b.capacity()))
            .map(TailSegment::stochastic_p99)
            .unwrap_or(0.0);

        let mut q = self.carry_backlog[lc];
        let mut samples: Vec<(f64, f64)> = Vec::new();
        for seg in segments {
            let steps = (seg.duration_ms / 0.25).ceil().max(1.0) as usize;
            let dt = seg.duration_ms / steps as f64;
            let jitter = seg.stochastic_p99().min(seg.duration_ms + recovery_p99);
            for _ in 0..steps {
                q = (q + (seg.arrival_rate - seg.capacity()) * dt).max(0.0);
                samples.push((q / recovery_capacity + jitter, dt));
            }
        }
        self.carry_backlog[lc] = q;

        // Weighted 99th percentile over arrival time (arrival rate is
        // constant within a slice, so time weights are arrival weights).
        samples.sort_by(|a, b| a.0.total_cmp(&b.0));
        let total: f64 = samples.iter().map(|s| s.1).sum();
        let mut acc = 0.0;
        for (latency, w) in &samples {
            acc += w;
            if acc >= 0.99 * total {
                return *latency;
            }
        }
        samples.last().map(|s| s.0).unwrap_or(0.0)
    }
}

/// Runs a scenario under a manager, returning ground-truth records.
///
/// When the scenario carries a non-trivial [`crate::faults::FaultPlan`], the
/// testbed realizes its *environment* side: profiling samples are dropped or
/// corrupted before the manager sees them, power telemetry (probe watts and
/// steady-state measurements) blacks out to NaN, and a failed
/// reconfiguration command leaves every job in its previous configuration
/// for the steady phase. All injection is counter-based and never draws from
/// the testbed's measurement-noise RNG, so a clean plan is bit-identical to
/// a build without fault hooks. Ground-truth records always report what
/// physically ran (the *applied* plan) plus the per-slice
/// [`InjectedFaults`] counts.
pub fn run_scenario(scenario: &Scenario, manager: &mut dyn ResourceManager) -> RunRecord {
    let mut driver = crate::driver::ScenarioDriver::new(scenario);
    while !driver.is_done() {
        driver.step(manager);
    }
    driver.into_record(manager.name())
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::types::{LcAssignment, Plan, ProfilePlan, ProfileSample, SliceInfo};
    use simulator::CoreConfig;

    /// A trivial manager: everything at the widest configuration.
    struct Widest;

    impl ResourceManager for Widest {
        fn name(&self) -> String {
            "widest".to_string()
        }

        fn plan(
            &mut self,
            info: &SliceInfo,
            _probe: &mut dyn FnMut(&ProfilePlan, f64) -> ProfileSample,
        ) -> Plan {
            let cores: Vec<usize> = info.lc.iter().map(|l| l.last_cores).collect();
            Plan::all_widest(&cores, info.num_batch)
        }
    }

    /// A manager that gates every batch job.
    struct AllGated;

    impl ResourceManager for AllGated {
        fn name(&self) -> String {
            "all-gated".to_string()
        }

        fn plan(
            &mut self,
            info: &SliceInfo,
            _probe: &mut dyn FnMut(&ProfilePlan, f64) -> ProfileSample,
        ) -> Plan {
            Plan {
                lc: info
                    .lc
                    .iter()
                    .map(|l| LcAssignment {
                        cores: l.last_cores,
                        config: JobConfig::new(CoreConfig::widest(), CacheAlloc::Four),
                    })
                    .collect(),
                batch: vec![BatchAction::Gated; info.num_batch],
            }
        }
    }

    #[test]
    fn widest_plan_runs_and_meets_qos_at_80_percent() {
        let scenario = Scenario {
            noise: 0.0,
            phases: false,
            ..Scenario::quick_demo()
        };
        let record = run_scenario(&scenario, &mut Widest);
        assert_eq!(record.slices.len(), 3);
        assert_eq!(
            record.qos_violations(),
            0,
            "widest config must meet QoS: {record:?}"
        );
        assert!(record.batch_instructions() > 0.0);
        // A manager without instrumentation leaves the telemetry empty.
        assert!(record.slices.iter().all(|s| s.telemetry.is_none()));
        assert!(record.stage_summary().is_none());
    }

    #[test]
    fn gating_batch_jobs_zeroes_their_instructions() {
        let scenario = Scenario {
            noise: 0.0,
            phases: false,
            ..Scenario::quick_demo()
        };
        let gated = run_scenario(&scenario, &mut AllGated);
        assert_eq!(gated.batch_instructions(), 0.0);
        // The LC service still executes.
        assert!(gated.slices[0].total_instructions > 0.0);
        // And draws far less power than the all-widest plan.
        let widest = run_scenario(&scenario, &mut Widest);
        assert!(gated.slices[0].chip_watts < widest.slices[0].chip_watts / 2.0);
    }

    #[test]
    fn probe_time_is_deducted_from_the_slice() {
        struct Prober {
            probed_ms: f64,
        }
        impl ResourceManager for Prober {
            fn name(&self) -> String {
                "prober".into()
            }
            fn plan(
                &mut self,
                info: &SliceInfo,
                probe: &mut dyn FnMut(&ProfilePlan, f64) -> ProfileSample,
            ) -> Plan {
                let pp = ProfilePlan {
                    lc_configs: info
                        .lc
                        .iter()
                        .map(|l| vec![JobConfig::profiling_high(); l.last_cores])
                        .collect(),
                    batch: vec![BatchAction::Run(JobConfig::profiling_low()); info.num_batch],
                };
                let s = probe(&pp, 1.0);
                self.probed_ms += s.duration_ms;
                assert!(!s.samples.is_empty());
                let cores: Vec<usize> = info.lc.iter().map(|l| l.last_cores).collect();
                Plan::all_widest(&cores, info.num_batch)
            }
        }
        let scenario = Scenario {
            noise: 0.0,
            phases: false,
            ..Scenario::quick_demo()
        };
        let mut m = Prober { probed_ms: 0.0 };
        let record = run_scenario(&scenario, &mut m);
        assert_eq!(m.probed_ms, 3.0, "one 1 ms probe per slice");
        assert_eq!(record.slices.len(), 3);
    }

    #[test]
    fn profile_samples_report_distinct_lc_configs() {
        struct SplitProber;
        impl ResourceManager for SplitProber {
            fn name(&self) -> String {
                "split".into()
            }
            fn plan(
                &mut self,
                info: &SliceInfo,
                probe: &mut dyn FnMut(&ProfilePlan, f64) -> ProfileSample,
            ) -> Plan {
                let k = info.primary_lc().last_cores;
                let mut lc_configs = vec![JobConfig::profiling_high(); k];
                for cfg in lc_configs.iter_mut().skip(k / 2) {
                    *cfg = JobConfig::profiling_low();
                }
                let pp = ProfilePlan::single_lc(
                    lc_configs,
                    vec![BatchAction::Run(JobConfig::profiling_high()); info.num_batch],
                );
                let s = probe(&pp, 1.0);
                let lc_samples: Vec<_> = s.samples.iter().filter(|sp| sp.job == 0).collect();
                assert_eq!(lc_samples.len(), 2, "expected high+low LC samples");
                assert!(lc_samples[0].bips > lc_samples[1].bips);
                Plan::all_widest(&[k], info.num_batch)
            }
        }
        let scenario = Scenario {
            noise: 0.0,
            phases: false,
            ..Scenario::quick_demo()
        };
        run_scenario(&scenario, &mut SplitProber);
    }

    #[test]
    fn narrow_lc_config_violates_qos_at_high_load() {
        struct NarrowLc;
        impl ResourceManager for NarrowLc {
            fn name(&self) -> String {
                "narrow-lc".into()
            }
            fn plan(
                &mut self,
                info: &SliceInfo,
                _probe: &mut dyn FnMut(&ProfilePlan, f64) -> ProfileSample,
            ) -> Plan {
                let cores: Vec<usize> = info.lc.iter().map(|l| l.last_cores).collect();
                let mut plan = Plan::all_widest(&cores, info.num_batch);
                plan.lc[0].config = JobConfig::profiling_low();
                plan
            }
        }
        let scenario = Scenario {
            noise: 0.0,
            phases: false,
            ..Scenario::quick_demo()
        };
        let record = run_scenario(&scenario, &mut NarrowLc);
        assert_eq!(record.qos_violations(), record.slices.len());
        assert!(record.worst_tail_ratio() > 2.0);
    }

    #[test]
    fn reclaiming_cores_multiplexes_batch_jobs() {
        struct Reclaimer;
        impl ResourceManager for Reclaimer {
            fn name(&self) -> String {
                "reclaimer".into()
            }
            fn plan(
                &mut self,
                info: &SliceInfo,
                _probe: &mut dyn FnMut(&ProfilePlan, f64) -> ProfileSample,
            ) -> Plan {
                Plan::all_widest(&[18], info.num_batch)
            }
        }
        let scenario = Scenario {
            noise: 0.0,
            phases: false,
            ..Scenario::quick_demo()
        };
        let reclaimed = run_scenario(&scenario, &mut Reclaimer);
        let baseline = run_scenario(&scenario, &mut Widest);
        // 14 cores for 16 jobs: batch throughput must drop vs 16 cores.
        assert!(
            reclaimed.batch_instructions() < baseline.batch_instructions(),
            "time multiplexing should cost throughput"
        );
        // But every job should still make progress across slices (rotation).
        let per_job: Vec<f64> = (1..=16)
            .map(|j| {
                reclaimed
                    .slices
                    .iter()
                    .map(|s| s.per_job_instructions[j])
                    .sum()
            })
            .collect();
        assert!(
            per_job.iter().all(|&i| i > 0.0),
            "rotation must serve every job: {per_job:?}"
        );
    }

    #[test]
    fn two_tenants_get_independent_tail_records() {
        let scenario = Scenario {
            noise: 0.0,
            phases: false,
            duration_slices: 3,
            ..Scenario::two_service()
        };
        let record = run_scenario(&scenario, &mut Widest);
        assert_eq!(record.slices[0].lc.len(), 2);
        assert_eq!(record.slices[0].lc[0].service, "xapian");
        assert_eq!(record.slices[0].lc[1].service, "masstree");
        // Both tenants serve requests on their own cores; at 40 % load on
        // widest cores neither should violate.
        assert_eq!(record.qos_violations(), 0, "{record:?}");
        for s in &record.slices {
            assert!(s.lc[0].tail_ms > 0.0 && s.lc[1].tail_ms > 0.0);
            assert_eq!(s.lc[0].cores, 8);
            assert_eq!(s.lc[1].cores, 8);
        }
    }

    #[test]
    fn departed_batch_jobs_execute_nothing() {
        let mut scenario = Scenario {
            noise: 0.0,
            phases: false,
            duration_slices: 4,
            ..Scenario::quick_demo()
        };
        // Make batch job 0 depart after slice 1 and batch job 1 arrive at
        // slice 2.
        let mut batch_seen = 0;
        for job in scenario.jobs.iter_mut() {
            if let crate::types::JobSpec::Batch(b) = job {
                match batch_seen {
                    0 => b.depart_slice = Some(2),
                    1 => b.arrive_slice = 2,
                    _ => {}
                }
                batch_seen += 1;
            }
        }
        let record = run_scenario(&scenario, &mut Widest);
        // Batch job 0 (global index 1) runs in slices 0-1, nothing after.
        assert!(record.slices[0].per_job_instructions[1] > 0.0);
        assert!(record.slices[1].per_job_instructions[1] > 0.0);
        assert_eq!(record.slices[2].per_job_instructions[1], 0.0);
        assert_eq!(record.slices[3].per_job_instructions[1], 0.0);
        // Batch job 1 (global index 2) is absent before slice 2.
        assert_eq!(record.slices[0].per_job_instructions[2], 0.0);
        assert_eq!(record.slices[1].per_job_instructions[2], 0.0);
        assert!(record.slices[2].per_job_instructions[2] > 0.0);
        assert!(record.slices[3].per_job_instructions[2] > 0.0);
    }

    #[test]
    fn nominal_budget_is_stable_and_positive() {
        let scenario = Scenario::paper_default();
        let b = scenario.nominal_budget_watts();
        assert!(b > 50.0 && b < 400.0, "implausible budget {b}");
        assert_eq!(b, scenario.nominal_budget_watts());
    }
}
