//! The tenant lifecycle state machine the control plane enforces.
//!
//! Every tenant the control plane tracks — latency-critical services and
//! batch applications alike — moves through one explicit state machine:
//!
//! ```text
//!                 ┌──────────────→ Retired (admission rejected)
//!                 │
//! Registering → Admitted → Running ⇄ Degraded
//!                 │           │  ⇄       │
//!                 │           │ Relocating
//!                 │           │   │      │
//!                 └───────→ Draining ←───┘
//!                             │
//!                             ▼
//!                          Retired
//! ```
//!
//! The machine subsumes two previously implicit mechanisms:
//!
//! * the **degradation ladder** (PR 3): a quantum that fell back to a
//!   last-good replay or safe mode moves its tenants Running → Degraded,
//!   and a clean quantum moves them back;
//! * the **churn paths** (PR 2): batch arrival is Admitted → Running,
//!   departure is Running → Draining → Retired, and an LC tenant whose
//!   core reservation is being reshaped passes through Relocating.
//!
//! Illegal transitions are *hard errors*, not warnings: the control plane
//! treats an out-of-order transition as a logic bug and surfaces
//! [`LifecycleError`] immediately. The transition relation is a single
//! const table ([`LifecycleState::successors`]) so the property test can
//! enumerate it exhaustively: every transition not in the table is
//! rejected, and from every reachable state some legal path reaches
//! [`LifecycleState::Retired`].
//!
//! Since the cluster refactor, [`LifecycleState::Relocating`] carries its
//! [`RelocationTarget`]: an on-chip reshape ([`RelocationTarget::Local`])
//! or a cross-node move with a destination [`NodeId`]. Legality is decided
//! on the state's *kind* ([`LifecycleState::same_kind`]), so the transition
//! table stays a finite, exactly-enumerable relation: every
//! `Relocating(target)` value behaves identically under the table, and the
//! ALL×ALL property test remains exhaustive over representatives.

/// Identity of one node (one reconfigurable chip plus its agent) in a
/// cluster. A single-node deployment is node `n0` ([`NodeId::local`]); ids
/// are dense indices into the cluster's node table, assigned at
/// construction and never reused.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(usize);

impl NodeId {
    /// The node's index in the cluster's node table.
    pub fn index(self) -> usize {
        self.0
    }

    /// Reconstructs an id from its node-table index.
    pub fn from_index(index: usize) -> NodeId {
        NodeId(index)
    }

    /// The id every single-node deployment uses (`n0`).
    pub fn local() -> NodeId {
        NodeId(0)
    }
}

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Where a relocating tenant is headed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RelocationTarget {
    /// An on-chip reshape: the tenant stays on its node but its core
    /// reservation is being regrown or shrunk (the PR-2 churn path).
    Local,
    /// A cross-node move: the tenant is in flight to this node.
    Node(NodeId),
    /// Evacuated off a failed node with no destination yet: the cluster
    /// parks the tenant in its displaced queue and retries placement with
    /// bounded, quantum-counted backoff until capacity returns.
    Displaced,
}

impl std::fmt::Display for RelocationTarget {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RelocationTarget::Local => write!(f, "local"),
            RelocationTarget::Node(node) => write!(f, "{node}"),
            RelocationTarget::Displaced => write!(f, "displaced"),
        }
    }
}

/// The states a tenant moves through, from registration to retirement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum LifecycleState {
    /// Registration received, admission not yet decided.
    Registering,
    /// Admission control accepted the tenant; it has not run a quantum yet.
    Admitted,
    /// The tenant is live and its quanta are deciding cleanly.
    Running,
    /// The most recent quantum served this tenant from the degradation
    /// ladder (last-good replay, safe mode, or an open breaker).
    Degraded,
    /// The tenant's resources are being reshaped: an on-chip core
    /// reservation change ([`RelocationTarget::Local`]) or a cross-node
    /// move carrying its destination ([`RelocationTarget::Node`]).
    Relocating(RelocationTarget),
    /// Deregistration accepted; the tenant finishes its current slice and
    /// releases its resources.
    Draining,
    /// Terminal: resources released, matrix rows retired. Also the terminal
    /// state of a rejected registration.
    Retired,
}

impl LifecycleState {
    /// Every state kind, in declaration order (used by the property tests
    /// to enumerate the full transition relation). `Relocating` appears as
    /// its [`RelocationTarget::Local`] representative: the table is
    /// target-agnostic, so one representative per kind is exhaustive.
    pub const ALL: [LifecycleState; 7] = [
        LifecycleState::Registering,
        LifecycleState::Admitted,
        LifecycleState::Running,
        LifecycleState::Degraded,
        LifecycleState::Relocating(RelocationTarget::Local),
        LifecycleState::Draining,
        LifecycleState::Retired,
    ];

    /// The state kinds legally reachable in one transition from `self`
    /// (representatives, as in [`LifecycleState::ALL`]). This table *is*
    /// the specification; [`TenantLifecycle::transition`] consults nothing
    /// else. Legality is decided by [`LifecycleState::same_kind`], so every
    /// `Relocating(target)` shares one row and one entry.
    pub fn successors(self) -> &'static [LifecycleState] {
        use LifecycleState::*;
        const RELOCATING: LifecycleState = Relocating(RelocationTarget::Local);
        match self {
            // Admission either accepts or permanently rejects.
            Registering => &[Admitted, Retired],
            // An admitted tenant starts running, or is deregistered before
            // its first quantum.
            Admitted => &[Running, Draining],
            Running => &[Degraded, RELOCATING, Draining],
            Degraded => &[Running, RELOCATING, Draining],
            Relocating(_) => &[Running, Degraded, Draining],
            Draining => &[Retired],
            Retired => &[],
        }
    }

    /// Whether `self` and `other` are the same state *kind* — equal up to
    /// the relocation target. The transition table is defined over kinds.
    pub fn same_kind(self, other: LifecycleState) -> bool {
        std::mem::discriminant(&self) == std::mem::discriminant(&other)
    }

    /// Whether `self → to` is a legal transition (target-agnostic: any
    /// relocation target is admissible where the table lists `Relocating`).
    pub fn can_transition(self, to: LifecycleState) -> bool {
        self.successors().iter().any(|s| s.same_kind(to))
    }

    /// The relocation destination, when the tenant is mid-move to another
    /// node (`None` for every other state, including local reshapes).
    pub fn relocation_target(self) -> Option<NodeId> {
        match self {
            LifecycleState::Relocating(RelocationTarget::Node(node)) => Some(node),
            _ => None,
        }
    }

    /// Whether the tenant still holds resources the quantum must plan for.
    pub fn is_live(self) -> bool {
        matches!(
            self,
            LifecycleState::Running | LifecycleState::Degraded | LifecycleState::Relocating(_)
        )
    }

    /// Whether the state is terminal.
    pub fn is_terminal(self) -> bool {
        self == LifecycleState::Retired
    }

    /// The state's stable lower-case name (used in metrics and JSON).
    pub fn name(self) -> &'static str {
        match self {
            LifecycleState::Registering => "registering",
            LifecycleState::Admitted => "admitted",
            LifecycleState::Running => "running",
            LifecycleState::Degraded => "degraded",
            LifecycleState::Relocating(_) => "relocating",
            LifecycleState::Draining => "draining",
            LifecycleState::Retired => "retired",
        }
    }
}

/// An attempted transition that the state machine forbids.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LifecycleError {
    /// The state the tenant was in.
    pub from: LifecycleState,
    /// The state the caller tried to move it to.
    pub to: LifecycleState,
}

impl std::fmt::Display for LifecycleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "illegal lifecycle transition {} -> {}",
            self.from.name(),
            self.to.name()
        )
    }
}

impl std::error::Error for LifecycleError {}

/// One tenant's lifecycle: the current state plus a transition count (the
/// count feeds the service's per-tenant metrics).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TenantLifecycle {
    state: LifecycleState,
    transitions: usize,
}

impl TenantLifecycle {
    /// A fresh lifecycle in [`LifecycleState::Registering`].
    pub fn new() -> TenantLifecycle {
        TenantLifecycle {
            state: LifecycleState::Registering,
            transitions: 0,
        }
    }

    /// The current state.
    pub fn state(&self) -> LifecycleState {
        self.state
    }

    /// Transitions taken so far.
    pub fn transitions(&self) -> usize {
        self.transitions
    }

    /// Moves to `to` if the transition is legal.
    ///
    /// # Errors
    ///
    /// Returns [`LifecycleError`] — and leaves the state untouched — when
    /// `state() → to` is not in the transition table.
    pub fn transition(&mut self, to: LifecycleState) -> Result<(), LifecycleError> {
        if !self.state.can_transition(to) {
            return Err(LifecycleError {
                from: self.state,
                to,
            });
        }
        self.state = to;
        self.transitions += 1;
        Ok(())
    }

    /// Moves to `to` only if not already there; a no-op self-"transition"
    /// is not an error (the control plane calls this every quantum with the
    /// state the telemetry implies).
    ///
    /// # Errors
    ///
    /// Returns [`LifecycleError`] when a real (state-changing) transition
    /// is requested and it is illegal.
    pub fn settle(&mut self, to: LifecycleState) -> Result<bool, LifecycleError> {
        if self.state == to {
            return Ok(false);
        }
        self.transition(to)?;
        Ok(true)
    }
}

impl Default for TenantLifecycle {
    fn default() -> TenantLifecycle {
        TenantLifecycle::new()
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use LifecycleState::*;

    #[test]
    fn the_happy_path_reaches_retired() {
        let mut lc = TenantLifecycle::new();
        for to in [Admitted, Running, Degraded, Running, Draining, Retired] {
            lc.transition(to).expect("legal step");
        }
        assert_eq!(lc.state(), Retired);
        assert_eq!(lc.transitions(), 6);
    }

    #[test]
    fn rejected_admission_is_terminal() {
        let mut lc = TenantLifecycle::new();
        lc.transition(Retired).expect("rejection is legal");
        assert!(lc.state().is_terminal());
        for to in LifecycleState::ALL {
            assert!(lc.transition(to).is_err(), "retired must be terminal");
        }
    }

    #[test]
    fn illegal_transitions_are_errors_and_do_not_move_the_state() {
        let mut lc = TenantLifecycle::new();
        let err = lc.transition(Running).unwrap_err();
        assert_eq!(
            err,
            LifecycleError {
                from: Registering,
                to: Running
            }
        );
        assert_eq!(lc.state(), Registering, "failed transition must not move");
        assert_eq!(lc.transitions(), 0);
    }

    /// The exhaustive property the module docs promise: the `successors`
    /// table is the whole specification. Every pair in `ALL × ALL` behaves
    /// exactly as the table says, every state is reachable from
    /// Registering, and from every non-terminal state some legal path
    /// reaches Retired (no tenant can get stuck holding resources).
    #[test]
    fn the_transition_relation_is_exactly_the_table_and_always_drains() {
        // transition() succeeds iff the table lists the successor — and a
        // failure never moves the state.
        for from in LifecycleState::ALL {
            for to in LifecycleState::ALL {
                let mut lc = TenantLifecycle {
                    state: from,
                    transitions: 0,
                };
                let legal = from.successors().contains(&to);
                assert_eq!(from.can_transition(to), legal, "{from:?} -> {to:?}");
                match lc.transition(to) {
                    Ok(()) => {
                        assert!(legal, "{from:?} -> {to:?} accepted off-table");
                        assert_eq!(lc.state(), to);
                    }
                    Err(e) => {
                        assert!(!legal, "{from:?} -> {to:?} rejected on-table");
                        assert_eq!((e.from, e.to), (from, to));
                        assert_eq!(lc.state(), from, "hard error must not move");
                    }
                }
            }
        }

        // Breadth-first closure from Registering covers every state.
        let reachable_from = |start: LifecycleState| {
            let mut seen = vec![start];
            let mut frontier = vec![start];
            while let Some(s) = frontier.pop() {
                for &next in s.successors() {
                    if !seen.contains(&next) {
                        seen.push(next);
                        frontier.push(next);
                    }
                }
            }
            seen
        };
        let from_registering = reachable_from(Registering);
        for s in LifecycleState::ALL {
            assert!(from_registering.contains(&s), "{s:?} unreachable");
        }

        // Every legal path can be extended to Retired; only Retired and the
        // live/terminal predicates agree with the table's structure.
        for s in LifecycleState::ALL {
            assert!(reachable_from(s).contains(&Retired), "{s:?} cannot drain");
            assert_eq!(s.successors().is_empty(), s.is_terminal(), "{s:?}");
        }
    }

    /// Every relocation target behaves identically under the table: the
    /// representative in `ALL` speaks for the whole family, which is what
    /// keeps the ALL×ALL enumeration above exact.
    #[test]
    fn relocation_targets_share_the_representative_row() {
        let targets = [
            RelocationTarget::Local,
            RelocationTarget::Node(NodeId::local()),
            RelocationTarget::Node(NodeId::from_index(63)),
            RelocationTarget::Displaced,
        ];
        for target in targets {
            let state = Relocating(target);
            assert!(state.same_kind(Relocating(RelocationTarget::Local)));
            assert_eq!(
                state.successors(),
                Relocating(RelocationTarget::Local).successors(),
                "{target}"
            );
            assert!(Running.can_transition(state), "{target}");
            assert!(Degraded.can_transition(state), "{target}");
            assert!(state.can_transition(Draining), "{target}");
            assert!(state.is_live(), "{target}");
            assert_eq!(state.name(), "relocating");
            // A retarget is not a transition: Relocating -> Relocating is
            // off-table regardless of the targets involved.
            let mut lc = TenantLifecycle {
                state,
                transitions: 0,
            };
            assert!(lc
                .transition(Relocating(RelocationTarget::Node(NodeId::from_index(9))))
                .is_err());
        }
        assert_eq!(
            Relocating(RelocationTarget::Node(NodeId::from_index(5))).relocation_target(),
            Some(NodeId::from_index(5))
        );
        assert_eq!(
            Relocating(RelocationTarget::Local).relocation_target(),
            None
        );
        assert_eq!(Running.relocation_target(), None);
        assert_eq!(format!("{}", NodeId::from_index(3)), "n3");
    }

    #[test]
    fn settle_is_idempotent() {
        let mut lc = TenantLifecycle::new();
        lc.transition(Admitted).unwrap();
        lc.transition(Running).unwrap();
        assert!(!lc.settle(Running).unwrap(), "no-op settle");
        assert!(lc.settle(Degraded).unwrap(), "real settle transitions");
        assert_eq!(lc.transitions(), 3);
    }
}
