#![cfg(loom)]
//! Loom model of the [`cuttlesys::faults::CircuitBreaker`] state machine
//! under concurrent outcome reporting.
//!
//! Build and run with:
//!
//! ```text
//! RUSTFLAGS="--cfg loom" cargo test -p cuttlesys --test loom_breaker
//! ```
//!
//! The breaker itself is `&mut self` (the decision loop owns it), so the
//! concurrency model is the *sharing pattern* the runtime uses when stage
//! outcomes arrive from worker threads: a `Mutex<CircuitBreaker>` with
//! every reporter taking the lock. The invariants that must survive any
//! interleaving of reporters:
//!
//! * the state machine never wedges: after enough exclusive failures it is
//!   open, after a close-quorum of probe successes it is closed;
//! * `opens` and `closes` stay consistent (`closes <= opens`), and an open
//!   breaker is exactly `opens > closes`;
//! * mixed concurrent success/failure traffic leaves the breaker in *a*
//!   legal state — specifically, `consecutive_failures` can never exceed
//!   the open threshold while the breaker reports closed.

use cuttlesys::faults::{CircuitBreaker, ResilienceConfig};
use loom::sync::{Arc, Mutex};

fn cfg() -> ResilienceConfig {
    ResilienceConfig {
        breaker_open_after: 3,
        breaker_probe_interval: 1,
        breaker_close_after: 2,
        ..ResilienceConfig::default()
    }
}

#[test]
fn concurrent_reporters_leave_a_legal_state() {
    loom::model(|| {
        let cfg = cfg();
        let breaker = Arc::new(Mutex::new(CircuitBreaker::new()));
        let mut handles = Vec::new();
        for t in 0..2 {
            let breaker = Arc::clone(&breaker);
            handles.push(loom::thread::spawn(move || {
                for i in 0..4 {
                    let mut b = breaker.lock().unwrap();
                    // Thread 0 reports failures, thread 1 successes, with a
                    // schedule point between quanta.
                    if t == 0 {
                        b.on_failure(&cfg);
                    } else {
                        b.on_success(&cfg);
                    }
                    drop(b);
                    if i % 2 == 0 {
                        loom::thread::yield_now();
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let b = breaker.lock().unwrap();
        assert!(
            b.closes <= b.opens,
            "closes {} cannot outrun opens {}",
            b.closes,
            b.opens
        );
        assert_eq!(
            b.is_open(),
            b.opens > b.closes,
            "open/closed must match the opens-closes ledger"
        );
    });
}

#[test]
fn exclusive_failure_burst_always_opens() {
    loom::model(|| {
        let cfg = cfg();
        let breaker = Arc::new(Mutex::new(CircuitBreaker::new()));
        let mut handles = Vec::new();
        for _ in 0..2 {
            let breaker = Arc::clone(&breaker);
            handles.push(loom::thread::spawn(move || {
                for _ in 0..3 {
                    breaker.lock().unwrap().on_failure(&cfg);
                    loom::thread::yield_now();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let b = breaker.lock().unwrap();
        assert!(
            b.is_open(),
            "six serialized failures against open_after=3 must trip the breaker"
        );
        assert_eq!(b.opens, 1, "re-tripping while open must not double-count");
    });
}

#[test]
fn probe_recovery_closes_exactly_once() {
    loom::model(|| {
        let cfg = cfg();
        let breaker = Arc::new(Mutex::new(CircuitBreaker::new()));
        {
            let mut b = breaker.lock().unwrap();
            for _ in 0..3 {
                b.on_failure(&cfg);
            }
            assert!(b.is_open());
        }
        // Two concurrent probe reporters race to deliver the close quorum.
        let mut handles = Vec::new();
        for _ in 0..2 {
            let breaker = Arc::clone(&breaker);
            handles.push(loom::thread::spawn(move || {
                breaker.lock().unwrap().on_success(&cfg);
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let b = breaker.lock().unwrap();
        assert!(!b.is_open(), "close_after=2 with 2 successes must close");
        assert_eq!(b.closes, 1, "the close must be recorded exactly once");
    });
}
