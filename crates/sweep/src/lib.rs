//! Statistical scenario fleet: declarative sweeps that turn every
//! claim into hundreds of verified runs.
//!
//! A *sweep* is a JSON scenario file describing a grid of conditions —
//! load shapes, power caps, fault profiles, fleet fault profiles — and
//! a set of seeds. The runner executes every `(cell, seed)` point
//! through the real CuttleSys stack (single node or lockstep cluster),
//! in parallel across a [`util::WorkerPool`], and reduces the results
//! to cross-seed statistics, a byte-stable `summary.json`, and a
//! detector verdict: a pass/fail table whose failure means a claim the
//! repo makes (QoS recovery, graceful degradation, no throughput
//! cliffs, no stranded tenants) did not hold somewhere in the grid.
//!
//! The determinism contract, verified by `tests/sweep_determinism.rs`:
//! the summary is bit-identical at any pool width and for any on-disk
//! seed ordering, because the run grid is enumerated before execution,
//! seeds are canonicalized (sorted, deduplicated) at load time, every
//! run is bit-deterministic, and results land in pre-assigned slots.
//!
//! * [`spec`] — the scenario format and its strict loader.
//! * [`runner`] — grid enumeration and parallel execution.
//! * [`detectors`] — the pure pass/fail reductions.
//! * [`report`] — cross-seed stats, `summary.json`, and tables.

#![warn(clippy::unwrap_used, clippy::expect_used)]

pub mod detectors;
pub mod report;
pub mod runner;
pub mod spec;

pub use detectors::{DetectorThresholds, Finding, RunSeries};
pub use report::{render_tables, summary_json, summary_json_partial, Stats};
pub use runner::{
    filter_grid, run_sweep, run_sweep_cells, Cell, CellOutcome, RunMetrics, RunOutcome,
    SweepOutcome,
};
pub use spec::{load_spec, LoadShape, SweepError, SweepSpec, Topology};
