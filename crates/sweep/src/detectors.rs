//! The detector layer: reducing hundreds of runs to a pass/fail table.
//!
//! Each detector is a pure function over the per-run metric series —
//! no clock, no RNG, no I/O — so the verdict a sweep reaches is as
//! deterministic as the runs themselves. A detector *trips* when its
//! statistic crosses the configured threshold in any run of a cell;
//! the report then aggregates trips per cell and fleet-wide, and the
//! CLI exits nonzero when anything tripped.

use util::json::JsonValue;

/// Detector names the spec's `detectors` object accepts, sorted for
/// error messages.
pub const DETECTOR_NAMES: &[&str] = &[
    "degraded_residency",
    "displaced_persistence",
    "qos_violation_streak",
    "safe_mode_residency",
    "tenant_loss",
    "throughput_cliff",
];

/// Trip thresholds for every detector.
///
/// Counts are "trip at ≥ threshold"; residencies and the cliff are
/// fractions in `[0, 1]` ("trip at ≥ fraction of quanta" / "trip when
/// throughput drops by ≥ fraction between adjacent quanta").
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DetectorThresholds {
    /// Longest run of consecutive QoS-violating quanta tolerated before
    /// the streak detector trips.
    pub qos_violation_streak: usize,
    /// Fraction of quanta spent in safe mode that trips the residency
    /// detector.
    pub safe_mode_residency: f64,
    /// Fraction of quanta spent anywhere on the degradation ladder that
    /// trips the residency detector.
    pub degraded_residency: f64,
    /// Relative throughput drop between adjacent quanta that counts as
    /// a cliff.
    pub throughput_cliff: f64,
    /// Consecutive quanta a displaced tenant may wait for re-placement
    /// before the persistence detector trips (cluster only).
    pub displaced_persistence: usize,
    /// Tenants lost outright (crashed with their node, never re-placed)
    /// tolerated per run (cluster only).
    pub tenant_loss: usize,
}

impl Default for DetectorThresholds {
    fn default() -> DetectorThresholds {
        DetectorThresholds {
            qos_violation_streak: 3,
            safe_mode_residency: 0.25,
            degraded_residency: 0.75,
            throughput_cliff: 0.6,
            displaced_persistence: 3,
            tenant_loss: 0,
        }
    }
}

/// Longest run of consecutive `true`s in a boolean series.
///
/// Monotone: appending to the series never decreases the result, and
/// the result over a prefix never exceeds the result over the whole.
pub fn max_true_streak(series: &[bool]) -> usize {
    let mut best = 0;
    let mut cur = 0;
    for &v in series {
        if v {
            cur += 1;
            best = best.max(cur);
        } else {
            cur = 0;
        }
    }
    best
}

/// Largest relative drop between adjacent values of a throughput
/// series: `max((prev - next) / prev)` over positive `prev`, clamped
/// at 0. A constant series — any constant, including all-zero — always
/// yields exactly `0.0`.
pub fn max_adjacent_drop(series: &[f64]) -> f64 {
    let mut worst = 0.0f64;
    for pair in series.windows(2) {
        let (prev, next) = (pair[0], pair[1]);
        if prev > 0.0 {
            worst = worst.max((prev - next) / prev);
        }
    }
    worst
}

/// Fraction of `total` quanta spent in some state; 0 when `total` is 0.
pub fn residency(count: usize, total: usize) -> f64 {
    if total == 0 {
        0.0
    } else {
        count as f64 / total as f64
    }
}

/// One detector's verdict over one run.
#[derive(Debug, Clone, PartialEq)]
pub struct Finding {
    /// Detector name (one of [`DETECTOR_NAMES`], or `"run_error"`).
    pub detector: &'static str,
    /// The observed statistic.
    pub value: f64,
    /// The threshold it was compared against.
    pub threshold: f64,
    /// Whether the detector tripped.
    pub tripped: bool,
}

impl Finding {
    /// The finding as a JSON object for the summary.
    pub fn to_json(&self) -> JsonValue {
        JsonValue::Obj(vec![
            (
                "detector".to_string(),
                JsonValue::Str(self.detector.to_string()),
            ),
            ("value".to_string(), JsonValue::Num(self.value)),
            ("threshold".to_string(), JsonValue::Num(self.threshold)),
            ("tripped".to_string(), JsonValue::Bool(self.tripped)),
        ])
    }
}

/// The metric series one run exposes to the detectors.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RunSeries {
    /// Per-quantum "did any LC tenant violate QoS this quantum".
    pub qos_violated: Vec<bool>,
    /// Quanta spent in safe mode.
    pub safe_mode_quanta: usize,
    /// Quanta spent anywhere on the degradation ladder.
    pub degraded_quanta: usize,
    /// Per-quantum batch throughput (instructions; fleet-summed for
    /// cluster runs, with crashed nodes contributing zero).
    pub throughput: Vec<f64>,
    /// Per-quantum count of displaced-but-unplaced tenants (cluster
    /// only; empty for single-node runs).
    pub displaced: Vec<usize>,
    /// Tenants lost outright by the end of the run (cluster only).
    pub tenants_lost: usize,
    /// Total quanta the run executed.
    pub quanta: usize,
    /// A run that panicked or failed to produce a record; always trips.
    pub error: Option<String>,
}

/// Evaluates every detector against one run's series.
///
/// Single-node runs get the four node-level detectors; the two fleet
/// detectors are appended only when the run carried fleet state (a
/// non-empty `displaced` series or a nonzero loss count), so
/// single-node summaries stay free of vacuous cluster rows. A run
/// `error` adds an always-tripped `run_error` finding.
pub fn evaluate(series: &RunSeries, thresholds: &DetectorThresholds) -> Vec<Finding> {
    let mut findings = Vec::new();
    let streak = max_true_streak(&series.qos_violated);
    findings.push(Finding {
        detector: "qos_violation_streak",
        value: streak as f64,
        threshold: thresholds.qos_violation_streak as f64,
        tripped: thresholds.qos_violation_streak > 0 && streak >= thresholds.qos_violation_streak,
    });
    let safe_res = residency(series.safe_mode_quanta, series.quanta);
    findings.push(Finding {
        detector: "safe_mode_residency",
        value: safe_res,
        threshold: thresholds.safe_mode_residency,
        tripped: safe_res >= thresholds.safe_mode_residency && thresholds.safe_mode_residency > 0.0,
    });
    let deg_res = residency(series.degraded_quanta, series.quanta);
    findings.push(Finding {
        detector: "degraded_residency",
        value: deg_res,
        threshold: thresholds.degraded_residency,
        tripped: deg_res >= thresholds.degraded_residency && thresholds.degraded_residency > 0.0,
    });
    let cliff = max_adjacent_drop(&series.throughput);
    findings.push(Finding {
        detector: "throughput_cliff",
        value: cliff,
        threshold: thresholds.throughput_cliff,
        tripped: thresholds.throughput_cliff > 0.0 && cliff >= thresholds.throughput_cliff,
    });
    let fleet_run = !series.displaced.is_empty() || series.tenants_lost > 0;
    if fleet_run {
        let displaced_streak =
            max_true_streak(&series.displaced.iter().map(|&d| d > 0).collect::<Vec<_>>());
        findings.push(Finding {
            detector: "displaced_persistence",
            value: displaced_streak as f64,
            threshold: thresholds.displaced_persistence as f64,
            tripped: thresholds.displaced_persistence > 0
                && displaced_streak >= thresholds.displaced_persistence,
        });
        findings.push(Finding {
            detector: "tenant_loss",
            value: series.tenants_lost as f64,
            threshold: thresholds.tenant_loss as f64,
            tripped: series.tenants_lost > thresholds.tenant_loss,
        });
    }
    if series.error.is_some() {
        findings.push(Finding {
            detector: "run_error",
            value: 1.0,
            threshold: 0.0,
            tripped: true,
        });
    }
    findings
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used, clippy::float_cmp)]
mod tests {
    use super::*;

    #[test]
    fn streak_counts_longest_run_only() {
        assert_eq!(max_true_streak(&[]), 0);
        assert_eq!(max_true_streak(&[false, false]), 0);
        assert_eq!(max_true_streak(&[true, false, true, true, true, false]), 3);
        assert_eq!(max_true_streak(&[true; 5]), 5);
    }

    #[test]
    fn cliff_is_zero_on_constant_and_rising_series() {
        assert_eq!(max_adjacent_drop(&[]), 0.0);
        assert_eq!(max_adjacent_drop(&[5.0; 8]), 0.0);
        assert_eq!(max_adjacent_drop(&[0.0; 8]), 0.0);
        assert_eq!(max_adjacent_drop(&[1.0, 2.0, 3.0]), 0.0);
        assert_eq!(max_adjacent_drop(&[10.0, 4.0, 8.0]), 0.6);
        // A full collapse to zero is a 100% cliff.
        assert_eq!(max_adjacent_drop(&[10.0, 0.0]), 1.0);
    }

    #[test]
    fn fleet_detectors_only_appear_for_fleet_runs() {
        let t = DetectorThresholds::default();
        let single = RunSeries {
            quanta: 4,
            qos_violated: vec![false; 4],
            throughput: vec![1.0; 4],
            ..RunSeries::default()
        };
        let names: Vec<_> = evaluate(&single, &t).iter().map(|f| f.detector).collect();
        assert!(!names.contains(&"displaced_persistence"));
        assert!(!names.contains(&"tenant_loss"));

        let fleet = RunSeries {
            displaced: vec![0, 1, 1, 1],
            ..single
        };
        let findings = evaluate(&fleet, &t);
        let disp = findings
            .iter()
            .find(|f| f.detector == "displaced_persistence")
            .unwrap();
        assert_eq!(disp.value, 3.0);
        assert!(
            disp.tripped,
            "3-quantum displacement streak meets the default threshold"
        );
    }

    #[test]
    fn run_error_always_trips() {
        let t = DetectorThresholds::default();
        let series = RunSeries {
            quanta: 1,
            error: Some("boom".to_string()),
            ..RunSeries::default()
        };
        let findings = evaluate(&series, &t);
        let err = findings.iter().find(|f| f.detector == "run_error").unwrap();
        assert!(err.tripped);
    }
}
