//! Cross-seed statistics, the byte-stable `summary.json`, and the
//! pass/fail table.
//!
//! Everything here is a pure function of the [`SweepOutcome`]: no
//! wall-clock, no hostnames, no paths — the summary of a sweep is the
//! same byte sequence on every machine, at every pool width, for every
//! on-disk seed ordering. Statistics reduce in sorted-seed order, so
//! float summation order is fixed by construction.

use bench::report::Table;
use util::json::JsonValue;

use crate::detectors::DETECTOR_NAMES;
use crate::runner::{CellOutcome, RunOutcome, SweepOutcome};
use crate::spec::SweepSpec;

/// Min/mean/max/standard deviation of one metric across a cell's seeds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Stats {
    /// Smallest observation.
    pub min: f64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Largest observation.
    pub max: f64,
    /// Population standard deviation.
    pub std: f64,
}

/// Reduces observations (already in sorted-seed order) to [`Stats`].
pub fn stats(values: &[f64]) -> Stats {
    if values.is_empty() {
        return Stats {
            min: 0.0,
            mean: 0.0,
            max: 0.0,
            std: 0.0,
        };
    }
    let n = values.len() as f64;
    let mut min = f64::INFINITY;
    let mut max = f64::NEG_INFINITY;
    let mut sum = 0.0;
    for &v in values {
        min = min.min(v);
        max = max.max(v);
        sum += v;
    }
    let mean = sum / n;
    let mut var = 0.0;
    for &v in values {
        var += (v - mean) * (v - mean);
    }
    Stats {
        min,
        mean,
        max,
        std: (var / n).sqrt(),
    }
}

impl Stats {
    fn to_json(self) -> JsonValue {
        JsonValue::Obj(vec![
            ("min".to_string(), JsonValue::Num(self.min)),
            ("mean".to_string(), JsonValue::Num(self.mean)),
            ("max".to_string(), JsonValue::Num(self.max)),
            ("std".to_string(), JsonValue::Num(self.std)),
        ])
    }
}

/// The cross-seed metrics a cell reports, in a fixed order.
const STAT_METRICS: &[&str] = &[
    "batch_instructions",
    "qos_violations",
    "power_violations",
    "worst_tail_ratio",
    "degraded_quanta",
    "safe_mode_quanta",
    "injected_fault_slices",
];

fn metric_of(run: &RunOutcome, metric: &str) -> f64 {
    let m = &run.metrics;
    match metric {
        "batch_instructions" => m.batch_instructions,
        "qos_violations" => m.qos_violations as f64,
        "power_violations" => m.power_violations as f64,
        "worst_tail_ratio" => m.worst_tail_ratio,
        "degraded_quanta" => m.degraded_quanta as f64,
        "safe_mode_quanta" => m.safe_mode_quanta as f64,
        "injected_fault_slices" => m.injected_fault_slices as f64,
        _ => 0.0,
    }
}

/// Cross-seed stats for one cell, keyed by metric name in fixed order.
pub fn cell_stats(cell: &CellOutcome) -> Vec<(&'static str, Stats)> {
    STAT_METRICS
        .iter()
        .map(|&metric| {
            let values: Vec<f64> = cell.runs.iter().map(|r| metric_of(r, metric)).collect();
            (metric, stats(&values))
        })
        .collect()
}

fn run_to_json(run: &RunOutcome) -> JsonValue {
    let m = &run.metrics;
    let mut fields = vec![
        ("seed".to_string(), JsonValue::from(m.seed as usize)),
        ("quanta".to_string(), JsonValue::from(m.quanta)),
        (
            "qos_violations".to_string(),
            JsonValue::from(m.qos_violations),
        ),
        (
            "power_violations".to_string(),
            JsonValue::from(m.power_violations),
        ),
        (
            "worst_tail_ratio".to_string(),
            JsonValue::Num(m.worst_tail_ratio),
        ),
        (
            "batch_instructions".to_string(),
            JsonValue::Num(m.batch_instructions),
        ),
        (
            "degraded_quanta".to_string(),
            JsonValue::from(m.degraded_quanta),
        ),
        (
            "safe_mode_quanta".to_string(),
            JsonValue::from(m.safe_mode_quanta),
        ),
        (
            "injected_fault_slices".to_string(),
            JsonValue::from(m.injected_fault_slices),
        ),
    ];
    if let Some(c) = &m.cluster {
        fields.push((
            "cluster".to_string(),
            JsonValue::Obj(vec![
                ("nodes".to_string(), JsonValue::from(c.nodes)),
                ("evacuations".to_string(), JsonValue::from(c.evacuations)),
                (
                    "displaced_final".to_string(),
                    JsonValue::from(c.displaced_final),
                ),
                ("tenants_lost".to_string(), JsonValue::from(c.tenants_lost)),
                (
                    "fleet_degraded_quanta".to_string(),
                    JsonValue::from(c.fleet_degraded_quanta),
                ),
            ]),
        ));
    }
    if let Some(err) = &m.series.error {
        fields.push(("error".to_string(), JsonValue::Str(err.clone())));
    }
    fields.push((
        "detectors".to_string(),
        JsonValue::Arr(run.findings.iter().map(|f| f.to_json()).collect()),
    ));
    JsonValue::Obj(fields)
}

/// Per-detector trip counts across the whole sweep, in catalogue order
/// (plus `run_error` last when any run errored).
pub fn detector_summary(outcome: &SweepOutcome) -> Vec<(&'static str, usize)> {
    let mut names: Vec<&'static str> = DETECTOR_NAMES.to_vec();
    names.push("run_error");
    names
        .into_iter()
        .map(|name| {
            let trips = outcome
                .cells
                .iter()
                .flat_map(|c| &c.runs)
                .filter(|r| r.findings.iter().any(|f| f.detector == name && f.tripped))
                .count();
            (name, trips)
        })
        .filter(|(name, trips)| *name != "run_error" || *trips > 0)
        .collect()
}

/// Builds the full summary document. Byte-stable: contains nothing but
/// the spec's identity and the deterministic run results.
pub fn summary_json(spec: &SweepSpec, outcome: &SweepOutcome) -> JsonValue {
    let cells: Vec<JsonValue> = outcome
        .cells
        .iter()
        .map(|cell| {
            let stats_fields: Vec<(String, JsonValue)> = cell_stats(cell)
                .into_iter()
                .map(|(metric, s)| (metric.to_string(), s.to_json()))
                .collect();
            let tripped: Vec<JsonValue> = {
                let mut names: Vec<&str> = Vec::new();
                for run in &cell.runs {
                    for f in &run.findings {
                        if f.tripped && !names.contains(&f.detector) {
                            names.push(f.detector);
                        }
                    }
                }
                names.sort_unstable();
                names.iter().map(|n| JsonValue::from(*n)).collect()
            };
            JsonValue::Obj(vec![
                ("shape".to_string(), JsonValue::Str(cell.cell.shape.label())),
                ("cap".to_string(), JsonValue::Num(cell.cell.cap)),
                ("fault".to_string(), JsonValue::Str(cell.cell.fault.clone())),
                (
                    "fleet_fault".to_string(),
                    JsonValue::Str(cell.cell.fleet_fault.clone()),
                ),
                (
                    "runs".to_string(),
                    JsonValue::Arr(cell.runs.iter().map(run_to_json).collect()),
                ),
                ("stats".to_string(), JsonValue::Obj(stats_fields)),
                ("tripped".to_string(), JsonValue::Arr(tripped)),
            ])
        })
        .collect();
    let det_summary: Vec<JsonValue> = detector_summary(outcome)
        .into_iter()
        .map(|(name, trips)| {
            JsonValue::Obj(vec![
                ("detector".to_string(), JsonValue::from(name)),
                ("trips".to_string(), JsonValue::from(trips)),
            ])
        })
        .collect();
    JsonValue::Obj(vec![
        ("name".to_string(), JsonValue::Str(spec.name.clone())),
        ("quanta".to_string(), JsonValue::from(spec.quanta)),
        (
            "topology".to_string(),
            JsonValue::Str(spec.topology.label()),
        ),
        (
            "seeds".to_string(),
            JsonValue::Arr(
                spec.seeds
                    .iter()
                    .map(|&s| JsonValue::from(s as usize))
                    .collect(),
            ),
        ),
        (
            "axes".to_string(),
            JsonValue::Obj(vec![
                (
                    "load_shapes".to_string(),
                    JsonValue::Arr(
                        spec.load_shapes
                            .iter()
                            .map(|s| JsonValue::Str(s.label()))
                            .collect(),
                    ),
                ),
                (
                    "caps".to_string(),
                    JsonValue::Arr(spec.caps.iter().map(|&c| JsonValue::Num(c)).collect()),
                ),
                (
                    "fault_profiles".to_string(),
                    JsonValue::Arr(
                        spec.fault_profiles
                            .iter()
                            .map(|p| JsonValue::Str(p.clone()))
                            .collect(),
                    ),
                ),
                (
                    "fleet_fault_profiles".to_string(),
                    JsonValue::Arr(
                        spec.fleet_fault_profiles
                            .iter()
                            .map(|p| JsonValue::Str(p.clone()))
                            .collect(),
                    ),
                ),
            ]),
        ),
        (
            "total_runs".to_string(),
            JsonValue::from(outcome.total_runs()),
        ),
        ("cells".to_string(), JsonValue::Arr(cells)),
        ("detector_summary".to_string(), JsonValue::Arr(det_summary)),
        (
            "verdict".to_string(),
            JsonValue::from(if outcome.tripped() { "fail" } else { "pass" }),
        ),
    ])
}

/// [`summary_json`] for a `--filter`ed partial sweep: the same document
/// with `"partial": true` and the filter substring recorded right after
/// the name, so a partial file can never be mistaken for (or diffed
/// against) the golden full summary. The runner writes partial results
/// to `summary.partial.json`, never to `summary.json`.
pub fn summary_json_partial(spec: &SweepSpec, outcome: &SweepOutcome, filter: &str) -> JsonValue {
    match summary_json(spec, outcome) {
        JsonValue::Obj(mut fields) => {
            fields.insert(1, ("partial".to_string(), JsonValue::Bool(true)));
            fields.insert(2, ("filter".to_string(), JsonValue::Str(filter.to_string())));
            JsonValue::Obj(fields)
        }
        other => other,
    }
}

/// Renders the pass/fail table: one row per cell, then the detector
/// trip counts.
pub fn render_tables(spec: &SweepSpec, outcome: &SweepOutcome) -> String {
    let mut cells_table = Table::new(
        &format!("sweep: {} ({} runs)", spec.name, outcome.total_runs()),
        &[
            "cell",
            "runs",
            "qos viol (mean)",
            "batch Ginstr (mean)",
            "tripped",
        ],
    );
    for cell in &outcome.cells {
        let cs = cell_stats(cell);
        let find = |name: &str| {
            cs.iter()
                .find(|(m, _)| *m == name)
                .map_or(0.0, |(_, s)| s.mean)
        };
        let tripped: Vec<&str> = {
            let mut names: Vec<&str> = Vec::new();
            for run in &cell.runs {
                for f in &run.findings {
                    if f.tripped && !names.contains(&f.detector) {
                        names.push(f.detector);
                    }
                }
            }
            names.sort_unstable();
            names
        };
        cells_table.row(vec![
            cell.cell.label(),
            format!("{}", cell.runs.len()),
            format!("{:.2}", find("qos_violations")),
            format!("{:.3}", find("batch_instructions") / 1e9),
            if tripped.is_empty() {
                "-".to_string()
            } else {
                tripped.join(",")
            },
        ]);
    }
    let mut det_table = Table::new("detectors", &["detector", "trips", "verdict"]);
    for (name, trips) in detector_summary(outcome) {
        det_table.row(vec![
            name.to_string(),
            format!("{trips}"),
            if trips == 0 { "pass" } else { "FAIL" }.to_string(),
        ]);
    }
    format!("{}\n{}", cells_table.render(), det_table.render())
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used, clippy::float_cmp)]
mod tests {
    use super::*;

    #[test]
    fn stats_of_a_constant_series_have_zero_std() {
        let s = stats(&[3.0, 3.0, 3.0]);
        assert_eq!(s.min, 3.0);
        assert_eq!(s.mean, 3.0);
        assert_eq!(s.max, 3.0);
        assert_eq!(s.std, 0.0);
    }

    #[test]
    fn stats_of_empty_series_are_zero() {
        let s = stats(&[]);
        assert_eq!((s.min, s.mean, s.max, s.std), (0.0, 0.0, 0.0, 0.0));
    }

    #[test]
    fn stats_match_hand_computation() {
        let s = stats(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.mean, 2.5);
        assert_eq!(s.max, 4.0);
        let var: f64 = (2.25 + 0.25 + 0.25 + 2.25) / 4.0;
        assert_eq!(s.std, var.sqrt());
    }
}
