//! The sweep CLI: `sweep run --scenario scenarios/<name>.json`.
//!
//! Exit codes: `0` when every detector passed, `1` on a usage or
//! scenario-load error, `2` when at least one detector tripped —
//! so CI can gate directly on the process status.
//!
//! The wall-clock footer is print-only: nothing timed ever reaches
//! `summary.json`, which stays a pure function of the scenario file.

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

use sweep::{
    filter_grid, load_spec, render_tables, run_sweep_cells, summary_json, summary_json_partial,
};
use util::json::emit_json;
use util::WorkerPool;

const USAGE: &str = "usage: sweep run --scenario <file.json> [--out <dir>] [--pool <threads>] \
                     [--filter <substring>]";

struct Args {
    scenario: PathBuf,
    out: Option<PathBuf>,
    pool: usize,
    filter: Option<String>,
}

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut it = argv.iter();
    match it.next().map(String::as_str) {
        Some("run") => {}
        Some(other) => return Err(format!("unknown command \"{other}\"\n{USAGE}")),
        None => return Err(USAGE.to_string()),
    }
    let mut scenario = None;
    let mut out = None;
    let mut pool = 4;
    let mut filter = None;
    while let Some(flag) = it.next() {
        let mut value = |what: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("flag {what} needs a value\n{USAGE}"))
        };
        match flag.as_str() {
            "--scenario" => scenario = Some(PathBuf::from(value("--scenario")?)),
            "--out" => out = Some(PathBuf::from(value("--out")?)),
            "--filter" => filter = Some(value("--filter")?),
            "--pool" => {
                pool = value("--pool")?
                    .parse::<usize>()
                    .ok()
                    .filter(|&n| n > 0)
                    .ok_or_else(|| format!("--pool needs a positive integer\n{USAGE}"))?;
            }
            other => return Err(format!("unknown flag \"{other}\"\n{USAGE}")),
        }
    }
    let scenario = scenario.ok_or_else(|| format!("--scenario is required\n{USAGE}"))?;
    Ok(Args {
        scenario,
        out,
        pool,
        filter,
    })
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&argv) {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(1);
        }
    };
    let text = match std::fs::read_to_string(&args.scenario) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("cannot read {}: {e}", args.scenario.display());
            return ExitCode::from(1);
        }
    };
    let spec = match load_spec(&text) {
        Ok(spec) => spec,
        Err(e) => {
            eprintln!("{}: {e}", args.scenario.display());
            return ExitCode::from(1);
        }
    };
    let filter = args.filter.as_deref().unwrap_or("");
    let cells = filter_grid(&spec, filter);
    let grid_size = spec.total_runs() / spec.seeds.len();
    if cells.is_empty() {
        eprintln!(
            "--filter \"{filter}\" matches none of the {grid_size} cell labels \
             (labels look like the `cell` column of the pass/fail table)"
        );
        return ExitCode::from(1);
    }
    let partial = cells.len() < grid_size;
    if partial {
        println!(
            "PARTIAL sweep: --filter \"{filter}\" matched {} of {grid_size} cells; \
             results go to summary.partial.json (the golden summary.json is untouched)",
            cells.len(),
        );
    }
    println!(
        "sweep \"{}\": {} cells x {} seeds = {} runs across {} workers",
        spec.name,
        cells.len(),
        spec.seeds.len(),
        cells.len() * spec.seeds.len(),
        args.pool,
    );
    let started = Instant::now();
    let pool = WorkerPool::new(args.pool);
    let outcome = run_sweep_cells(&spec, &pool, cells);
    let elapsed = started.elapsed();
    println!("{}", render_tables(&spec, &outcome));

    let out_dir = args
        .out
        .unwrap_or_else(|| PathBuf::from("runs").join(&spec.name));
    let summary_path = out_dir.join(if partial {
        "summary.partial.json"
    } else {
        "summary.json"
    });
    let summary = if partial {
        summary_json_partial(&spec, &outcome, filter)
    } else {
        summary_json(&spec, &outcome)
    };
    if let Err(e) = emit_json(&summary_path, &summary) {
        eprintln!("cannot write {}: {e}", summary_path.display());
        return ExitCode::from(1);
    }
    println!(
        "{} runs in {:.1}s -> {}",
        outcome.total_runs(),
        elapsed.as_secs_f64(),
        summary_path.display(),
    );
    let scope = if partial {
        " (PARTIAL: filtered cells only)"
    } else {
        ""
    };
    if outcome.tripped() {
        eprintln!("verdict: FAIL{scope} (a detector tripped; see the table above)");
        ExitCode::from(2)
    } else {
        println!("verdict: pass{scope}");
        ExitCode::SUCCESS
    }
}
