//! The sweep executor: grid enumeration and parallel seeded runs.
//!
//! The run grid is enumerated *before* any execution: cells in the
//! deterministic nested order shapes × caps × faults × fleet-faults,
//! seeds within a cell in sorted order. Execution fans the flat point
//! list across the caller's [`WorkerPool`] with
//! [`WorkerPool::map_indexed`], which writes each result into its
//! input slot — so the output ordering (and therefore every byte of
//! the summary) is independent of pool width and scheduling. Runs
//! themselves are bit-deterministic per the core/cluster contracts, so
//! serial and parallel sweeps agree exactly.

use cluster::{ClusterConfig, ClusterCoordinator, ClusterEvent, ClusterScenario, FleetFaultPlan};
use cuttlesys::{run_scenario, CuttleSysManager};
use util::WorkerPool;

use crate::detectors::{evaluate, Finding, RunSeries};
use crate::spec::{LoadShape, SweepSpec, Topology};

/// One grid cell: a point on every axis except the seed.
#[derive(Debug, Clone, PartialEq)]
pub struct Cell {
    /// The load shape driving the primary LC tenant.
    pub shape: LoadShape,
    /// The power cap as a fraction of nominal.
    pub cap: f64,
    /// The single-node fault profile name.
    pub fault: String,
    /// The fleet fault profile name (`"clean"` for single-node sweeps).
    pub fleet_fault: String,
}

impl Cell {
    /// A stable, human-readable cell label for reports.
    pub fn label(&self) -> String {
        format!(
            "{} cap={} fault={} fleet={}",
            self.shape.label(),
            self.cap,
            self.fault,
            self.fleet_fault
        )
    }
}

/// Cluster-level metrics of one fleet run.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterMetrics {
    /// Fleet size.
    pub nodes: usize,
    /// Evacuations (batch re-placements + LC traffic foldings).
    pub evacuations: usize,
    /// Tenants still parked in the displaced queue at run end.
    pub displaced_final: usize,
    /// Tenants lost outright: abandoned migrations plus tenants still
    /// displaced when the run ended.
    pub tenants_lost: usize,
    /// Quanta the fleet spent in degraded mode.
    pub fleet_degraded_quanta: usize,
}

/// The scalar metrics and detector series of one seeded run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunMetrics {
    /// The run's seed.
    pub seed: u64,
    /// Quanta executed.
    pub quanta: usize,
    /// Quanta in which some LC tenant violated QoS.
    pub qos_violations: usize,
    /// Quanta in which the power cap was exceeded.
    pub power_violations: usize,
    /// Worst observed p99/QoS ratio across tenants and quanta.
    pub worst_tail_ratio: f64,
    /// Total batch instructions retired (fleet-summed for clusters).
    pub batch_instructions: f64,
    /// Quanta spent anywhere on the degradation ladder (node-level;
    /// summed across nodes for clusters).
    pub degraded_quanta: usize,
    /// Quanta spent in safe mode (summed across nodes for clusters).
    pub safe_mode_quanta: usize,
    /// Quanta that carried an injected single-node fault.
    pub injected_fault_slices: usize,
    /// The per-quantum series the detectors consume.
    pub series: RunSeries,
    /// Fleet metrics (`None` for single-node runs).
    pub cluster: Option<ClusterMetrics>,
}

/// One executed run: its metrics plus every detector's verdict.
#[derive(Debug, Clone, PartialEq)]
pub struct RunOutcome {
    /// The metrics.
    pub metrics: RunMetrics,
    /// Detector findings in catalogue order.
    pub findings: Vec<Finding>,
}

impl RunOutcome {
    /// Whether any detector tripped on this run.
    pub fn tripped(&self) -> bool {
        self.findings.iter().any(|f| f.tripped)
    }
}

/// One cell with all its seeded runs, in sorted-seed order.
#[derive(Debug, Clone, PartialEq)]
pub struct CellOutcome {
    /// The cell.
    pub cell: Cell,
    /// One outcome per seed.
    pub runs: Vec<RunOutcome>,
}

/// A fully-executed sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepOutcome {
    /// Cells in grid order, each with its runs in seed order.
    pub cells: Vec<CellOutcome>,
}

impl SweepOutcome {
    /// Total runs executed.
    pub fn total_runs(&self) -> usize {
        self.cells.iter().map(|c| c.runs.len()).sum()
    }

    /// Whether any detector tripped anywhere in the sweep.
    pub fn tripped(&self) -> bool {
        self.cells
            .iter()
            .any(|c| c.runs.iter().any(RunOutcome::tripped))
    }
}

/// Enumerates the grid cells in the canonical nested order:
/// shapes × caps × fault profiles × fleet fault profiles.
pub fn grid(spec: &SweepSpec) -> Vec<Cell> {
    let mut cells = Vec::with_capacity(
        spec.load_shapes.len()
            * spec.caps.len()
            * spec.fault_profiles.len()
            * spec.fleet_fault_profiles.len(),
    );
    for shape in &spec.load_shapes {
        for &cap in &spec.caps {
            for fault in &spec.fault_profiles {
                for fleet_fault in &spec.fleet_fault_profiles {
                    cells.push(Cell {
                        shape: shape.clone(),
                        cap,
                        fault: fault.clone(),
                        fleet_fault: fleet_fault.clone(),
                    });
                }
            }
        }
    }
    cells
}

fn run_single(spec: &SweepSpec, cell: &Cell, seed: u64) -> RunMetrics {
    let scenario = spec.scenario_for(&cell.shape, cell.cap, &cell.fault, seed);
    let mut manager = CuttleSysManager::for_scenario(&scenario)
        .with_perf(spec.overrides.perf)
        .with_resilience(spec.overrides.resilience);
    let record = run_scenario(&scenario, &mut manager);
    let series = RunSeries {
        qos_violated: record.slices.iter().map(|s| s.qos_violation()).collect(),
        safe_mode_quanta: record.safe_mode_quanta(),
        degraded_quanta: record.degraded_quanta(),
        throughput: record.slices.iter().map(|s| s.batch_instructions).collect(),
        displaced: Vec::new(),
        tenants_lost: 0,
        quanta: record.slices.len(),
        error: None,
    };
    RunMetrics {
        seed,
        quanta: record.slices.len(),
        qos_violations: record.qos_violations(),
        power_violations: record.power_violations(),
        worst_tail_ratio: record.worst_tail_ratio(),
        batch_instructions: record.batch_instructions(),
        degraded_quanta: record.degraded_quanta(),
        safe_mode_quanta: record.safe_mode_quanta(),
        injected_fault_slices: record.injected_fault_slices(),
        series,
        cluster: None,
    }
}

fn run_cluster(spec: &SweepSpec, cell: &Cell, seed: u64, nodes: usize) -> RunMetrics {
    let base = spec.scenario_for(&cell.shape, cell.cap, &cell.fault, seed);
    let node_faults = base.faults.clone();
    let cs = ClusterScenario::uniform(&base, nodes).with_node_faults(node_faults);
    // Profiles are validated at load time, so the lookup cannot fail.
    let plan = FleetFaultPlan::named(&cell.fleet_fault, seed).unwrap_or_else(FleetFaultPlan::none);
    let mut coord = ClusterCoordinator::with_faults(&cs, ClusterConfig::default(), plan);

    let mut displaced_series = Vec::with_capacity(spec.quanta);
    let mut fleet_degraded_quanta = 0;
    let mut error = None;
    for _ in 0..spec.quanta {
        if let Err(e) = coord.step_quantum() {
            error = Some(format!("cluster step failed: {e}"));
            break;
        }
        displaced_series.push(coord.displaced_tenants());
        if coord.is_degraded() {
            fleet_degraded_quanta += 1;
        }
    }
    // A full match (no `_` arm) so that a new fleet event variant forces a
    // decision here: does the sweep verdict need to count it?
    let abandoned = coord
        .drain_events()
        .iter()
        .filter(|e| match e {
            ClusterEvent::MigrationAbandoned { .. } => true,
            ClusterEvent::Node(_)
            | ClusterEvent::Placed { .. }
            | ClusterEvent::MigrationStarted { .. }
            | ClusterEvent::MigrationCompleted { .. }
            | ClusterEvent::MigrationFailed { .. }
            | ClusterEvent::MigrationRetried { .. }
            | ClusterEvent::NodeHealthChanged { .. }
            | ClusterEvent::NodeDrained { .. }
            | ClusterEvent::Evacuated { .. }
            | ClusterEvent::Displaced { .. }
            | ClusterEvent::FleetDegraded { .. }
            | ClusterEvent::FleetRecovered { .. }
            | ClusterEvent::SharesShifted { .. } => false,
        })
        .count();
    let displaced_final = coord.displaced_tenants();
    let evacuations = coord.evacuations_total();
    let record = coord.into_record();

    // Per-quantum fleet series. A crashed node's record simply stops,
    // so its missing quanta contribute zero throughput and no QoS
    // signal — exactly the collapse the cliff detector looks for.
    let quanta = record.quanta;
    let mut qos_violated = vec![false; quanta];
    let mut throughput = vec![0.0; quanta];
    for node in &record.nodes {
        for (q, slice) in node.slices.iter().enumerate().take(quanta) {
            if slice.qos_violation() {
                qos_violated[q] = true;
            }
            throughput[q] += slice.batch_instructions;
        }
    }
    let safe_mode_quanta = record.nodes.iter().map(|n| n.safe_mode_quanta()).sum();
    let degraded_quanta = record.nodes.iter().map(|n| n.degraded_quanta()).sum();
    let tenants_lost = abandoned + displaced_final;
    let series = RunSeries {
        qos_violated,
        safe_mode_quanta,
        degraded_quanta,
        throughput: throughput.clone(),
        displaced: displaced_series,
        tenants_lost,
        quanta,
        error: error.clone(),
    };
    RunMetrics {
        seed,
        quanta,
        qos_violations: series.qos_violated.iter().filter(|&&v| v).count(),
        power_violations: record.nodes.iter().map(|n| n.power_violations()).sum(),
        worst_tail_ratio: record
            .nodes
            .iter()
            .map(|n| n.worst_tail_ratio())
            .fold(0.0, f64::max),
        batch_instructions: record.nodes.iter().map(|n| n.batch_instructions()).sum(),
        degraded_quanta,
        safe_mode_quanta,
        injected_fault_slices: record.nodes.iter().map(|n| n.injected_fault_slices()).sum(),
        series,
        cluster: Some(ClusterMetrics {
            nodes,
            evacuations,
            displaced_final,
            tenants_lost,
            fleet_degraded_quanta,
        }),
    }
}

fn run_point(spec: &SweepSpec, cell: &Cell, seed: u64) -> RunOutcome {
    let metrics = match spec.topology {
        Topology::SingleNode => run_single(spec, cell, seed),
        Topology::Cluster { nodes } => run_cluster(spec, cell, seed, nodes),
    };
    let findings = evaluate(&metrics.series, &spec.detectors);
    RunOutcome { metrics, findings }
}

/// The cells of [`grid`] whose [`Cell::label`] contains `filter`.
///
/// This is the `sweep run --filter` selection rule: a plain substring
/// match against the exact label the pass/fail table prints, so a row
/// copied out of a failing CI log re-runs that cell verbatim. An empty
/// filter matches every cell.
pub fn filter_grid(spec: &SweepSpec, filter: &str) -> Vec<Cell> {
    grid(spec)
        .into_iter()
        .filter(|c| c.label().contains(filter))
        .collect()
}

/// Executes every run of the sweep across `pool`, returning cells in
/// grid order with runs in seed order — bit-identical at any pool
/// width and for any on-disk seed ordering.
pub fn run_sweep(spec: &SweepSpec, pool: &WorkerPool) -> SweepOutcome {
    run_cells(spec, pool, grid(spec))
}

/// [`run_sweep`] over a caller-chosen subset of the grid (normally from
/// [`filter_grid`]). The subset keeps grid order, so a filtered outcome
/// is a projection of the full sweep: every surviving cell's runs are
/// bit-identical to what the unfiltered sweep produces for that cell.
pub fn run_sweep_cells(spec: &SweepSpec, pool: &WorkerPool, cells: Vec<Cell>) -> SweepOutcome {
    run_cells(spec, pool, cells)
}

fn run_cells(spec: &SweepSpec, pool: &WorkerPool, cells: Vec<Cell>) -> SweepOutcome {
    let points: Vec<(usize, u64)> = cells
        .iter()
        .enumerate()
        .flat_map(|(c, _)| spec.seeds.iter().map(move |&s| (c, s)))
        .collect();
    let outcomes = pool.map_indexed(&points, |_, &(c, seed)| run_point(spec, &cells[c], seed));
    let per_cell = spec.seeds.len();
    let mut out = Vec::with_capacity(cells.len());
    let mut iter = outcomes.into_iter();
    for cell in cells {
        let runs: Vec<RunOutcome> = iter.by_ref().take(per_cell).collect();
        out.push(CellOutcome { cell, runs });
    }
    SweepOutcome { cells: out }
}
