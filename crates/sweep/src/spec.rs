//! The declarative scenario-file format and its hard-error loader.
//!
//! A sweep spec is a JSON document describing a *region of scenario
//! space*: a tenant mix, a set of seeds, and up to four axes (load
//! shapes, power caps, single-node fault profiles, fleet fault
//! profiles) whose cross product defines the grid of cells; every cell
//! is run once per seed. Loading is strict — unknown top-level fields,
//! unknown override keys, unknown detector names, unknown profiles,
//! services, or shapes are all *hard errors at load time*, each listing
//! the valid vocabulary, so a typo can never silently shrink a sweep.
//!
//! The loader also *lowers* the spec: load shapes become
//! [`LoadPattern`]s, tenant mixes become [`Scenario`] job lists, and
//! overrides are applied onto [`PerfConfig`]/[`ResilienceConfig`]
//! defaults, so the runner only ever sees fully-validated values.

use cuttlesys::faults::{FaultPlan, ResilienceConfig};
use cuttlesys::types::{BatchJobSpec, JobSpec, LcJobSpec, Scenario};
use cuttlesys::PerfConfig;
use util::json::{self, JsonValue};
use workloads::batch;
use workloads::latency::{self, LcService};
use workloads::loadgen::LoadPattern;

use crate::detectors::{DetectorThresholds, DETECTOR_NAMES};

/// Top-level spec fields the loader accepts, sorted for error messages.
const SPEC_FIELDS: &[&str] = &[
    "caps",
    "detectors",
    "fault_profiles",
    "fleet_fault_profiles",
    "load_shapes",
    "name",
    "noise",
    "overrides",
    "phases",
    "quanta",
    "seeds",
    "tenants",
    "topology",
];

/// Valid override keys, sorted for error messages.
pub const OVERRIDE_KEYS: &[&str] = &[
    "perf.evaluation_cache",
    "perf.pool_threads",
    "perf.warm_start",
    "resilience.breaker_close_after",
    "resilience.breaker_open_after",
    "resilience.breaker_probe_interval",
    "resilience.deadline_ms",
    "resilience.max_bips",
    "resilience.max_tail_ms",
    "resilience.max_watts",
    "resilience.staleness_bound",
];

/// Valid single-node fault-profile names, sorted.
pub const FAULT_PROFILES: &[&str] = &["clean", "flaky-reconfig", "lossy-sensors"];

/// Valid fleet fault-profile names, sorted.
pub const FLEET_FAULT_PROFILES: &[&str] = &[
    "blackout",
    "clean",
    "maintenance-drain",
    "node-crash",
    "slow-node",
];

/// Valid load-shape kinds, sorted.
pub const LOAD_SHAPES: &[&str] = &["diurnal", "flash-crowd", "ramp", "square-wave", "steady"];

/// Why a scenario file was rejected.
#[derive(Debug, Clone, PartialEq)]
pub enum SweepError {
    /// The file is not JSON at all.
    Json(json::JsonError),
    /// The document parsed but violates the spec schema.
    Invalid(String),
}

impl std::fmt::Display for SweepError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SweepError::Json(e) => write!(f, "scenario file is not valid JSON: {e}"),
            SweepError::Invalid(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for SweepError {}

fn invalid(msg: impl Into<String>) -> SweepError {
    SweepError::Invalid(msg.into())
}

/// Where the runs execute: one simulated node, or a lockstep fleet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Topology {
    /// A single simulated 32-core server.
    SingleNode,
    /// A uniform fleet stepped by the [`cluster`] coordinator.
    Cluster {
        /// Fleet size.
        nodes: usize,
    },
}

impl Topology {
    /// The topology as a report label (`"single"` / `"cluster:4"`).
    pub fn label(&self) -> String {
        match self {
            Topology::SingleNode => "single".to_string(),
            Topology::Cluster { nodes } => format!("cluster:{nodes}"),
        }
    }
}

/// One latency-critical tenant of the mix.
#[derive(Debug, Clone, PartialEq)]
pub struct LcTenantSpec {
    /// The resolved service (validated at load time).
    pub service: LcService,
    /// Base load fraction of the service's calibrated maximum.
    pub load: f64,
    /// Initial core reservation.
    pub cores: usize,
    /// QoS override in ms (`None` = the service's calibrated target).
    pub qos_ms: Option<f64>,
}

/// The tenant mix every cell runs.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantMix {
    /// Latency-critical tenants, in priority order (at least one).
    pub lc: Vec<LcTenantSpec>,
    /// Number of batch jobs drawn from the SPEC catalog.
    pub batch: usize,
    /// Seed of the batch-mix draw.
    pub mix_seed: u64,
}

/// A time shape applied to the *primary* LC tenant's load; the other
/// tenants hold their base load constant.
#[derive(Debug, Clone, PartialEq)]
pub enum LoadShape {
    /// Constant at the tenant's base load.
    Steady,
    /// Sinusoid between `min` and `max`; `period_s = None` means one
    /// full cycle over the run.
    Diurnal {
        /// Trough load fraction.
        min: f64,
        /// Peak load fraction.
        max: f64,
        /// Cycle period in seconds (`None` = the run duration).
        period_s: Option<f64>,
    },
    /// A square spike from `base` to `peak` between two run fractions.
    FlashCrowd {
        /// Load outside the spike.
        base: f64,
        /// Load during the spike (may exceed 1.0: overload).
        peak: f64,
        /// Spike start as a fraction of the run.
        start_frac: f64,
        /// Spike end as a fraction of the run.
        end_frac: f64,
    },
    /// Linear ramp from `from` to `to` over the run.
    Ramp {
        /// Load at the first quantum.
        from: f64,
        /// Load at the last quantum.
        to: f64,
    },
    /// Alternating steps between `lo` and `hi`; `period_s = None` means
    /// one toggle at mid-run.
    SquareWave {
        /// Low-level load fraction.
        lo: f64,
        /// High-level load fraction.
        hi: f64,
        /// Full lo+hi period in seconds (`None` = the run duration).
        period_s: Option<f64>,
    },
}

fn trim_num(v: f64) -> String {
    format!("{v}")
}

impl LoadShape {
    /// A deterministic report label carrying the shape's parameters.
    pub fn label(&self) -> String {
        match self {
            LoadShape::Steady => "steady".to_string(),
            LoadShape::Diurnal { min, max, period_s } => format!(
                "diurnal[{},{},{}]",
                trim_num(*min),
                trim_num(*max),
                period_s.map_or("run".to_string(), trim_num),
            ),
            LoadShape::FlashCrowd {
                base,
                peak,
                start_frac,
                end_frac,
            } => format!(
                "flash-crowd[{},{},{},{}]",
                trim_num(*base),
                trim_num(*peak),
                trim_num(*start_frac),
                trim_num(*end_frac),
            ),
            LoadShape::Ramp { from, to } => {
                format!("ramp[{},{}]", trim_num(*from), trim_num(*to))
            }
            LoadShape::SquareWave { lo, hi, period_s } => format!(
                "square-wave[{},{},{}]",
                trim_num(*lo),
                trim_num(*hi),
                period_s.map_or("run".to_string(), trim_num),
            ),
        }
    }

    /// Lowers the shape to a [`LoadPattern`] for a run of `duration_s`
    /// seconds whose primary tenant idles at `base_load`.
    pub fn lower(&self, base_load: f64, duration_s: f64) -> LoadPattern {
        match self {
            LoadShape::Steady => LoadPattern::Constant(base_load),
            LoadShape::Diurnal { min, max, period_s } => LoadPattern::Diurnal {
                min: *min,
                max: *max,
                period_s: period_s.unwrap_or(duration_s),
            },
            LoadShape::FlashCrowd {
                base,
                peak,
                start_frac,
                end_frac,
            } => LoadPattern::Spike {
                base: *base,
                peak: *peak,
                start_s: start_frac * duration_s,
                end_s: end_frac * duration_s,
            },
            LoadShape::Ramp { from, to } => LoadPattern::Trace {
                interval_s: duration_s,
                samples: vec![*from, *to],
            },
            LoadShape::SquareWave { lo, hi, period_s } => {
                let period = period_s.unwrap_or(duration_s).max(1e-9);
                let mut steps = Vec::new();
                let mut t = 0.0;
                let mut high = false;
                while t < duration_s {
                    steps.push((t, if high { *hi } else { *lo }));
                    high = !high;
                    t += period / 2.0;
                }
                LoadPattern::Steps(steps)
            }
        }
    }
}

/// Config overrides, already applied onto the sweep defaults.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Overrides {
    /// The per-run manager compute configuration. Defaults to a
    /// one-thread pool (the sweep parallelizes across *runs*, so the
    /// per-run fan-out stays narrow), no warm start, cache on.
    pub perf: PerfConfig,
    /// The per-run degradation-ladder bounds.
    pub resilience: ResilienceConfig,
}

impl Default for Overrides {
    fn default() -> Overrides {
        Overrides {
            perf: PerfConfig::default()
                .with_pool_threads(1)
                .with_warm_start(false)
                .with_evaluation_cache(true),
            resilience: ResilienceConfig::default(),
        }
    }
}

/// A fully-validated, lowered sweep specification.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepSpec {
    /// Scenario identifier; names the output directory.
    pub name: String,
    /// Decision quanta per run.
    pub quanta: usize,
    /// Seeds, sorted and deduplicated — the file's ordering is
    /// immaterial by construction.
    pub seeds: Vec<u64>,
    /// Where runs execute.
    pub topology: Topology,
    /// The tenant mix.
    pub tenants: TenantMix,
    /// Load-shape axis (default `[Steady]`).
    pub load_shapes: Vec<LoadShape>,
    /// Power-cap axis, as fractions of nominal (default `[0.7]`).
    pub caps: Vec<f64>,
    /// Single-node fault-profile axis (default `["clean"]`).
    pub fault_profiles: Vec<String>,
    /// Fleet fault-profile axis (default `["clean"]`; cluster only).
    pub fleet_fault_profiles: Vec<String>,
    /// Measurement-noise relative sigma (default 0.03).
    pub noise: f64,
    /// Whether applications drift through phases (default true).
    pub phases: bool,
    /// Applied config overrides.
    pub overrides: Overrides,
    /// Detector thresholds.
    pub detectors: DetectorThresholds,
}

impl SweepSpec {
    /// Total runs the spec describes: grid cells × seeds.
    pub fn total_runs(&self) -> usize {
        self.load_shapes.len()
            * self.caps.len()
            * self.fault_profiles.len()
            * self.fleet_fault_profiles.len()
            * self.seeds.len()
    }

    /// Run duration in simulated seconds.
    pub fn duration_s(&self) -> f64 {
        self.quanta as f64 * cuttlesys::types::TIMESLICE_MS / 1000.0
    }

    /// Builds the base [`Scenario`] for one `(shape, cap, fault, seed)`
    /// point — the one construction path the sweep, its tests, and the
    /// fixture examples share.
    pub fn scenario_for(&self, shape: &LoadShape, cap: f64, fault: &str, seed: u64) -> Scenario {
        let duration_s = self.duration_s();
        let mut jobs = Vec::new();
        for (i, lc) in self.tenants.lc.iter().enumerate() {
            let load = if i == 0 {
                shape.lower(lc.load, duration_s)
            } else {
                LoadPattern::Constant(lc.load)
            };
            let mut spec = LcJobSpec::new(lc.service, load, lc.cores);
            if let Some(qos_ms) = lc.qos_ms {
                spec.qos_ms = qos_ms;
            }
            jobs.push(JobSpec::LatencyCritical(spec));
        }
        for app in batch::mix(self.tenants.batch, self.tenants.mix_seed).apps {
            jobs.push(JobSpec::Batch(BatchJobSpec::resident(app)));
        }
        // Profiles are validated at load time, so the lookup cannot fail.
        let faults = FaultPlan::named(fault, seed).unwrap_or_else(FaultPlan::none);
        Scenario {
            jobs,
            ..Scenario::paper_default()
        }
        .with_duration_slices(self.quanta)
        .with_cap(LoadPattern::Constant(cap))
        .with_seed(seed)
        .with_noise(self.noise)
        .with_phases(self.phases)
        .with_faults(faults)
    }
}

fn sorted_list(items: &[&str]) -> String {
    items.join(", ")
}

fn field_usize(obj: &JsonValue, field: &str, what: &str) -> Result<usize, SweepError> {
    obj.get(field)
        .and_then(JsonValue::as_usize)
        .ok_or_else(|| invalid(format!("scenario field \"{field}\" must be {what}")))
}

fn field_f64(obj: &JsonValue, field: &str) -> Result<f64, SweepError> {
    obj.get(field)
        .and_then(JsonValue::as_f64)
        .ok_or_else(|| invalid(format!("scenario field \"{field}\" must be a number")))
}

fn shape_param(obj: &JsonValue, kind: &str, field: &str, default: f64) -> Result<f64, SweepError> {
    match obj.get(field) {
        None => Ok(default),
        Some(v) => v.as_f64().ok_or_else(|| {
            invalid(format!(
                "load shape \"{kind}\" field \"{field}\" must be a number"
            ))
        }),
    }
}

fn parse_shape(value: &JsonValue) -> Result<LoadShape, SweepError> {
    let (kind, obj) = match value {
        JsonValue::Str(s) => (s.as_str(), None),
        JsonValue::Obj(_) => {
            let kind = value
                .get("kind")
                .and_then(JsonValue::as_str)
                .ok_or_else(|| invalid("a load-shape object needs a string \"kind\""))?;
            (kind, Some(value))
        }
        _ => return Err(invalid("a load shape must be a string or an object")),
    };
    let obj = obj.unwrap_or(&JsonValue::Null);
    let opt_period = |kind: &str| -> Result<Option<f64>, SweepError> {
        match obj.get("period_s") {
            None => Ok(None),
            Some(v) => v.as_f64().map(Some).ok_or_else(|| {
                invalid(format!(
                    "load shape \"{kind}\" field \"period_s\" must be a number"
                ))
            }),
        }
    };
    match kind {
        "steady" => Ok(LoadShape::Steady),
        "diurnal" => Ok(LoadShape::Diurnal {
            min: shape_param(obj, kind, "min", 0.2)?,
            max: shape_param(obj, kind, "max", 1.0)?,
            period_s: opt_period(kind)?,
        }),
        "flash-crowd" => Ok(LoadShape::FlashCrowd {
            base: shape_param(obj, kind, "base", 0.2)?,
            peak: shape_param(obj, kind, "peak", 1.3)?,
            start_frac: shape_param(obj, kind, "start_frac", 0.3)?,
            end_frac: shape_param(obj, kind, "end_frac", 0.7)?,
        }),
        "ramp" => Ok(LoadShape::Ramp {
            from: shape_param(obj, kind, "from", 0.2)?,
            to: shape_param(obj, kind, "to", 1.0)?,
        }),
        "square-wave" => Ok(LoadShape::SquareWave {
            lo: shape_param(obj, kind, "lo", 0.2)?,
            hi: shape_param(obj, kind, "hi", 1.0)?,
            period_s: opt_period(kind)?,
        }),
        other => Err(invalid(format!(
            "unknown load shape \"{other}\"; valid shapes are: {}",
            sorted_list(LOAD_SHAPES)
        ))),
    }
}

fn parse_seeds(value: &JsonValue) -> Result<Vec<u64>, SweepError> {
    let bad = || {
        invalid(
            "scenario field \"seeds\" must be a non-empty array of integers \
             or {\"range\": [start, end]}",
        )
    };
    let mut seeds: Vec<u64> = match value {
        JsonValue::Arr(items) if !items.is_empty() => items
            .iter()
            .map(|v| v.as_usize().map(|s| s as u64).ok_or_else(bad))
            .collect::<Result<_, _>>()?,
        JsonValue::Obj(_) => {
            let range = value
                .get("range")
                .and_then(JsonValue::as_array)
                .ok_or_else(bad)?;
            let (start, end) = match range {
                [a, b] => (
                    a.as_usize().ok_or_else(bad)? as u64,
                    b.as_usize().ok_or_else(bad)? as u64,
                ),
                _ => return Err(bad()),
            };
            if end <= start {
                return Err(bad());
            }
            (start..end).collect()
        }
        _ => return Err(bad()),
    };
    // The file's ordering is immaterial: sort + dedup here so shuffled
    // seed lists load to the identical spec (and identical summary).
    seeds.sort_unstable();
    seeds.dedup();
    Ok(seeds)
}

fn parse_topology(value: Option<&JsonValue>) -> Result<Topology, SweepError> {
    let Some(value) = value else {
        return Ok(Topology::SingleNode);
    };
    let kind = value
        .get("kind")
        .and_then(JsonValue::as_str)
        .ok_or_else(|| invalid("scenario field \"topology\" needs a string \"kind\""))?;
    match kind {
        "single" => Ok(Topology::SingleNode),
        "cluster" => {
            let nodes = value
                .get("nodes")
                .and_then(JsonValue::as_usize)
                .ok_or_else(|| {
                    invalid("topology kind \"cluster\" needs a positive integer \"nodes\"")
                })?;
            if nodes == 0 {
                return Err(invalid(
                    "topology kind \"cluster\" needs a positive integer \"nodes\"",
                ));
            }
            Ok(Topology::Cluster { nodes })
        }
        other => Err(invalid(format!(
            "unknown topology kind \"{other}\"; valid kinds are: cluster, single"
        ))),
    }
}

fn parse_tenants(value: &JsonValue) -> Result<TenantMix, SweepError> {
    let lc_arr = value
        .get("lc")
        .and_then(JsonValue::as_array)
        .ok_or_else(|| invalid("scenario field \"tenants\" needs a non-empty \"lc\" array"))?;
    if lc_arr.is_empty() {
        return Err(invalid(
            "scenario field \"tenants\" needs a non-empty \"lc\" array",
        ));
    }
    let mut lc = Vec::new();
    for entry in lc_arr {
        let name = entry
            .get("service")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| invalid("an \"lc\" tenant needs a string \"service\""))?;
        let service = latency::service_by_name(name).ok_or_else(|| {
            let mut names: Vec<&str> = latency::services().iter().map(|s| s.name).collect();
            names.sort_unstable();
            invalid(format!(
                "unknown service \"{name}\"; valid services are: {}",
                sorted_list(&names)
            ))
        })?;
        let load = match entry.get("load") {
            None => 0.8,
            Some(v) => v
                .as_f64()
                .ok_or_else(|| invalid("an \"lc\" tenant field \"load\" must be a number"))?,
        };
        let cores = match entry.get("cores") {
            None => 16,
            Some(v) => v.as_usize().ok_or_else(|| {
                invalid("an \"lc\" tenant field \"cores\" must be a positive integer")
            })?,
        };
        let qos_ms = match entry.get("qos_ms") {
            None => None,
            Some(v) => Some(
                v.as_f64()
                    .ok_or_else(|| invalid("an \"lc\" tenant field \"qos_ms\" must be a number"))?,
            ),
        };
        lc.push(LcTenantSpec {
            service,
            load,
            cores,
            qos_ms,
        });
    }
    let batch = match value.get("batch") {
        None => 0,
        Some(v) => v.as_usize().ok_or_else(|| {
            invalid("scenario field \"tenants\" field \"batch\" must be a non-negative integer")
        })?,
    };
    let mix_seed = match value.get("mix_seed") {
        None => 0xC0FFEE,
        Some(v) => v.as_usize().ok_or_else(|| {
            invalid("scenario field \"tenants\" field \"mix_seed\" must be a non-negative integer")
        })? as u64,
    };
    Ok(TenantMix {
        lc,
        batch,
        mix_seed,
    })
}

fn parse_profiles(
    value: Option<&JsonValue>,
    field: &str,
    what: &str,
    valid: &[&str],
) -> Result<Vec<String>, SweepError> {
    let Some(value) = value else {
        return Ok(vec!["clean".to_string()]);
    };
    let items = value.get_arr_or(field)?;
    let mut out = Vec::new();
    for item in items {
        let name = item.as_str().ok_or_else(|| {
            invalid(format!(
                "scenario field \"{field}\" must be an array of strings"
            ))
        })?;
        if !valid.contains(&name) {
            return Err(invalid(format!(
                "unknown {what} \"{name}\"; valid profiles are: {}",
                sorted_list(valid)
            )));
        }
        out.push(name.to_string());
    }
    if out.is_empty() {
        return Err(invalid(format!(
            "scenario field \"{field}\" must be a non-empty array"
        )));
    }
    Ok(out)
}

trait JsonFieldExt {
    fn get_arr_or(&self, field: &str) -> Result<&[JsonValue], SweepError>;
}

impl JsonFieldExt for JsonValue {
    fn get_arr_or(&self, field: &str) -> Result<&[JsonValue], SweepError> {
        self.as_array()
            .ok_or_else(|| invalid(format!("scenario field \"{field}\" must be an array")))
    }
}

fn apply_overrides(value: &JsonValue, overrides: &mut Overrides) -> Result<(), SweepError> {
    let entries = value
        .entries()
        .ok_or_else(|| invalid("scenario field \"overrides\" must be an object"))?;
    for (key, v) in entries {
        let as_bool = || {
            v.as_bool()
                .ok_or_else(|| invalid(format!("override \"{key}\" must be a boolean")))
        };
        let as_count = || {
            v.as_usize().ok_or_else(|| {
                invalid(format!("override \"{key}\" must be a non-negative integer"))
            })
        };
        let as_num = || {
            v.as_f64()
                .ok_or_else(|| invalid(format!("override \"{key}\" must be a number")))
        };
        match key.as_str() {
            "perf.pool_threads" => overrides.perf.pool_threads = as_count()?,
            "perf.warm_start" => overrides.perf = overrides.perf.with_warm_start(as_bool()?),
            "perf.evaluation_cache" => overrides.perf.evaluation_cache = as_bool()?,
            "resilience.deadline_ms" => overrides.resilience.deadline_ms = as_num()?,
            "resilience.staleness_bound" => overrides.resilience.staleness_bound = as_count()?,
            "resilience.breaker_open_after" => {
                overrides.resilience.breaker_open_after = as_count()?
            }
            "resilience.breaker_probe_interval" => {
                overrides.resilience.breaker_probe_interval = as_count()?
            }
            "resilience.breaker_close_after" => {
                overrides.resilience.breaker_close_after = as_count()?
            }
            "resilience.max_bips" => overrides.resilience.max_bips = as_num()?,
            "resilience.max_watts" => overrides.resilience.max_watts = as_num()?,
            "resilience.max_tail_ms" => overrides.resilience.max_tail_ms = as_num()?,
            other => {
                return Err(invalid(format!(
                    "unknown override key \"{other}\"; valid keys are: {}",
                    sorted_list(OVERRIDE_KEYS)
                )))
            }
        }
    }
    Ok(())
}

fn apply_detectors(
    value: &JsonValue,
    thresholds: &mut DetectorThresholds,
) -> Result<(), SweepError> {
    let entries = value
        .entries()
        .ok_or_else(|| invalid("scenario field \"detectors\" must be an object"))?;
    for (key, v) in entries {
        let as_count = || {
            v.as_usize().ok_or_else(|| {
                invalid(format!(
                    "detector \"{key}\" threshold must be a non-negative integer"
                ))
            })
        };
        let as_frac = || {
            v.as_f64()
                .ok_or_else(|| invalid(format!("detector \"{key}\" threshold must be a number")))
        };
        match key.as_str() {
            "qos_violation_streak" => thresholds.qos_violation_streak = as_count()?,
            "safe_mode_residency" => thresholds.safe_mode_residency = as_frac()?,
            "degraded_residency" => thresholds.degraded_residency = as_frac()?,
            "throughput_cliff" => thresholds.throughput_cliff = as_frac()?,
            "displaced_persistence" => thresholds.displaced_persistence = as_count()?,
            "tenant_loss" => thresholds.tenant_loss = as_count()?,
            other => {
                return Err(invalid(format!(
                    "unknown detector \"{other}\"; valid detectors are: {}",
                    sorted_list(DETECTOR_NAMES)
                )))
            }
        }
    }
    Ok(())
}

/// Parses and validates a scenario file.
///
/// # Errors
///
/// Returns a [`SweepError`] on malformed JSON or any schema violation —
/// unknown fields, keys, profiles, services, or shapes are all hard
/// errors listing the valid vocabulary.
pub fn load_spec(text: &str) -> Result<SweepSpec, SweepError> {
    let doc = json::parse(text).map_err(SweepError::Json)?;
    let fields = doc
        .entries()
        .ok_or_else(|| invalid("a scenario file must be a JSON object"))?;
    for (key, _) in fields {
        if !SPEC_FIELDS.contains(&key.as_str()) {
            return Err(invalid(format!(
                "unknown scenario field \"{key}\"; valid fields are: {}",
                sorted_list(SPEC_FIELDS)
            )));
        }
    }
    let name = doc
        .get("name")
        .and_then(JsonValue::as_str)
        .ok_or_else(|| invalid("scenario is missing required string field \"name\""))?
        .to_string();
    let quanta = field_usize(&doc, "quanta", "a positive integer")?;
    if quanta == 0 {
        return Err(invalid(
            "scenario field \"quanta\" must be a positive integer",
        ));
    }
    let seeds = parse_seeds(
        doc.get("seeds")
            .ok_or_else(|| invalid("scenario is missing required field \"seeds\""))?,
    )?;
    let topology = parse_topology(doc.get("topology"))?;
    let tenants = parse_tenants(
        doc.get("tenants")
            .ok_or_else(|| invalid("scenario is missing required field \"tenants\""))?,
    )?;
    let load_shapes = match doc.get("load_shapes") {
        None => vec![LoadShape::Steady],
        Some(v) => {
            let items = v.get_arr_or("load_shapes")?;
            if items.is_empty() {
                return Err(invalid(
                    "scenario field \"load_shapes\" must be a non-empty array",
                ));
            }
            items.iter().map(parse_shape).collect::<Result<_, _>>()?
        }
    };
    let caps = match doc.get("caps") {
        None => vec![0.7],
        Some(v) => {
            let items = v.get_arr_or("caps")?;
            if items.is_empty() {
                return Err(invalid("scenario field \"caps\" must be a non-empty array"));
            }
            items
                .iter()
                .map(|c| {
                    c.as_f64().filter(|c| *c > 0.0).ok_or_else(|| {
                        invalid("scenario field \"caps\" must contain positive numbers")
                    })
                })
                .collect::<Result<_, _>>()?
        }
    };
    let fault_profiles = parse_profiles(
        doc.get("fault_profiles"),
        "fault_profiles",
        "fault profile",
        FAULT_PROFILES,
    )?;
    let fleet_fault_profiles = parse_profiles(
        doc.get("fleet_fault_profiles"),
        "fleet_fault_profiles",
        "fleet fault profile",
        FLEET_FAULT_PROFILES,
    )?;
    if doc.get("fleet_fault_profiles").is_some() && topology == Topology::SingleNode {
        return Err(invalid(
            "\"fleet_fault_profiles\" requires a cluster topology",
        ));
    }
    let noise = match doc.get("noise") {
        None => 0.03,
        Some(_) => field_f64(&doc, "noise")?,
    };
    let phases = match doc.get("phases") {
        None => true,
        Some(v) => v
            .as_bool()
            .ok_or_else(|| invalid("scenario field \"phases\" must be a boolean"))?,
    };
    let mut overrides = Overrides::default();
    if let Some(v) = doc.get("overrides") {
        apply_overrides(v, &mut overrides)?;
    }
    let mut detectors = DetectorThresholds::default();
    if let Some(v) = doc.get("detectors") {
        apply_detectors(v, &mut detectors)?;
    }
    Ok(SweepSpec {
        name,
        quanta,
        seeds,
        topology,
        tenants,
        load_shapes,
        caps,
        fault_profiles,
        fleet_fault_profiles,
        noise,
        phases,
        overrides,
        detectors,
    })
}
