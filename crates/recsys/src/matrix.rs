//! Rating matrices: sparse observations in, dense completions out.

use serde::{Deserialize, Serialize};

/// A partially observed job × configuration rating matrix.
///
/// Rows are applications (known training applications plus the currently
/// running jobs), columns are resource configurations. Entries are `None`
/// until observed through offline characterization, online profiling, or a
/// previous steady state.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RatingMatrix {
    rows: usize,
    cols: usize,
    data: Vec<Option<f64>>,
}

impl RatingMatrix {
    /// Creates an empty `rows × cols` matrix.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(rows: usize, cols: usize) -> RatingMatrix {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be positive");
        RatingMatrix {
            rows,
            cols,
            data: vec![None; rows * cols],
        }
    }

    /// Number of rows (applications).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns (configurations).
    pub fn cols(&self) -> usize {
        self.cols
    }

    #[inline]
    fn idx(&self, r: usize, c: usize) -> usize {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r}, {c}) out of bounds"
        );
        r * self.cols + c
    }

    /// The observed value at `(r, c)`, if any.
    pub fn get(&self, r: usize, c: usize) -> Option<f64> {
        self.data[self.idx(r, c)]
    }

    /// Records an observation.
    ///
    /// # Panics
    ///
    /// Panics if `value` is not finite — ratings feed gradient descent.
    pub fn set(&mut self, r: usize, c: usize, value: f64) {
        assert!(
            value.is_finite(),
            "rating at ({r}, {c}) must be finite, got {value}"
        );
        let i = self.idx(r, c);
        self.data[i] = Some(value);
    }

    /// Clears an observation (used in leave-one-out accuracy tests).
    pub fn clear(&mut self, r: usize, c: usize) {
        let i = self.idx(r, c);
        self.data[i] = None;
    }

    /// Fills an entire row from a slice (offline-characterized known apps).
    ///
    /// # Panics
    ///
    /// Panics if `values.len() != cols`.
    pub fn fill_row(&mut self, r: usize, values: &[f64]) {
        assert_eq!(values.len(), self.cols, "row length mismatch");
        for (c, v) in values.iter().enumerate() {
            self.set(r, c, *v);
        }
    }

    /// Number of observed entries.
    pub fn observed_len(&self) -> usize {
        self.data.iter().filter(|v| v.is_some()).count()
    }

    /// Number of observed entries in row `r`.
    pub fn row_observed_len(&self, r: usize) -> usize {
        (0..self.cols).filter(|&c| self.get(r, c).is_some()).count()
    }

    /// Iterates over observed `(row, col, value)` triples in row-major
    /// order.
    pub fn observed(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        self.data
            .iter()
            .enumerate()
            .filter_map(move |(i, v)| v.map(|v| (i / self.cols, i % self.cols, v)))
    }

    /// Mean of the observed entries in row `r`, or the global observed mean
    /// for empty rows, or 0 for an empty matrix.
    pub fn row_mean(&self, r: usize) -> f64 {
        let (sum, n) = (0..self.cols)
            .filter_map(|c| self.get(r, c))
            .fold((0.0, 0usize), |(s, n), v| (s + v, n + 1));
        if n > 0 {
            sum / n as f64
        } else {
            self.global_mean()
        }
    }

    /// Mean of all observed entries (0 if none).
    pub fn global_mean(&self) -> f64 {
        let (sum, n) = self
            .observed()
            .fold((0.0, 0usize), |(s, n), (_, _, v)| (s + v, n + 1));
        if n > 0 {
            sum / n as f64
        } else {
            0.0
        }
    }

    /// Minimum and maximum observed values, if any entry is observed.
    pub fn observed_range(&self) -> Option<(f64, f64)> {
        let mut range: Option<(f64, f64)> = None;
        for (_, _, v) in self.observed() {
            range = Some(match range {
                None => (v, v),
                Some((lo, hi)) => (lo.min(v), hi.max(v)),
            });
        }
        range
    }

    /// Applies `f` to every observed entry, returning a new matrix (used for
    /// value transforms such as `ln`).
    pub fn map(&self, mut f: impl FnMut(f64) -> f64) -> RatingMatrix {
        let mut out = RatingMatrix::new(self.rows, self.cols);
        for (r, c, v) in self.observed() {
            out.set(r, c, f(v));
        }
        out
    }

    /// Dense copy with missing entries imputed by row means (SVD
    /// initialization input).
    pub fn impute_row_means(&self) -> DenseMatrix {
        let mut out = DenseMatrix::zeros(self.rows, self.cols);
        for r in 0..self.rows {
            let mean = self.row_mean(r);
            for c in 0..self.cols {
                out.set(r, c, self.get(r, c).unwrap_or(mean));
            }
        }
        out
    }
}

/// A dense row-major matrix of `f64`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DenseMatrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl DenseMatrix {
    /// Creates a zero matrix.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn zeros(rows: usize, cols: usize) -> DenseMatrix {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be positive");
        DenseMatrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a matrix from a row-major data vector.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> DenseMatrix {
        assert_eq!(data.len(), rows * cols, "data length mismatch");
        DenseMatrix { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Value at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn get(&self, r: usize, c: usize) -> f64 {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r}, {c}) out of bounds"
        );
        self.data[r * self.cols + c]
    }

    /// Sets the value at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r}, {c}) out of bounds"
        );
        self.data[r * self.cols + c] = v;
    }

    /// Borrows row `r` as a slice.
    pub fn row(&self, r: usize) -> &[f64] {
        assert!(r < self.rows, "row {r} out of bounds");
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutably borrows row `r`.
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        assert!(r < self.rows, "row {r} out of bounds");
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// The raw row-major data.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Applies `f` element-wise in place.
    pub fn map_in_place(&mut self, mut f: impl FnMut(f64) -> f64) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// Matrix product `self · rhsᵀ` where both matrices share the inner
    /// (column) dimension — the PQ-reconstruction shape `Q · Pᵀ`.
    ///
    /// # Panics
    ///
    /// Panics if the inner dimensions disagree.
    pub fn mul_transpose(&self, rhs: &DenseMatrix) -> DenseMatrix {
        assert_eq!(self.cols, rhs.cols, "inner dimension mismatch");
        let mut out = DenseMatrix::zeros(self.rows, rhs.rows);
        for i in 0..self.rows {
            for j in 0..rhs.rows {
                let dot: f64 = self.row(i).iter().zip(rhs.row(j)).map(|(a, b)| a * b).sum();
                out.set(i, j, dot);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_clear_roundtrip() {
        let mut m = RatingMatrix::new(3, 4);
        assert_eq!(m.get(1, 2), None);
        m.set(1, 2, 5.0);
        assert_eq!(m.get(1, 2), Some(5.0));
        m.clear(1, 2);
        assert_eq!(m.get(1, 2), None);
    }

    #[test]
    fn observed_iteration_and_counts() {
        let mut m = RatingMatrix::new(2, 3);
        m.set(0, 0, 1.0);
        m.set(1, 2, 2.0);
        assert_eq!(m.observed_len(), 2);
        assert_eq!(m.row_observed_len(0), 1);
        let triples: Vec<_> = m.observed().collect();
        assert_eq!(triples, vec![(0, 0, 1.0), (1, 2, 2.0)]);
    }

    #[test]
    fn means_and_range() {
        let mut m = RatingMatrix::new(2, 2);
        m.set(0, 0, 2.0);
        m.set(0, 1, 4.0);
        assert_eq!(m.row_mean(0), 3.0);
        // Empty row falls back to global mean.
        assert_eq!(m.row_mean(1), 3.0);
        assert_eq!(m.observed_range(), Some((2.0, 4.0)));
        assert_eq!(RatingMatrix::new(1, 1).observed_range(), None);
    }

    #[test]
    fn fill_row_and_impute() {
        let mut m = RatingMatrix::new(2, 3);
        m.fill_row(0, &[1.0, 2.0, 3.0]);
        m.set(1, 0, 10.0);
        let d = m.impute_row_means();
        assert_eq!(d.get(0, 1), 2.0);
        assert_eq!(d.get(1, 1), 10.0); // row mean of the single observation
    }

    #[test]
    fn map_transforms_observed_only() {
        let mut m = RatingMatrix::new(1, 3);
        m.set(0, 0, 1.0);
        let t = m.map(|v| v * 2.0);
        assert_eq!(t.get(0, 0), Some(2.0));
        assert_eq!(t.get(0, 1), None);
    }

    #[test]
    #[should_panic(expected = "must be finite")]
    fn non_finite_rating_rejected() {
        let mut m = RatingMatrix::new(1, 1);
        m.set(0, 0, f64::INFINITY);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn rating_oob_panics() {
        let m = RatingMatrix::new(2, 2);
        let _ = m.get(2, 0);
    }

    #[test]
    fn dense_rows_and_product() {
        // Q is 2×2, P is 3×2; Q·Pᵀ is 2×3.
        let q = DenseMatrix::from_vec(2, 2, vec![1.0, 0.0, 0.0, 1.0]);
        let p = DenseMatrix::from_vec(3, 2, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let r = q.mul_transpose(&p);
        assert_eq!(r.rows(), 2);
        assert_eq!(r.cols(), 3);
        assert_eq!(r.get(0, 0), 1.0);
        assert_eq!(r.get(1, 2), 6.0);
        assert_eq!(r.row(0), &[1.0, 3.0, 5.0]);
    }

    #[test]
    fn dense_map_in_place() {
        let mut d = DenseMatrix::from_vec(1, 2, vec![1.0, 2.0]);
        d.map_in_place(|v| v + 1.0);
        assert_eq!(d.as_slice(), &[2.0, 3.0]);
    }
}
