//! The three-matrix reconstruction driver.
//!
//! Every decision interval the Resource Controller runs three reconstructions
//! — throughput for batch jobs, tail latency for the latency-critical
//! service, and power for every job — in parallel (§V). This module wraps
//! the SGD machinery with the value transforms and observed-entry overlays
//! that make the raw algorithm usable on real measurements:
//!
//! * throughput and power are reconstructed in linear space;
//! * tail latency spans orders of magnitude (saturated configurations are
//!   reported with enormous latencies), so it is reconstructed in log space;
//! * observed entries always pass through exactly — SGD only fills holes.

use serde::{Deserialize, Serialize};
use util::WorkerPool;

use crate::hogwild;
use crate::matrix::{DenseMatrix, RatingMatrix};
use crate::sgd::{self, SgdConfig, SgdModel, WarmStartConfig};

/// Value-space transform applied before SGD and inverted afterwards.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ValueTransform {
    /// Fit ratings as-is.
    Linear,
    /// Fit `ln(value)`; appropriate for heavy-tailed metrics such as p99
    /// latency. Values must be positive.
    Log,
}

impl ValueTransform {
    fn forward(self, v: f64) -> f64 {
        match self {
            ValueTransform::Linear => v,
            ValueTransform::Log => v.max(1e-12).ln(),
        }
    }

    fn inverse(self, v: f64) -> f64 {
        match self {
            ValueTransform::Linear => v,
            ValueTransform::Log => v.exp(),
        }
    }
}

/// Matrix-completion driver combining SGD, transforms, and overlays.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Reconstructor {
    /// SGD hyper-parameters.
    pub config: SgdConfig,
    /// Worker threads for the lock-free parallel SGD (1 = serial Alg. 1).
    pub threads: usize,
}

impl Default for Reconstructor {
    fn default() -> Self {
        Reconstructor {
            config: SgdConfig::default(),
            threads: 1,
        }
    }
}

impl Reconstructor {
    /// Creates a driver with the given SGD configuration, serial execution.
    pub fn new(config: SgdConfig) -> Reconstructor {
        Reconstructor { config, threads: 1 }
    }

    /// Switches to the lock-free parallel SGD with `threads` workers.
    pub fn parallel(mut self, threads: usize) -> Reconstructor {
        self.threads = threads;
        self
    }

    /// Completes the matrix: missing entries are inferred, observed entries
    /// pass through unchanged, and predictions are clamped to a moderately
    /// widened observed range (low-rank extrapolation far outside the
    /// training range is never trustworthy).
    ///
    /// # Panics
    ///
    /// Panics if the matrix has no observed entries.
    pub fn complete(&self, matrix: &RatingMatrix, transform: ValueTransform) -> DenseMatrix {
        self.complete_session(None, matrix, transform, None).dense
    }

    /// [`Reconstructor::complete`] with session state: an optional worker
    /// pool for the parallel solver and an optional `(schedule, prior)` pair
    /// to warm-start from the previous quantum's fitted model.
    ///
    /// The returned [`Completion`] carries the fitted model (in *transformed*
    /// space) so the caller can feed it back as the prior next quantum. Warm
    /// starting silently falls back to a cold fit when the prior's shape no
    /// longer matches the matrix — `Completion::warm_started` reports what
    /// actually happened. With `pool = None` and `warm = None` this is
    /// bit-identical to [`Reconstructor::complete`].
    ///
    /// # Panics
    ///
    /// Panics if the matrix has no observed entries.
    pub fn complete_session(
        &self,
        pool: Option<&WorkerPool>,
        matrix: &RatingMatrix,
        transform: ValueTransform,
        warm: Option<(&WarmStartConfig, &SgdModel)>,
    ) -> Completion {
        let transformed = matrix.map(|v| transform.forward(v));
        let warm_model =
            warm.and_then(|(cfg, prior)| sgd::fit_warm(&transformed, &self.config, cfg, prior));
        let warm_started = warm_model.is_some();
        let model = warm_model.unwrap_or_else(|| {
            if self.threads > 1 {
                hogwild::fit_parallel_in(pool, &transformed, &self.config, self.threads)
            } else {
                sgd::fit(&transformed, &self.config)
            }
        });
        let (lo, hi) = transformed
            .observed_range()
            // lint:allow(PANIC-POLICY, reason = "the profiling stage never hands reconstruction an empty matrix (it seeds probe samples first); an empty one is a pipeline-ordering bug worth crashing on")
            .expect("matrix has observations");
        let span = (hi - lo).max(1e-9);
        let (clamp_lo, clamp_hi) = (lo - 0.25 * span, hi + 0.25 * span);
        let mut out = DenseMatrix::zeros(matrix.rows(), matrix.cols());
        for r in 0..matrix.rows() {
            for c in 0..matrix.cols() {
                let value = match matrix.get(r, c) {
                    Some(v) => v,
                    None => transform.inverse(model.predict(r, c).clamp(clamp_lo, clamp_hi)),
                };
                out.set(r, c, value);
            }
        }
        Completion {
            dense: out,
            model,
            warm_started,
        }
    }

    /// Runs several reconstructions concurrently — one OS thread per matrix,
    /// mirroring the paper's "three reconstructions all run in parallel on
    /// the same server".
    pub fn complete_all(&self, inputs: &[(&RatingMatrix, ValueTransform)]) -> Vec<DenseMatrix> {
        // lint:allow(DET-RAW-SPAWN, reason = "pool-less public entry point predating the WorkerPool; kept as the reference back-end, results correspond by input index")
        crossbeam::scope(|scope| {
            let handles: Vec<_> = inputs
                .iter()
                .map(|(m, t)| {
                    let this = *self;
                    let t = *t;
                    scope.spawn(move |_| this.complete(m, t))
                })
                .collect();
            handles
                .into_iter()
                // lint:allow(PANIC-POLICY, reason = "a reconstruction panic re-surfaces on the caller thread for the circuit breaker")
                .map(|h| h.join().expect("reconstruction panicked"))
                .collect()
        })
        // lint:allow(PANIC-POLICY, reason = "a reconstruction panic re-surfaces on the caller thread for the circuit breaker")
        .expect("reconstruction scope panicked")
    }

    /// [`Reconstructor::complete_all`] with session state: the per-matrix
    /// fan-out runs on the pool when one is given (falling back to scoped OS
    /// threads otherwise), and each matrix may carry its own warm-start
    /// prior. Inputs and outputs correspond by index.
    pub fn complete_all_session(
        &self,
        pool: Option<&WorkerPool>,
        inputs: &[SessionInput<'_>],
    ) -> Vec<Completion> {
        let mut slots: Vec<Option<Completion>> = (0..inputs.len()).map(|_| None).collect();
        match pool {
            Some(pool) => pool.scope(|scope| {
                for (slot, input) in slots.iter_mut().zip(inputs) {
                    scope.spawn(move || {
                        *slot = Some(self.complete_session(
                            Some(pool),
                            input.matrix,
                            input.transform,
                            input.warm,
                        ));
                    });
                }
            }),
            // lint:allow(DET-RAW-SPAWN, reason = "pool-less fallback back-end for callers without a WorkerPool; slots correspond by input index either way")
            None => crossbeam::scope(|scope| {
                for (slot, input) in slots.iter_mut().zip(inputs) {
                    scope.spawn(move |_| {
                        *slot = Some(self.complete_session(
                            None,
                            input.matrix,
                            input.transform,
                            input.warm,
                        ));
                    });
                }
            })
            // lint:allow(PANIC-POLICY, reason = "a reconstruction panic re-surfaces on the caller thread for the circuit breaker")
            .expect("reconstruction scope panicked"),
        }
        slots
            .into_iter()
            // lint:allow(PANIC-POLICY, reason = "both scopes joined before this point, so every slot was written; a None is a fan-out bug worth crashing on")
            .map(|s| s.expect("every reconstruction slot filled"))
            .collect()
    }
}

/// One matrix of a [`Reconstructor::complete_all_session`] batch.
pub struct SessionInput<'a> {
    /// The sparse observations to complete.
    pub matrix: &'a RatingMatrix,
    /// Value-space transform for this matrix.
    pub transform: ValueTransform,
    /// Optional warm-start schedule and prior model (transformed space).
    pub warm: Option<(&'a WarmStartConfig, &'a SgdModel)>,
}

/// The result of one session-aware completion.
pub struct Completion {
    /// The completed dense matrix (observed entries passed through).
    pub dense: DenseMatrix,
    /// The fitted model, in transformed space — next quantum's warm prior.
    pub model: SgdModel,
    /// Whether the fit actually started from the supplied prior.
    pub warm_started: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn structured(
        rows: usize,
        cols: usize,
        known: usize,
        samples: usize,
    ) -> (Vec<f64>, RatingMatrix) {
        // Multiplicative app-scale × config-effect structure plus a small
        // interaction — the shape performance matrices actually have.
        let truth: Vec<f64> = (0..rows * cols)
            .map(|i| {
                let (r, c) = (i / cols, i % cols);
                let app_scale = 1.0 + 0.3 * (r as f64 * 0.7).sin();
                let config_effect = 2.0 + (c as f64 * 0.25).cos();
                app_scale * config_effect + 0.15 * (r as f64 * 0.5).sin() * (c as f64 * 0.3).cos()
            })
            .collect();
        let mut m = RatingMatrix::new(rows, cols);
        for r in 0..known {
            for c in 0..cols {
                m.set(r, c, truth[r * cols + c]);
            }
        }
        for r in known..rows {
            for s in 0..samples {
                let c = (s * cols / samples + r) % cols;
                m.set(r, c, truth[r * cols + c]);
            }
        }
        (truth, m)
    }

    #[test]
    #[cfg_attr(miri, ignore)] // training/fit loop; intractable under Miri (DESIGN.md §8)
    fn observed_entries_pass_through_exactly() {
        let (_, m) = structured(10, 12, 8, 2);
        let out = Reconstructor::default().complete(&m, ValueTransform::Linear);
        for (r, c, v) in m.observed() {
            assert_eq!(out.get(r, c), v);
        }
    }

    #[test]
    #[cfg_attr(miri, ignore)] // training/fit loop; intractable under Miri (DESIGN.md §8)
    fn completion_recovers_structure() {
        let (truth, m) = structured(16, 20, 13, 2);
        let out = Reconstructor::default().complete(&m, ValueTransform::Linear);
        for r in 13..16 {
            for c in 0..20 {
                let t = truth[r * 20 + c];
                let rel = (out.get(r, c) - t).abs() / t;
                assert!(rel < 0.25, "({r},{c}): rel err {rel}");
            }
        }
    }

    #[test]
    #[cfg_attr(miri, ignore)] // training/fit loop; intractable under Miri (DESIGN.md §8)
    fn log_transform_handles_wide_ranges() {
        // Latency-like data spanning 4 orders of magnitude.
        let rows = 10;
        let cols = 12;
        let truth =
            |r: usize, c: usize| 0.5 * 10f64.powf(3.0 * c as f64 / cols as f64 + 0.05 * r as f64);
        let mut m = RatingMatrix::new(rows, cols);
        for r in 0..8 {
            for c in 0..cols {
                m.set(r, c, truth(r, c));
            }
        }
        for (r, c) in [(8, 0), (8, 11), (9, 0), (9, 11)] {
            m.set(r, c, truth(r, c));
        }
        let out = Reconstructor::default().complete(&m, ValueTransform::Log);
        for r in 8..10 {
            for c in 0..cols {
                let t = truth(r, c);
                let ratio = out.get(r, c) / t;
                assert!((0.5..2.0).contains(&ratio), "({r},{c}): ratio {ratio}");
            }
        }
    }

    #[test]
    #[cfg_attr(miri, ignore)] // training/fit loop; intractable under Miri (DESIGN.md §8)
    fn predictions_are_clamped_to_plausible_range() {
        let (_, m) = structured(10, 12, 8, 2);
        let out = Reconstructor::default().complete(&m, ValueTransform::Linear);
        let (lo, hi) = m.observed_range().unwrap();
        let span = hi - lo;
        for r in 0..10 {
            for c in 0..12 {
                let v = out.get(r, c);
                assert!(v >= lo - 0.26 * span && v <= hi + 0.26 * span);
            }
        }
    }

    #[test]
    #[cfg_attr(miri, ignore)] // training/fit loop; intractable under Miri (DESIGN.md §8)
    fn complete_all_runs_multiple_matrices() {
        let (_, m1) = structured(8, 10, 6, 2);
        let (_, m2) = structured(8, 10, 7, 3);
        let rec = Reconstructor::default();
        let outs = rec.complete_all(&[(&m1, ValueTransform::Linear), (&m2, ValueTransform::Log)]);
        assert_eq!(outs.len(), 2);
        assert_eq!(outs[0].rows(), 8);
        // Concurrent result must equal the sequential result.
        assert_eq!(outs[0], rec.complete(&m1, ValueTransform::Linear));
    }

    #[test]
    #[cfg_attr(miri, ignore)] // training/fit loop; intractable under Miri (DESIGN.md §8)
    fn session_completion_without_warm_state_matches_plain_complete() {
        let (_, m) = structured(10, 12, 8, 2);
        let rec = Reconstructor::default();
        let plain = rec.complete(&m, ValueTransform::Linear);
        let pool = WorkerPool::new(2);
        let session = rec.complete_session(Some(&pool), &m, ValueTransform::Linear, None);
        assert_eq!(session.dense, plain);
        assert!(!session.warm_started);
    }

    #[test]
    #[cfg_attr(miri, ignore)] // training/fit loop; intractable under Miri (DESIGN.md §8)
    fn warm_session_reuses_the_prior_model() {
        let (_, m) = structured(16, 20, 13, 2);
        let rec = Reconstructor::default();
        let first = rec.complete_session(None, &m, ValueTransform::Linear, None);
        assert!(!first.warm_started);
        let warm_cfg = WarmStartConfig::default();
        let second = rec.complete_session(
            None,
            &m,
            ValueTransform::Linear,
            Some((&warm_cfg, &first.model)),
        );
        assert!(second.warm_started);
        assert!(second.model.epochs <= warm_cfg.max_epochs);
        // Same observations, warm factors: the refit keeps the fit quality.
        assert!(second.model.train_rmse <= first.model.train_rmse + 0.01);
    }

    #[test]
    #[cfg_attr(miri, ignore)] // training/fit loop; intractable under Miri (DESIGN.md §8)
    fn complete_all_session_matches_complete_all() {
        let (_, m1) = structured(8, 10, 6, 2);
        let (_, m2) = structured(8, 10, 7, 3);
        let rec = Reconstructor::default();
        let plain = rec.complete_all(&[(&m1, ValueTransform::Linear), (&m2, ValueTransform::Log)]);
        let pool = WorkerPool::new(2);
        let session = rec.complete_all_session(
            Some(&pool),
            &[
                SessionInput {
                    matrix: &m1,
                    transform: ValueTransform::Linear,
                    warm: None,
                },
                SessionInput {
                    matrix: &m2,
                    transform: ValueTransform::Log,
                    warm: None,
                },
            ],
        );
        assert_eq!(session.len(), 2);
        assert_eq!(session[0].dense, plain[0]);
        assert_eq!(session[1].dense, plain[1]);
    }

    #[test]
    #[cfg_attr(miri, ignore)] // training/fit loop; intractable under Miri (DESIGN.md §8)
    fn parallel_reconstructor_completes() {
        let (_, m) = structured(16, 24, 13, 2);
        let out = Reconstructor::default()
            .parallel(4)
            .complete(&m, ValueTransform::Linear);
        assert_eq!(out.rows(), 16);
        for (r, c, v) in m.observed() {
            assert_eq!(out.get(r, c), v);
        }
    }
}
