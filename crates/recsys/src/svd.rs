//! Truncated SVD by power iteration with deflation.
//!
//! Alg. 1 of the paper constructs the initial `P` and `Q` factors from a
//! singular value decomposition of the (mean-imputed) rating matrix:
//! `Q = U·√Σ` and `Pᵀ = √Σ·Vᵀ`, so that `Q·Pᵀ` starts close to the imputed
//! matrix before SGD refines the observed entries. The matrices involved are
//! tiny (tens of applications × 108 configurations), so simple power
//! iteration on `AᵀA` with deflation is accurate and fast.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::matrix::DenseMatrix;

/// A truncated singular value decomposition `A ≈ U·diag(σ)·Vᵀ`.
#[derive(Debug, Clone, PartialEq)]
pub struct TruncatedSvd {
    /// Left singular vectors, `rows × rank`.
    pub u: DenseMatrix,
    /// Singular values, length `rank`, non-increasing.
    pub sigma: Vec<f64>,
    /// Right singular vectors, `cols × rank`.
    pub v: DenseMatrix,
}

impl TruncatedSvd {
    /// Reconstructs the rank-truncated approximation of the original
    /// matrix.
    pub fn reconstruct(&self) -> DenseMatrix {
        let rank = self.sigma.len();
        let rows = self.u.rows();
        let cols = self.v.rows();
        let mut out = DenseMatrix::zeros(rows, cols);
        for i in 0..rows {
            for j in 0..cols {
                let mut acc = 0.0;
                for k in 0..rank {
                    acc += self.u.get(i, k) * self.sigma[k] * self.v.get(j, k);
                }
                out.set(i, j, acc);
            }
        }
        out
    }

    /// The PQ factor pair used to initialize Alg. 1: `Q = U·√Σ` (rows ×
    /// rank) and `P = V·√Σ` (cols × rank), so `Q·Pᵀ ≈ A`.
    pub fn pq_factors(&self) -> (DenseMatrix, DenseMatrix) {
        let rank = self.sigma.len();
        let mut q = DenseMatrix::zeros(self.u.rows(), rank);
        let mut p = DenseMatrix::zeros(self.v.rows(), rank);
        for k in 0..rank {
            let s = self.sigma[k].max(0.0).sqrt();
            for i in 0..self.u.rows() {
                q.set(i, k, self.u.get(i, k) * s);
            }
            for j in 0..self.v.rows() {
                p.set(j, k, self.v.get(j, k) * s);
            }
        }
        (q, p)
    }
}

fn mat_vec(a: &DenseMatrix, x: &[f64]) -> Vec<f64> {
    (0..a.rows())
        .map(|i| a.row(i).iter().zip(x).map(|(aij, xj)| aij * xj).sum())
        .collect()
}

#[allow(clippy::needless_range_loop)] // index-coupled numeric kernels read clearer indexed
fn mat_t_vec(a: &DenseMatrix, y: &[f64]) -> Vec<f64> {
    let mut out = vec![0.0; a.cols()];
    for i in 0..a.rows() {
        let yi = y[i];
        for (j, aij) in a.row(i).iter().enumerate() {
            out[j] += aij * yi;
        }
    }
    out
}

fn norm(x: &[f64]) -> f64 {
    x.iter().map(|v| v * v).sum::<f64>().sqrt()
}

/// Computes the top-`rank` singular triples of `a` by power iteration on
/// `AᵀA` with deflation.
///
/// `rank` is clamped to `min(rows, cols)`. `iters` power steps per singular
/// vector (40 is plenty for the well-separated spectra of performance
/// matrices). `seed` controls the random starting vectors.
///
/// # Panics
///
/// Panics if `rank == 0`.
#[allow(clippy::needless_range_loop)] // deflation updates index three buffers in lockstep
pub fn truncated_svd(a: &DenseMatrix, rank: usize, iters: usize, seed: u64) -> TruncatedSvd {
    assert!(rank > 0, "rank must be positive");
    let rank = rank.min(a.rows()).min(a.cols());
    let mut rng = StdRng::seed_from_u64(seed);
    let rows = a.rows();
    let cols = a.cols();
    let mut u = DenseMatrix::zeros(rows, rank);
    let mut v = DenseMatrix::zeros(cols, rank);
    let mut sigma = Vec::with_capacity(rank);
    // Deflated copy of A.
    let mut work = a.clone();
    for k in 0..rank {
        let mut x: Vec<f64> = (0..cols).map(|_| rng.random_range(-1.0..1.0)).collect();
        let n = norm(&x).max(f64::MIN_POSITIVE);
        x.iter_mut().for_each(|xi| *xi /= n);
        for _ in 0..iters {
            let y = mat_vec(&work, &x);
            let mut xn = mat_t_vec(&work, &y);
            let n = norm(&xn);
            if n < 1e-14 {
                break;
            }
            xn.iter_mut().for_each(|xi| *xi /= n);
            x = xn;
        }
        let y = mat_vec(&work, &x);
        let s = norm(&y);
        sigma.push(s);
        let uvec: Vec<f64> = if s > 1e-14 {
            y.iter().map(|yi| yi / s).collect()
        } else {
            vec![0.0; rows]
        };
        for i in 0..rows {
            u.set(i, k, uvec[i]);
        }
        for (j, xj) in x.iter().enumerate() {
            v.set(j, k, *xj);
        }
        // Deflate: A ← A − σ·u·vᵀ.
        for i in 0..rows {
            for j in 0..cols {
                let d = work.get(i, j) - s * uvec[i] * x[j];
                work.set(i, j, d);
            }
        }
    }
    TruncatedSvd { u, sigma, v }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frobenius_diff(a: &DenseMatrix, b: &DenseMatrix) -> f64 {
        let mut acc = 0.0;
        for i in 0..a.rows() {
            for j in 0..a.cols() {
                let d = a.get(i, j) - b.get(i, j);
                acc += d * d;
            }
        }
        acc.sqrt()
    }

    fn rank2_matrix() -> DenseMatrix {
        // A = u1·v1ᵀ·3 + u2·v2ᵀ, exactly rank 2.
        let rows = 6;
        let cols = 8;
        let mut a = DenseMatrix::zeros(rows, cols);
        for i in 0..rows {
            for j in 0..cols {
                let u1 = (i as f64 + 1.0).sin();
                let v1 = (j as f64 * 0.7).cos();
                let u2 = (i as f64 * 0.3).cos();
                let v2 = (j as f64 + 2.0).sin();
                a.set(i, j, 3.0 * u1 * v1 + u2 * v2);
            }
        }
        a
    }

    #[test]
    #[cfg_attr(miri, ignore)] // training/fit loop; intractable under Miri (DESIGN.md §8)
    fn exact_recovery_of_low_rank_matrix() {
        let a = rank2_matrix();
        let svd = truncated_svd(&a, 2, 60, 1);
        let err = frobenius_diff(&a, &svd.reconstruct());
        assert!(
            err < 1e-6,
            "rank-2 matrix should be exactly recovered, err = {err}"
        );
    }

    #[test]
    fn singular_values_non_increasing_and_positive() {
        let a = rank2_matrix();
        let svd = truncated_svd(&a, 4, 60, 2);
        for w in svd.sigma.windows(2) {
            assert!(
                w[0] >= w[1] - 1e-9,
                "sigma must be non-increasing: {:?}",
                svd.sigma
            );
        }
        assert!(svd.sigma[0] > 0.0);
        // Rank beyond the true rank collapses to ~0.
        assert!(svd.sigma[3] < 1e-6 * svd.sigma[0]);
    }

    #[test]
    fn pq_factors_reproduce_reconstruction() {
        let a = rank2_matrix();
        let svd = truncated_svd(&a, 2, 60, 3);
        let (q, p) = svd.pq_factors();
        let qp = q.mul_transpose(&p);
        let err = frobenius_diff(&qp, &svd.reconstruct());
        assert!(err < 1e-8);
    }

    #[test]
    fn rank_is_clamped_to_dimensions() {
        let a = DenseMatrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let svd = truncated_svd(&a, 10, 40, 4);
        assert_eq!(svd.sigma.len(), 2);
    }

    #[test]
    #[cfg_attr(miri, ignore)] // training/fit loop; intractable under Miri (DESIGN.md §8)
    fn deterministic_for_fixed_seed() {
        let a = rank2_matrix();
        let s1 = truncated_svd(&a, 2, 40, 7);
        let s2 = truncated_svd(&a, 2, 40, 7);
        assert_eq!(s1.sigma, s2.sigma);
    }
}
