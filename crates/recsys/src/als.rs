//! Alternating Least Squares — a deterministic alternative to Alg. 1.
//!
//! The paper commits to SGD ("PQ-reconstruction with Stochastic Gradient
//! Descent"); ALS is the other standard matrix-completion solver and makes
//! a natural ablation: it solves each row's (bias, factors) exactly by
//! ridge regression against the fixed column factors, then alternates. Per
//! sweep it costs more than an SGD epoch (a small linear solve per
//! row/column) but it converges in a handful of sweeps and has no learning
//! rate to tune. See `ablation_sgd` for the head-to-head.

use serde::{Deserialize, Serialize};

use crate::matrix::{DenseMatrix, RatingMatrix};
use crate::sgd::{initial_biases, initial_factors, SgdConfig, SgdModel};

/// Hyper-parameters for the ALS reconstruction.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AlsConfig {
    /// Latent factor rank.
    pub rank: usize,
    /// Ridge regularization λ.
    pub regularization: f64,
    /// Number of alternating sweeps (each sweep = rows pass + columns
    /// pass).
    pub sweeps: usize,
    /// Seed for the SVD initialization.
    pub seed: u64,
}

impl Default for AlsConfig {
    fn default() -> Self {
        AlsConfig {
            rank: 2,
            regularization: 0.02,
            sweeps: 8,
            seed: 0xA15,
        }
    }
}

/// Solves the `n×n` system `a·x = b` by Gaussian elimination with partial
/// pivoting (`a` row-major, consumed).
fn solve(mut a: Vec<f64>, mut b: Vec<f64>, n: usize) -> Vec<f64> {
    for col in 0..n {
        let pivot = (col..n)
            .max_by(|&r1, &r2| a[r1 * n + col].abs().total_cmp(&a[r2 * n + col].abs()))
            // lint:allow(PANIC-POLICY, reason = "col..n is non-empty by the loop bound col < n; an empty range here is a solver bug worth crashing on")
            .expect("non-empty system");
        if pivot != col {
            for k in 0..n {
                a.swap(col * n + k, pivot * n + k);
            }
            b.swap(col, pivot);
        }
        let diag = a[col * n + col];
        if diag.abs() < 1e-12 {
            continue; // ridge term should prevent this; skip defensively
        }
        for r in (col + 1)..n {
            let f = a[r * n + col] / diag;
            for k in col..n {
                a[r * n + k] -= f * a[col * n + k];
            }
            b[r] -= f * b[col];
        }
    }
    let mut x = vec![0.0; n];
    for r in (0..n).rev() {
        let mut acc = b[r];
        for k in (r + 1)..n {
            acc -= a[r * n + k] * x[k];
        }
        let diag = a[r * n + r];
        x[r] = if diag.abs() < 1e-12 { 0.0 } else { acc / diag };
    }
    x
}

/// One half-sweep: re-solve `(bias, factors)` for every row of `targets`
/// against the fixed `other` factors. With `transposed = false` it updates
/// row parameters from column factors; entries are `(this_index,
/// other_index, rating)`.
#[allow(clippy::too_many_arguments)] // one call site; a params struct would only rename these
fn solve_side(
    entries: &[(usize, usize, f64)],
    count: usize,
    rank: usize,
    mu: f64,
    bias: &mut [f64],
    factors: &mut DenseMatrix,
    other_bias: &[f64],
    other_factors: &DenseMatrix,
    lambda: f64,
) {
    let n = rank + 1; // [bias; factors]
                      // Group entries per target index.
    let mut grouped: Vec<Vec<(usize, f64)>> = vec![Vec::new(); count];
    for &(i, j, r) in entries {
        grouped[i].push((j, r));
    }
    for (i, obs) in grouped.iter().enumerate() {
        if obs.is_empty() {
            continue;
        }
        // Ridge normal equations over x = [b_i, q_i…]: features
        // z = [1, p_j…], target y = r − μ − c_j.
        let mut a = vec![0.0; n * n];
        let mut b = vec![0.0; n];
        for k in 0..n {
            a[k * n + k] = lambda * obs.len() as f64;
        }
        for &(j, r) in obs {
            let y = r - mu - other_bias[j];
            let mut z = Vec::with_capacity(n);
            z.push(1.0);
            z.extend_from_slice(other_factors.row(j));
            for (r1, &z1) in z.iter().enumerate() {
                b[r1] += z1 * y;
                for (r2, &z2) in z.iter().enumerate() {
                    a[r1 * n + r2] += z1 * z2;
                }
            }
        }
        let x = solve(a, b, n);
        bias[i] = x[0];
        for k in 0..rank {
            factors.set(i, k, x[1 + k]);
        }
    }
}

/// Fits the biased factorization by alternating least squares.
///
/// Returns the same [`SgdModel`] type as [`crate::sgd::fit`], so callers
/// (and the reconstruction driver) are solver-agnostic.
///
/// # Panics
///
/// Panics if the matrix has no observed entries.
pub fn fit(matrix: &RatingMatrix, config: &AlsConfig) -> SgdModel {
    assert!(
        matrix.observed_len() > 0,
        "cannot fit an empty rating matrix"
    );
    let sgd_like = SgdConfig {
        rank: config.rank,
        seed: config.seed,
        ..SgdConfig::default()
    };
    let (mu, mut row_bias, mut col_bias) = initial_biases(matrix);
    let (mut q, mut p) = initial_factors(matrix, &sgd_like, mu, &row_bias, &col_bias);
    let rank = q.cols();

    let row_entries: Vec<(usize, usize, f64)> = matrix.observed().collect();
    let col_entries: Vec<(usize, usize, f64)> =
        matrix.observed().map(|(i, j, r)| (j, i, r)).collect();

    for _ in 0..config.sweeps {
        solve_side(
            &row_entries,
            matrix.rows(),
            rank,
            mu,
            &mut row_bias,
            &mut q,
            &col_bias,
            &p,
            config.regularization,
        );
        solve_side(
            &col_entries,
            matrix.cols(),
            rank,
            mu,
            &mut col_bias,
            &mut p,
            &row_bias,
            &q,
            config.regularization,
        );
    }

    let mut model = SgdModel {
        mu,
        row_bias,
        col_bias,
        q,
        p,
        train_rmse: 0.0,
        epochs: config.sweeps,
    };
    let sq: f64 = row_entries
        .iter()
        .map(|&(i, j, r)| {
            let e = r - model.predict(i, j);
            e * e
        })
        .sum();
    model.train_rmse = (sq / row_entries.len() as f64).sqrt();
    model
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sgd;

    fn synthetic(rows: usize, cols: usize, known: usize, samples: usize) -> RatingMatrix {
        let truth = |i: usize, j: usize| {
            let app_scale = 1.0 + 0.3 * (i as f64 * 0.7).sin();
            let config_effect = 2.0 + (j as f64 * 0.25).cos();
            app_scale * config_effect + 0.2 * (i as f64 * 0.4).sin() * (j as f64 * 0.5).cos()
        };
        let mut obs = RatingMatrix::new(rows, cols);
        for i in 0..known {
            for j in 0..cols {
                obs.set(i, j, truth(i, j));
            }
        }
        for i in known..rows {
            for s in 0..samples {
                let j = (s * cols / samples + i) % cols;
                obs.set(i, j, truth(i, j));
            }
        }
        obs
    }

    #[test]
    #[cfg_attr(miri, ignore)] // training/fit loop; intractable under Miri (DESIGN.md §8)
    fn als_fits_the_training_entries() {
        let obs = synthetic(16, 24, 13, 2);
        let model = fit(&obs, &AlsConfig::default());
        assert!(model.train_rmse < 0.05, "train RMSE {}", model.train_rmse);
    }

    #[test]
    #[cfg_attr(miri, ignore)] // training/fit loop; intractable under Miri (DESIGN.md §8)
    fn als_matches_sgd_held_out_quality() {
        let obs = synthetic(20, 30, 16, 2);
        let truth = |i: usize, j: usize| {
            let app_scale = 1.0 + 0.3 * (i as f64 * 0.7).sin();
            let config_effect = 2.0 + (j as f64 * 0.25).cos();
            app_scale * config_effect + 0.2 * (i as f64 * 0.4).sin() * (j as f64 * 0.5).cos()
        };
        let err = |m: &SgdModel| {
            let mut total = 0.0;
            for i in 16..20 {
                for j in 0..30 {
                    total += (m.predict(i, j) - truth(i, j)).abs() / truth(i, j);
                }
            }
            total / (4.0 * 30.0)
        };
        let als = fit(&obs, &AlsConfig::default());
        let sgd = sgd::fit(&obs, &SgdConfig::default());
        assert!(
            err(&als) < err(&sgd) * 1.6 + 0.02,
            "ALS ({:.3}) should be in SGD's quality regime ({:.3})",
            err(&als),
            err(&sgd)
        );
    }

    #[test]
    #[cfg_attr(miri, ignore)] // training/fit loop; intractable under Miri (DESIGN.md §8)
    fn als_is_deterministic() {
        let obs = synthetic(10, 15, 8, 2);
        let a = fit(&obs, &AlsConfig::default());
        let b = fit(&obs, &AlsConfig::default());
        assert_eq!(a.q, b.q);
        assert_eq!(a.row_bias, b.row_bias);
    }

    #[test]
    #[cfg_attr(miri, ignore)] // training/fit loop; intractable under Miri (DESIGN.md §8)
    fn more_sweeps_do_not_hurt_training_fit() {
        let obs = synthetic(12, 20, 10, 3);
        let short = fit(
            &obs,
            &AlsConfig {
                sweeps: 1,
                ..AlsConfig::default()
            },
        );
        let long = fit(
            &obs,
            &AlsConfig {
                sweeps: 10,
                ..AlsConfig::default()
            },
        );
        assert!(long.train_rmse <= short.train_rmse + 1e-9);
    }

    #[test]
    fn solver_handles_small_systems() {
        // 2x2: [[2, 1], [1, 3]] x = [5, 10] → x = [1, 3].
        let x = solve(vec![2.0, 1.0, 1.0, 3.0], vec![5.0, 10.0], 2);
        assert!((x[0] - 1.0).abs() < 1e-9);
        assert!((x[1] - 3.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "empty rating matrix")]
    fn empty_matrix_rejected() {
        let m = RatingMatrix::new(2, 2);
        let _ = fit(&m, &AlsConfig::default());
    }
}
