//! Collaborative filtering for performance/power inference.
//!
//! CuttleSys infers each job's throughput, tail latency, and power across all
//! 108 resource configurations from two profiling samples plus a library of
//! offline-characterized "known" applications. The machinery is
//! PQ-reconstruction (§V, Alg. 1): the sparse job × configuration rating
//! matrix is factored as `R ≈ Q·Pᵀ`, initialized from a truncated SVD of the
//! mean-imputed matrix and refined by Stochastic Gradient Descent over the
//! observed entries.
//!
//! Modules:
//!
//! * [`matrix`] — sparse rating matrices and dense results.
//! * [`svd`] — truncated SVD by power iteration, used to initialize P and Q.
//! * [`sgd`] — the serial reference SGD (Alg. 1).
//! * [`als`] — an alternating-least-squares alternative solver (ablation).
//! * [`hogwild`] — the lock-free parallel SGD of §V (HOGWILD-style, no
//!   synchronization primitives, small bounded inaccuracy).
//! * [`reconstruction`] — the three-matrix driver (throughput, tail latency,
//!   power) the Resource Controller invokes every decision interval.
//!
//! # Quick example
//!
//! ```
//! use recsys::{RatingMatrix, Reconstructor, ValueTransform};
//!
//! // 4 fully-known rows plus one new row with 2 observations.
//! let mut m = RatingMatrix::new(5, 6);
//! for r in 0..4 {
//!     for c in 0..6 {
//!         m.set(r, c, 1.0 + r as f64 + 0.5 * c as f64);
//!     }
//! }
//! m.set(4, 0, 3.0);
//! m.set(4, 5, 5.5);
//! let completed = Reconstructor::default().complete(&m, ValueTransform::Linear);
//! assert!(completed.get(4, 2).is_finite());
//! ```

pub mod als;
pub mod hogwild;
pub mod matrix;
pub mod reconstruction;
pub mod sgd;
pub mod svd;

pub use als::AlsConfig;
pub use matrix::{DenseMatrix, RatingMatrix};
pub use reconstruction::{Completion, Reconstructor, SessionInput, ValueTransform};
pub use sgd::{SgdConfig, SgdModel, WarmStartConfig};
