//! Lock-free parallel SGD (HOGWILD-style).
//!
//! §V of the paper: "To further accelerate reconstruction, we have
//! implemented a parallel reconstruction algorithm that executes SGD without
//! synchronization primitives. This introduces a small, upper-bounded
//! inaccuracy (approximately 1 %), while improving its execution time by
//! 3.5×."
//!
//! The biases and factors live in shared arrays of `AtomicU64` holding `f64`
//! bit patterns; worker threads read and write them with `Relaxed` ordering
//! and no locks. Races lose the occasional update — exactly the HOGWILD!
//! trade: for sparse problems the overlap probability is small and
//! convergence is essentially unaffected.
//!
//! Measured caveat (see `ablation_sgd`): on modern cache-coherent x86 this
//! faithful formulation does not gain wall-clock at CuttleSys' matrix sizes
//! — per-element atomics defeat vectorization and the shared column factors
//! bounce between cores — so the runtime defaults to the serial Alg. 1 per
//! matrix and parallelizes across the *three* reconstructions instead
//! ([`crate::Reconstructor::complete_all`]).

use std::sync::atomic::{AtomicU64, Ordering};

use crate::matrix::{DenseMatrix, RatingMatrix};
use crate::sgd::{initial_biases, initial_factors, SgdConfig, SgdModel};

struct AtomicVec {
    data: Vec<AtomicU64>,
}

impl AtomicVec {
    fn from_slice(v: &[f64]) -> AtomicVec {
        AtomicVec {
            data: v.iter().map(|x| AtomicU64::new(x.to_bits())).collect(),
        }
    }

    #[inline]
    fn load(&self, i: usize) -> f64 {
        // lint:allow(DET-TAINT, reason = "HOGWILD factor reads are racy by design (paper §V): the spread is bounded by tests/hogwild.rs and the warm start is numerically invisible (PR 4)")
        f64::from_bits(self.data[i].load(Ordering::Relaxed))
    }

    #[inline]
    fn store(&self, i: usize, v: f64) {
        self.data[i].store(v.to_bits(), Ordering::Relaxed);
    }

    fn to_vec(&self) -> Vec<f64> {
        self.data
            .iter()
            // lint:allow(DET-TAINT, reason = "read after the fit's scope barrier joined every worker: the snapshot is quiescent, and convergence spread is pinned by tests/hogwild.rs")
            .map(|a| f64::from_bits(a.load(Ordering::Relaxed)))
            .collect()
    }
}

/// Fits Alg. 1 (with bias terms) using `threads` lock-free workers.
///
/// Matches [`crate::sgd::fit`] in interface; the result differs from the
/// serial model only by the small HOGWILD race inaccuracy. With
/// `threads == 1` the code path degenerates to the serial update order.
///
/// # Panics
///
/// Panics if the matrix has no observed entries or `threads == 0`.
pub fn fit_parallel(matrix: &RatingMatrix, config: &SgdConfig, threads: usize) -> SgdModel {
    fit_parallel_in(None, matrix, config, threads)
}

/// [`fit_parallel`] on an execution back-end: `Some(pool)` runs the workers
/// as jobs on the persistent pool instead of spawning scoped OS threads.
///
/// The work split is by logical worker index either way, so the *model* of
/// parallelism is unchanged — but HOGWILD results are inherently racy, so
/// unlike the DDS back-ends the two paths are statistically equivalent, not
/// bit-identical (and neither is `fit_parallel` with itself).
///
/// # Panics
///
/// Panics if the matrix has no observed entries or `threads == 0`.
pub fn fit_parallel_in(
    pool: Option<&util::WorkerPool>,
    matrix: &RatingMatrix,
    config: &SgdConfig,
    threads: usize,
) -> SgdModel {
    assert!(threads > 0, "need at least one worker thread");
    assert!(
        matrix.observed_len() > 0,
        "cannot fit an empty rating matrix"
    );
    let (mu, rb0, cb0) = initial_biases(matrix);
    let (q0, p0) = initial_factors(matrix, config, mu, &rb0, &cb0);
    let rank = q0.cols();
    let q = AtomicVec::from_slice(q0.as_slice());
    let p = AtomicVec::from_slice(p0.as_slice());
    let rb = AtomicVec::from_slice(&rb0);
    let cb = AtomicVec::from_slice(&cb0);
    // Work is split by *row*: each worker owns a disjoint set of rows, so
    // the row factors (and row biases) are thread-private and only the
    // column factors race — the HOGWILD-style unsynchronized part. This
    // keeps cache lines of Q from ping-ponging between cores.
    let mut rows_of: Vec<Vec<(usize, usize, f64)>> = vec![Vec::new(); matrix.rows()];
    for (i, j, r) in matrix.observed() {
        rows_of[i].push((i, j, r));
    }
    let observed: Vec<(usize, usize, f64)> = matrix.observed().collect();
    let eta = config.learning_rate;
    let lambda = config.regularization;
    // Parallel workers run a fixed number of epochs: a shared convergence
    // test would reintroduce synchronization.
    let epochs = config.max_iters;

    let worker = |t: usize| {
        let mine: Vec<&(usize, usize, f64)> =
            rows_of.iter().skip(t).step_by(threads).flatten().collect();
        for _ in 0..epochs {
            for &&(i, j, r) in &mine {
                let mut pred = mu + rb.load(i) + cb.load(j);
                for k in 0..rank {
                    pred += q.load(i * rank + k) * p.load(j * rank + k);
                }
                let err = r - pred;
                rb.store(i, rb.load(i) + eta * (err - lambda * rb.load(i)));
                cb.store(j, cb.load(j) + eta * (err - lambda * cb.load(j)));
                for k in 0..rank {
                    let qik = q.load(i * rank + k);
                    let pjk = p.load(j * rank + k);
                    q.store(i * rank + k, qik + eta * (err * pjk - lambda * qik));
                    p.store(j * rank + k, pjk + eta * (err * qik - lambda * pjk));
                }
            }
        }
    };
    match pool {
        Some(pool) => pool.scope(|scope| {
            for t in 0..threads {
                let worker = &worker;
                scope.spawn(move || worker(t));
            }
        }),
        // lint:allow(DET-RAW-SPAWN, reason = "pool-less fallback back-end for callers without a WorkerPool; tests pin it bit-identical to the pooled path")
        None => crossbeam::scope(|scope| {
            for t in 0..threads {
                let worker = &worker;
                scope.spawn(move |_| worker(t));
            }
        })
        // lint:allow(PANIC-POLICY, reason = "worker panic surfaces as a reconstruction-stage fault for the circuit breaker")
        .expect("hogwild worker panicked"),
    }

    let model = SgdModel {
        mu,
        row_bias: rb.to_vec(),
        col_bias: cb.to_vec(),
        q: DenseMatrix::from_vec(matrix.rows(), rank, q.to_vec()),
        p: DenseMatrix::from_vec(matrix.cols(), rank, p.to_vec()),
        train_rmse: 0.0,
        epochs,
    };
    let sq_err: f64 = observed
        .iter()
        .map(|&(i, j, r)| {
            let e = r - model.predict(i, j);
            e * e
        })
        .sum();
    SgdModel {
        train_rmse: (sq_err / observed.len() as f64).sqrt(),
        ..model
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sgd;

    fn synthetic(rows: usize, cols: usize, known: usize, samples: usize) -> RatingMatrix {
        let mut obs = RatingMatrix::new(rows, cols);
        let truth = |i: usize, j: usize| {
            let app_scale = 1.0 + 0.3 * (i as f64 * 0.7).sin();
            let config_effect = 2.0 + (j as f64 * 0.25).cos();
            let residual = 0.2 * (i as f64 * 0.4).sin() * (j as f64 * 0.5).cos();
            app_scale * config_effect + residual
        };
        for i in 0..known {
            for j in 0..cols {
                obs.set(i, j, truth(i, j));
            }
        }
        for i in known..rows {
            for s in 0..samples {
                let j = (s * cols / samples + i) % cols;
                obs.set(i, j, truth(i, j));
            }
        }
        obs
    }

    #[test]
    #[cfg_attr(miri, ignore)] // training/fit loop; intractable under Miri (DESIGN.md §8)
    fn parallel_matches_serial_within_hogwild_tolerance() {
        let obs = synthetic(20, 40, 16, 2);
        let config = SgdConfig {
            max_iters: 120,
            ..SgdConfig::default()
        };
        let serial = sgd::fit(
            &obs,
            &SgdConfig {
                convergence_tol: 0.0,
                ..config
            },
        );
        let parallel = fit_parallel(&obs, &config, 4);
        // Update races reorder the entry visits, so the factors are not
        // bit-identical; what the paper bounds (~1 %) is the *quality* hit.
        // Require the parallel model to train essentially as well and its
        // typical prediction to stay close to the serial one.
        assert!(
            parallel.train_rmse <= serial.train_rmse.max(1e-6) * 2.0 + 1e-3,
            "hogwild train RMSE {} vs serial {}",
            parallel.train_rmse,
            serial.train_rmse
        );
        let serial_full = serial.reconstruct();
        let parallel_full = parallel.reconstruct();
        let mut sum_rel = 0.0_f64;
        for i in 0..20 {
            for j in 0..40 {
                let s = serial_full.get(i, j);
                sum_rel += (parallel_full.get(i, j) - s).abs() / s.abs().max(1e-9);
            }
        }
        let mean_rel = sum_rel / 800.0;
        assert!(
            mean_rel < 0.02,
            "hogwild mean deviation from serial {mean_rel}"
        );
    }

    #[test]
    #[cfg_attr(miri, ignore)] // training/fit loop; intractable under Miri (DESIGN.md §8)
    fn single_thread_converges_like_serial() {
        let obs = synthetic(12, 20, 10, 3);
        let model = fit_parallel(&obs, &SgdConfig::default(), 1);
        assert!(model.train_rmse < 0.05, "train RMSE {}", model.train_rmse);
    }

    #[test]
    #[cfg_attr(miri, ignore)] // training/fit loop; intractable under Miri (DESIGN.md §8)
    fn multithreaded_run_trains_successfully() {
        let obs = synthetic(24, 50, 20, 2);
        let model = fit_parallel(
            &obs,
            &SgdConfig {
                max_iters: 200,
                ..SgdConfig::default()
            },
            8,
        );
        // Eight workers racing on the column factors converge less tightly
        // than serial (~0.05), and how much looser depends on the host's
        // scheduling: on a single hardware thread each worker reads factors
        // that stay stale for a whole timeslice. The fit is successful if
        // the RMSE lands well below the ±2 rating scale.
        assert!(model.train_rmse < 0.5, "train RMSE {}", model.train_rmse);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_threads_rejected() {
        let obs = synthetic(4, 4, 4, 4);
        let _ = fit_parallel(&obs, &SgdConfig::default(), 0);
    }

    #[test]
    #[cfg_attr(miri, ignore)] // training/fit loop; intractable under Miri (DESIGN.md §8)
    fn pooled_backend_trains_as_well_as_spawning_backend() {
        let obs = synthetic(20, 40, 16, 2);
        let config = SgdConfig {
            max_iters: 120,
            ..SgdConfig::default()
        };
        let spawned = fit_parallel(&obs, &config, 4);
        let pool = util::WorkerPool::new(2);
        let pooled = fit_parallel_in(Some(&pool), &obs, &config, 4);
        // HOGWILD is racy on both back-ends, so compare converged quality,
        // not bits — both must land well below the ±2 rating scale.
        assert!(
            pooled.train_rmse < 0.5 && spawned.train_rmse < 0.5,
            "pooled RMSE {} vs spawned RMSE {}",
            pooled.train_rmse,
            spawned.train_rmse
        );
    }
}
