//! Serial PQ-reconstruction SGD — the reference implementation of Alg. 1.
//!
//! Given a sparse rating matrix, factorize `R ≈ μ + b_row + b_col + Q·Pᵀ` by
//! stochastic gradient descent over the *observed* entries:
//!
//! ```text
//! ε_ij  ← R_ij − (μ + b_i + c_j + Q_i·P_j)
//! b_i   ← b_i + η(ε_ij − λ·b_i)
//! c_j   ← c_j + η(ε_ij − λ·c_j)
//! Q_i   ← Q_i + η(ε_ij·P_j − λ·Q_i)
//! P_j   ← P_j + η(ε_ij·Q_i − λ·P_j)
//! ```
//!
//! The bias terms are the standard recommender-systems refinement (BellKor):
//! the column bias captures the configuration-wide effect learned from the
//! densely observed training applications, the row bias captures the new
//! application's overall scale — learnable from its two profiling samples —
//! and the `Q·Pᵀ` residual captures per-application preferences among
//! configurations. `Q`/`P` are initialized from a truncated SVD of the
//! mean-imputed bias residual, following the paper's SVD construction.

use serde::{Deserialize, Serialize};

use crate::matrix::{DenseMatrix, RatingMatrix};
use crate::svd::truncated_svd;

/// Hyper-parameters for the SGD reconstruction.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SgdConfig {
    /// Latent factor rank of the residual term.
    pub rank: usize,
    /// Learning rate η.
    pub learning_rate: f64,
    /// Regularization factor λ.
    pub regularization: f64,
    /// Maximum number of epochs over the observed entries.
    pub max_iters: usize,
    /// Stop when the epoch RMSE improves by less than this relative amount.
    pub convergence_tol: f64,
    /// Seed for SVD initialization.
    pub seed: u64,
}

impl Default for SgdConfig {
    fn default() -> Self {
        SgdConfig {
            rank: 2,
            learning_rate: 0.02,
            regularization: 0.02,
            max_iters: 200,
            convergence_tol: 1e-5,
            seed: 0x5EED,
        }
    }
}

/// A fitted biased PQ factorization.
#[derive(Debug, Clone, PartialEq)]
pub struct SgdModel {
    /// Global mean μ of the observed ratings.
    pub mu: f64,
    /// Row (application) biases.
    pub row_bias: Vec<f64>,
    /// Column (configuration) biases.
    pub col_bias: Vec<f64>,
    /// Row factors, `rows × rank`.
    pub q: DenseMatrix,
    /// Column factors, `cols × rank`.
    pub p: DenseMatrix,
    /// RMSE over observed entries after the final epoch.
    pub train_rmse: f64,
    /// Number of epochs actually run.
    pub epochs: usize,
}

impl SgdModel {
    /// Predicted rating for `(row, col)`.
    pub fn predict(&self, row: usize, col: usize) -> f64 {
        let residual: f64 = self
            .q
            .row(row)
            .iter()
            .zip(self.p.row(col))
            .map(|(a, b)| a * b)
            .sum();
        self.mu + self.row_bias[row] + self.col_bias[col] + residual
    }

    /// The full reconstructed matrix.
    pub fn reconstruct(&self) -> DenseMatrix {
        let mut out = DenseMatrix::zeros(self.q.rows(), self.p.rows());
        for i in 0..self.q.rows() {
            for j in 0..self.p.rows() {
                out.set(i, j, self.predict(i, j));
            }
        }
        out
    }
}

/// Bias initialization shared by the serial and parallel fitters: global
/// mean, then row/column means of the residuals.
#[allow(clippy::needless_range_loop)] // bias/count vectors indexed in lockstep
pub(crate) fn initial_biases(matrix: &RatingMatrix) -> (f64, Vec<f64>, Vec<f64>) {
    let mu = matrix.global_mean();
    let mut row_bias = vec![0.0; matrix.rows()];
    let mut row_n = vec![0usize; matrix.rows()];
    let mut col_bias = vec![0.0; matrix.cols()];
    let mut col_n = vec![0usize; matrix.cols()];
    for (r, _c, v) in matrix.observed() {
        row_bias[r] += v - mu;
        row_n[r] += 1;
    }
    for (b, n) in row_bias.iter_mut().zip(&row_n) {
        if *n > 0 {
            *b /= *n as f64;
        }
    }
    for (r, c, v) in matrix.observed() {
        col_bias[c] += v - mu - row_bias[r];
        col_n[c] += 1;
    }
    for (b, n) in col_bias.iter_mut().zip(&col_n) {
        if *n > 0 {
            *b /= *n as f64;
        }
    }
    (mu, row_bias, col_bias)
}

/// SVD-based initialization of the P/Q residual factors (Alg. 1 lines 1-2,
/// with the paper's SVD construction applied to the bias residual).
pub(crate) fn initial_factors(
    matrix: &RatingMatrix,
    config: &SgdConfig,
    mu: f64,
    row_bias: &[f64],
    col_bias: &[f64],
) -> (DenseMatrix, DenseMatrix) {
    let mut residual = DenseMatrix::zeros(matrix.rows(), matrix.cols());
    #[allow(clippy::needless_range_loop)] // (r, c) index matrix, biases, and residual together
    for r in 0..matrix.rows() {
        for c in 0..matrix.cols() {
            let base = mu + row_bias[r] + col_bias[c];
            residual.set(r, c, matrix.get(r, c).map_or(0.0, |v| v - base));
        }
    }
    let svd = truncated_svd(&residual, config.rank, 40, config.seed);
    let (q, p) = svd.pq_factors();
    if q.cols() == config.rank {
        return (q, p);
    }
    // Rank was clamped by the matrix shape; pad with zero columns so factor
    // shapes always match the configuration.
    let mut q_pad = DenseMatrix::zeros(q.rows(), config.rank);
    let mut p_pad = DenseMatrix::zeros(p.rows(), config.rank);
    for i in 0..q.rows() {
        for k in 0..q.cols() {
            q_pad.set(i, k, q.get(i, k));
        }
    }
    for j in 0..p.rows() {
        for k in 0..p.cols() {
            p_pad.set(j, k, p.get(j, k));
        }
    }
    (q_pad, p_pad)
}

/// The serial epoch loop shared by cold fits and warm refits: in-place SGD
/// over `observed` until `max_iters` epochs or relative-RMSE convergence.
/// Returns `(final rmse, epochs run)`.
#[allow(clippy::too_many_arguments)]
fn run_epochs(
    observed: &[(usize, usize, f64)],
    mu: f64,
    row_bias: &mut [f64],
    col_bias: &mut [f64],
    q: &mut DenseMatrix,
    p: &mut DenseMatrix,
    eta: f64,
    lambda: f64,
    max_iters: usize,
    convergence_tol: f64,
) -> (f64, usize) {
    let n = observed.len() as f64;
    let rank = q.cols();
    let mut prev_rmse = f64::INFINITY;
    let mut epochs = 0;
    let mut rmse = f64::INFINITY;
    for _ in 0..max_iters {
        epochs += 1;
        let mut sq_err = 0.0;
        for &(i, j, r) in observed {
            let residual: f64 = q.row(i).iter().zip(p.row(j)).map(|(a, b)| a * b).sum();
            let err = r - (mu + row_bias[i] + col_bias[j] + residual);
            sq_err += err * err;
            row_bias[i] += eta * (err - lambda * row_bias[i]);
            col_bias[j] += eta * (err - lambda * col_bias[j]);
            for k in 0..rank {
                let qik = q.get(i, k);
                let pjk = p.get(j, k);
                q.set(i, k, qik + eta * (err * pjk - lambda * qik));
                p.set(j, k, pjk + eta * (err * qik - lambda * pjk));
            }
        }
        rmse = (sq_err / n).sqrt();
        if prev_rmse.is_finite() && (prev_rmse - rmse).abs() <= convergence_tol * prev_rmse {
            break;
        }
        prev_rmse = rmse;
    }
    (rmse, epochs)
}

/// Fits Alg. 1 (with bias terms) on the observed entries of `matrix`.
///
/// # Panics
///
/// Panics if the matrix has no observed entries.
pub fn fit(matrix: &RatingMatrix, config: &SgdConfig) -> SgdModel {
    assert!(
        matrix.observed_len() > 0,
        "cannot fit an empty rating matrix"
    );
    let (mu, mut row_bias, mut col_bias) = initial_biases(matrix);
    let (mut q, mut p) = initial_factors(matrix, config, mu, &row_bias, &col_bias);
    let observed: Vec<(usize, usize, f64)> = matrix.observed().collect();
    let (rmse, epochs) = run_epochs(
        &observed,
        mu,
        &mut row_bias,
        &mut col_bias,
        &mut q,
        &mut p,
        config.learning_rate,
        config.regularization,
        config.max_iters,
        config.convergence_tol,
    );
    SgdModel {
        mu,
        row_bias,
        col_bias,
        q,
        p,
        train_rmse: rmse,
        epochs,
    }
}

/// The incremental refinement schedule for warm-started refits.
///
/// Consecutive decision quanta differ by only a couple of new samples per
/// job, so the previous quantum's factors are an excellent starting point:
/// a handful of epochs at a decayed learning rate recovers the fit that a
/// cold start needs the full `max_iters` budget for.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WarmStartConfig {
    /// Epoch budget for the refit (clamped to at least one).
    pub max_epochs: usize,
    /// Multiplier on [`SgdConfig::learning_rate`] — the factors are already
    /// near a minimum, so large steps would only re-inject noise.
    pub lr_decay: f64,
}

impl Default for WarmStartConfig {
    fn default() -> Self {
        WarmStartConfig {
            max_epochs: 15,
            lr_decay: 0.5,
        }
    }
}

/// Refines `prior` on the current `matrix` with the short [`WarmStartConfig`]
/// schedule instead of refitting from scratch.
///
/// Returns `None` — the caller must cold-start — when the matrix is empty or
/// its shape no longer matches the prior's factors (job churn changed the
/// row set; a stale model must not be stretched over a different matrix).
/// The prior's `mu` is kept: the global mean moves negligibly per quantum
/// and the bias terms absorb any drift.
pub fn fit_warm(
    matrix: &RatingMatrix,
    config: &SgdConfig,
    warm: &WarmStartConfig,
    prior: &SgdModel,
) -> Option<SgdModel> {
    if matrix.observed_len() == 0 {
        return None;
    }
    if prior.q.rows() != matrix.rows()
        || prior.p.rows() != matrix.cols()
        || prior.q.cols() != prior.p.cols()
    {
        return None;
    }
    let mu = prior.mu;
    let mut row_bias = prior.row_bias.clone();
    let mut col_bias = prior.col_bias.clone();
    let mut q = prior.q.clone();
    let mut p = prior.p.clone();
    let observed: Vec<(usize, usize, f64)> = matrix.observed().collect();
    let (rmse, epochs) = run_epochs(
        &observed,
        mu,
        &mut row_bias,
        &mut col_bias,
        &mut q,
        &mut p,
        config.learning_rate * warm.lr_decay,
        config.regularization,
        warm.max_epochs.max(1),
        config.convergence_tol,
    );
    Some(SgdModel {
        mu,
        row_bias,
        col_bias,
        q,
        p,
        train_rmse: rmse,
        epochs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds a synthetic ground truth with multiplicative app/config
    /// structure plus a low-rank residual — the shape performance matrices
    /// actually have — and a sparse observation of it.
    fn synthetic(
        rows: usize,
        cols: usize,
        known_rows: usize,
        samples: usize,
    ) -> (DenseMatrix, RatingMatrix) {
        let mut truth = DenseMatrix::zeros(rows, cols);
        for i in 0..rows {
            for j in 0..cols {
                let app_scale = 1.0 + 0.3 * (i as f64 * 0.7).sin();
                let config_effect = 2.0 + (j as f64 * 0.25).cos();
                let residual = 0.2 * (i as f64 * 0.4).sin() * (j as f64 * 0.5).cos();
                truth.set(i, j, app_scale * config_effect + residual);
            }
        }
        let mut obs = RatingMatrix::new(rows, cols);
        for i in 0..known_rows {
            for j in 0..cols {
                obs.set(i, j, truth.get(i, j));
            }
        }
        for i in known_rows..rows {
            for s in 0..samples {
                let j = (s * cols / samples + i) % cols;
                obs.set(i, j, truth.get(i, j));
            }
        }
        (truth, obs)
    }

    #[test]
    #[cfg_attr(miri, ignore)] // training/fit loop; intractable under Miri (DESIGN.md §8)
    fn recovers_held_out_entries_of_structured_matrix() {
        let (truth, obs) = synthetic(20, 30, 16, 2);
        let model = fit(&obs, &SgdConfig::default());
        let mut max_rel = 0.0_f64;
        for i in 16..20 {
            for j in 0..30 {
                let rel = (model.predict(i, j) - truth.get(i, j)).abs() / truth.get(i, j).abs();
                max_rel = max_rel.max(rel);
            }
        }
        assert!(
            max_rel < 0.25,
            "held-out relative error too large: {max_rel}"
        );
    }

    #[test]
    #[cfg_attr(miri, ignore)] // training/fit loop; intractable under Miri (DESIGN.md §8)
    fn train_rmse_is_small_after_convergence() {
        let (_, obs) = synthetic(12, 20, 10, 3);
        let model = fit(&obs, &SgdConfig::default());
        assert!(model.train_rmse < 0.05, "train RMSE {}", model.train_rmse);
        assert!(model.epochs <= SgdConfig::default().max_iters);
    }

    #[test]
    #[cfg_attr(miri, ignore)] // training/fit loop; intractable under Miri (DESIGN.md §8)
    fn convergence_tolerance_stops_early() {
        let (_, obs) = synthetic(10, 15, 8, 3);
        let loose = fit(
            &obs,
            &SgdConfig {
                convergence_tol: 0.05,
                ..SgdConfig::default()
            },
        );
        let tight = fit(
            &obs,
            &SgdConfig {
                convergence_tol: 1e-9,
                ..SgdConfig::default()
            },
        );
        assert!(loose.epochs < tight.epochs);
    }

    #[test]
    #[cfg_attr(miri, ignore)] // training/fit loop; intractable under Miri (DESIGN.md §8)
    fn deterministic_for_fixed_seed() {
        let (_, obs) = synthetic(10, 15, 8, 2);
        let a = fit(&obs, &SgdConfig::default());
        let b = fit(&obs, &SgdConfig::default());
        assert_eq!(a.q, b.q);
        assert_eq!(a.p, b.p);
        assert_eq!(a.row_bias, b.row_bias);
    }

    #[test]
    #[cfg_attr(miri, ignore)] // training/fit loop; intractable under Miri (DESIGN.md §8)
    fn full_rank_configuration_is_supported() {
        // The paper's literal choice: rank = number of configurations.
        let (_, obs) = synthetic(8, 12, 7, 3);
        let model = fit(
            &obs,
            &SgdConfig {
                rank: 12,
                ..SgdConfig::default()
            },
        );
        assert_eq!(model.q.cols(), 12);
        assert!(model.train_rmse < 0.1);
    }

    #[test]
    #[cfg_attr(miri, ignore)] // training/fit loop; intractable under Miri (DESIGN.md §8)
    fn reconstruct_matches_predict() {
        let (_, obs) = synthetic(6, 9, 5, 2);
        let model = fit(&obs, &SgdConfig::default());
        let full = model.reconstruct();
        assert!((full.get(3, 4) - model.predict(3, 4)).abs() < 1e-12);
    }

    #[test]
    #[cfg_attr(miri, ignore)] // training/fit loop; intractable under Miri (DESIGN.md §8)
    fn column_bias_learns_config_effect_from_training_rows() {
        let (_, obs) = synthetic(20, 30, 16, 2);
        let model = fit(&obs, &SgdConfig::default());
        // The config effect 2 + cos(0.25 j) peaks at j = 0 and dips around
        // j = 12-13 (0.25·12.5 ≈ π): the learned column biases must agree.
        assert!(model.col_bias[0] > model.col_bias[13]);
    }

    #[test]
    #[should_panic(expected = "empty rating matrix")]
    fn empty_matrix_rejected() {
        let m = RatingMatrix::new(2, 2);
        let _ = fit(&m, &SgdConfig::default());
    }

    #[test]
    #[cfg_attr(miri, ignore)] // training/fit loop; intractable under Miri (DESIGN.md §8)
    fn warm_refit_matches_cold_quality_in_a_fraction_of_the_epochs() {
        let (truth, mut obs) = synthetic(20, 30, 16, 2);
        let config = SgdConfig::default();
        let prior = fit(&obs, &config);
        // The next quantum: two more samples land for each sparse row.
        for i in 16..20 {
            obs.set(i, (i * 7) % 30, truth.get(i, (i * 7) % 30));
            obs.set(i, (i * 11) % 30, truth.get(i, (i * 11) % 30));
        }
        let warm_cfg = WarmStartConfig::default();
        let warm = fit_warm(&obs, &config, &warm_cfg, &prior).expect("shapes match");
        let cold = fit(&obs, &config);
        assert!(warm.epochs <= warm_cfg.max_epochs);
        assert!(
            warm.train_rmse <= cold.train_rmse + 0.01,
            "warm RMSE {} vs cold RMSE {}",
            warm.train_rmse,
            cold.train_rmse
        );
    }

    #[test]
    fn warm_refit_refuses_mismatched_shapes() {
        let (_, obs) = synthetic(10, 15, 8, 2);
        let config = SgdConfig::default();
        let prior = fit(&obs, &config);
        let (_, grown) = synthetic(11, 15, 8, 2);
        assert!(fit_warm(&grown, &config, &WarmStartConfig::default(), &prior).is_none());
        let empty = RatingMatrix::new(10, 15);
        assert!(fit_warm(&empty, &config, &WarmStartConfig::default(), &prior).is_none());
    }

    #[test]
    #[cfg_attr(miri, ignore)] // training/fit loop; intractable under Miri (DESIGN.md §8)
    fn warm_refit_is_deterministic() {
        let (_, obs) = synthetic(12, 20, 10, 2);
        let config = SgdConfig::default();
        let prior = fit(&obs, &config);
        let a = fit_warm(&obs, &config, &WarmStartConfig::default(), &prior).unwrap();
        let b = fit_warm(&obs, &config, &WarmStartConfig::default(), &prior).unwrap();
        assert_eq!(a.q, b.q);
        assert_eq!(a.row_bias, b.row_bias);
    }
}
