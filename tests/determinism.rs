//! Determinism regression tests for the perf-path machinery.
//!
//! The worker pool, the DDS evaluation cache, and the pooled reconstruction
//! fan-out must all be *scheduling-invisible*: the same seed and scenario
//! produce a bit-identical [`RunRecord`] whether the pool is 1, 2, or 8
//! threads wide, or absent entirely (the legacy spawn-per-quantum path).
//! This holds because every parallel decision path is serial-equivalent by
//! construction — DDS keeps one RNG stream per *logical* worker and reduces
//! in worker order, the reconstruction fan-out writes to disjoint slots,
//! and cache hits return the bit-identical `f64` of the first evaluation.
//!
//! The one intentional exception is HOGWILD SGD (`Reconstructor::parallel`
//! with more than one thread): its lock-free racy updates make the solve
//! scheduling-*dependent*, exactly as in the paper. That nondeterminism is
//! not covered up here — it is documented and bounded: the RMSE spread
//! across repeated racy runs must stay small.

use cuttlesys::runtime::{CuttleSysManager, PerfConfig};
use cuttlesys::testbed::run_scenario;
use cuttlesys::types::{RunRecord, Scenario};
use recsys::{RatingMatrix, Reconstructor, SgdConfig, ValueTransform};
use workloads::loadgen::LoadPattern;

fn scenario() -> Scenario {
    Scenario {
        cap: LoadPattern::Constant(0.7),
        duration_slices: 5,
        noise: 0.0,
        phases: false,
        ..Scenario::paper_default()
    }
    .with_load(LoadPattern::Constant(0.8))
}

/// Zeroes the only legitimately scheduling-dependent telemetry: host
/// wall-clock stage times, and the cache hit/miss split (two threads racing
/// on the same fresh point both count a miss; the values stay identical).
fn comparable(mut r: RunRecord) -> RunRecord {
    for slice in &mut r.slices {
        if let Some(t) = &mut slice.telemetry {
            t.profile_wall_ms = 0.0;
            t.reconstruct_wall_ms = 0.0;
            t.qos_wall_ms = 0.0;
            t.search_wall_ms = 0.0;
            t.repair_wall_ms = 0.0;
            t.cache_hits = 0;
            t.cache_misses = 0;
        }
    }
    r
}

fn run_with(perf: PerfConfig) -> RunRecord {
    let s = scenario();
    let mut manager = CuttleSysManager::for_scenario(&s).with_perf(perf);
    run_scenario(&s, &mut manager)
}

#[test]
fn run_records_are_bit_identical_across_pool_widths() {
    let reference = comparable(run_with(PerfConfig::cold()));
    for threads in [1, 2, 8] {
        let pooled = comparable(run_with(PerfConfig {
            pool_threads: threads,
            ..PerfConfig::default()
        }));
        assert_eq!(
            reference, pooled,
            "pool width {threads} changed a decision output"
        );
    }
}

#[test]
fn warm_started_runs_are_reproducible_at_any_pool_width() {
    // Warm start intentionally differs *from the cold path*; it must still
    // be bit-for-bit reproducible with itself at every pool width, because
    // the warm solves are serial and the fan-out is slot-disjoint.
    let reference = comparable(run_with(PerfConfig {
        pool_threads: 1,
        ..PerfConfig::fast()
    }));
    for threads in [2, 8] {
        let pooled = comparable(run_with(PerfConfig {
            pool_threads: threads,
            ..PerfConfig::fast()
        }));
        assert_eq!(
            reference, pooled,
            "warm start at pool width {threads} changed a decision output"
        );
    }
}

#[test]
fn hogwild_nondeterminism_is_bounded() {
    // The deliberate exception: a multi-threaded HOGWILD reconstructor is
    // racy and scheduling-dependent. Quantify the damage rather than assert
    // it away: across repeated runs on the same matrix, train RMSE must
    // stay in a narrow band (the paper's "small bounded inaccuracy").
    let mut m = RatingMatrix::new(12, 20);
    for r in 0..10 {
        for c in 0..20 {
            m.set(r, c, 1.0 + r as f64 * 0.4 + c as f64 * 0.1);
        }
    }
    for (r, c) in [(10, 0), (10, 7), (11, 3), (11, 15)] {
        m.set(r, c, 1.0 + r as f64 * 0.4 + c as f64 * 0.1);
    }
    let reconstructor = Reconstructor::new(SgdConfig::default()).parallel(4);
    let rmses: Vec<f64> = (0..5)
        .map(|_| {
            let completion = reconstructor.complete_session(None, &m, ValueTransform::Linear, None);
            completion.model.train_rmse
        })
        .collect();
    let lo = rmses.iter().cloned().fold(f64::INFINITY, f64::min);
    let hi = rmses.iter().cloned().fold(0.0, f64::max);
    assert!(
        hi.is_finite() && lo > 0.0,
        "degenerate RMSE band: {rmses:?}"
    );
    assert!(
        hi - lo < 0.05,
        "HOGWILD RMSE spread must stay small: {rmses:?}"
    );
    assert!(hi < 0.5, "HOGWILD must still converge: {rmses:?}");
}
