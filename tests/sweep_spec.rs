//! The sweep spec loader's hard-error contract and the detector layer's
//! properties.
//!
//! The loader half pins *exact* error strings: a typo in a scenario file
//! must fail loudly, at load time, listing the valid vocabulary — never
//! silently shrink the sweep. The detector half is a seeded property
//! loop (the repo's stand-in for proptest): streaks are monotone, cliffs
//! never fire on constant series, and the residency detector agrees
//! with the metrics the core runtime reports.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use sweep::detectors::{max_adjacent_drop, max_true_streak, residency};
use sweep::{load_spec, SweepError};

/// Cases per property; inputs are drawn from a per-property fixed seed.
const CASES: usize = 256;

fn rng_for(property: &str) -> StdRng {
    let tag = property
        .bytes()
        .fold(0u64, |h, b| h.wrapping_mul(31).wrapping_add(b as u64));
    StdRng::seed_from_u64(0xC0FFEE ^ tag)
}

/// A minimal valid scenario with one injected extra top-level line.
fn scenario_with(extra: &str) -> String {
    format!(
        r#"{{
  "name": "t",
  "quanta": 2,
  "seeds": [1],
  "tenants": {{"lc": [{{"service": "xapian"}}]}}{}{}
}}"#,
        if extra.is_empty() { "" } else { ",\n  " },
        extra
    )
}

fn load_err(text: &str) -> String {
    match load_spec(text) {
        Err(e) => e.to_string(),
        Ok(_) => panic!("scenario unexpectedly loaded: {text}"),
    }
}

#[test]
fn a_minimal_scenario_loads_with_documented_defaults() {
    let spec = load_spec(&scenario_with("")).expect("minimal scenario loads");
    assert_eq!(spec.name, "t");
    assert_eq!(spec.quanta, 2);
    assert_eq!(spec.seeds, vec![1]);
    assert_eq!(spec.caps, vec![0.7]);
    assert_eq!(spec.fault_profiles, vec!["clean"]);
    assert_eq!(spec.fleet_fault_profiles, vec!["clean"]);
    assert_eq!(spec.load_shapes, vec![sweep::LoadShape::Steady]);
    assert!((spec.noise - 0.03).abs() < 1e-12);
    assert!(spec.phases);
    assert_eq!(spec.topology, sweep::Topology::SingleNode);
    // The sweep's default perf config pins a one-thread per-run pool so
    // parallelism lives at the run level, not nested inside each run.
    assert_eq!(spec.overrides.perf.pool_threads, 1);
}

#[test]
fn unknown_override_key_is_a_hard_error_listing_valid_keys() {
    let text = scenario_with(r#""overrides": {"perf.pool_threds": 2}"#);
    assert_eq!(
        load_err(&text),
        "unknown override key \"perf.pool_threds\"; valid keys are: \
         perf.evaluation_cache, perf.pool_threads, perf.warm_start, \
         resilience.breaker_close_after, resilience.breaker_open_after, \
         resilience.breaker_probe_interval, resilience.deadline_ms, \
         resilience.max_bips, resilience.max_tail_ms, resilience.max_watts, \
         resilience.staleness_bound"
    );
}

#[test]
fn unknown_top_level_field_is_a_hard_error_listing_valid_fields() {
    let text = scenario_with(r#""quantums": 5"#);
    assert_eq!(
        load_err(&text),
        "unknown scenario field \"quantums\"; valid fields are: \
         caps, detectors, fault_profiles, fleet_fault_profiles, load_shapes, \
         name, noise, overrides, phases, quanta, seeds, tenants, topology"
    );
}

#[test]
fn unknown_detector_is_a_hard_error_listing_the_catalogue() {
    let text = scenario_with(r#""detectors": {"qos_streak": 3}"#);
    assert_eq!(
        load_err(&text),
        "unknown detector \"qos_streak\"; valid detectors are: \
         degraded_residency, displaced_persistence, qos_violation_streak, \
         safe_mode_residency, tenant_loss, throughput_cliff"
    );
}

#[test]
fn unknown_fault_profile_is_a_hard_error_listing_profiles() {
    let text = scenario_with(r#""fault_profiles": ["clean", "noisy"]"#);
    assert_eq!(
        load_err(&text),
        "unknown fault profile \"noisy\"; valid profiles are: \
         clean, flaky-reconfig, lossy-sensors"
    );
}

#[test]
fn unknown_service_is_a_hard_error_listing_services() {
    let text = r#"{"name":"t","quanta":1,"seeds":[1],
        "tenants":{"lc":[{"service":"memcached"}]}}"#;
    assert_eq!(
        load_err(text),
        "unknown service \"memcached\"; valid services are: \
         imgdnn, masstree, moses, silo, xapian"
    );
}

#[test]
fn unknown_load_shape_is_a_hard_error_listing_shapes() {
    let text = scenario_with(r#""load_shapes": ["sawtooth"]"#);
    assert_eq!(
        load_err(&text),
        "unknown load shape \"sawtooth\"; valid shapes are: \
         diurnal, flash-crowd, ramp, square-wave, steady"
    );
}

#[test]
fn fleet_profiles_without_a_cluster_topology_are_rejected() {
    let text = scenario_with(r#""fleet_fault_profiles": ["node-crash"]"#);
    assert_eq!(
        load_err(&text),
        "\"fleet_fault_profiles\" requires a cluster topology"
    );
}

#[test]
fn malformed_json_reports_line_and_column() {
    let err = load_spec("{\n  \"name\": \"t\",\n  \"quanta\" 2\n}");
    match err {
        Err(SweepError::Json(e)) => {
            assert_eq!(
                e.to_string(),
                "json parse error at line 3, col 12: expected ':', found '2'"
            );
        }
        other => panic!("expected a JSON error, got {other:?}"),
    }
    // And the top-level Display wraps it with the file-level context.
    assert_eq!(
        load_err("{"),
        "scenario file is not valid JSON: \
         json parse error at line 1, col 2: expected a string object key"
    );
}

#[test]
fn seeds_are_canonicalized_sorted_and_deduplicated() {
    let shuffled = load_spec(&scenario_with("").replace("[1]", "[23, 7, 11, 7]"))
        .expect("shuffled seed list loads");
    assert_eq!(shuffled.seeds, vec![7, 11, 23]);
    let range = load_spec(&scenario_with("").replace("[1]", r#"{"range": [3, 6]}"#))
        .expect("seed range loads");
    assert_eq!(range.seeds, vec![3, 4, 5]);
}

#[test]
fn violation_streak_is_monotone_in_streak_length() {
    let mut rng = rng_for("streak-monotone");
    for _ in 0..CASES {
        let n = rng.random_range(1..40usize);
        let mut series: Vec<bool> = (0..n).map(|_| rng.random_range(0..2usize) == 1).collect();
        let before = max_true_streak(&series);
        // Extending any existing run of trues never decreases the max.
        let at = rng.random_range(0..series.len() + 1);
        series.insert(at, true);
        let after = max_true_streak(&series);
        assert!(
            after >= before,
            "inserting a violation shrank the streak: {before} -> {after}"
        );
        // And the max streak over a prefix never exceeds the whole.
        let cut = rng.random_range(0..series.len());
        assert!(max_true_streak(&series[..cut]) <= after);
    }
}

#[test]
fn throughput_cliff_never_fires_on_constant_series() {
    let mut rng = rng_for("cliff-constant");
    for _ in 0..CASES {
        let n = rng.random_range(0..40usize);
        let level = rng.random_range(0.0..1e12);
        let series = vec![level; n];
        assert_eq!(
            max_adjacent_drop(&series),
            0.0,
            "constant series at {level} produced a cliff"
        );
    }
    // Monotone non-decreasing series are also cliff-free.
    let mut rng = rng_for("cliff-rising");
    for _ in 0..CASES {
        let n = rng.random_range(2..40usize);
        let mut series: Vec<f64> = (0..n).map(|_| rng.random_range(0.0..1e9)).collect();
        series.sort_by(f64::total_cmp);
        assert_eq!(max_adjacent_drop(&series), 0.0);
    }
}

#[test]
fn residency_is_a_fraction_of_quanta() {
    let mut rng = rng_for("residency");
    for _ in 0..CASES {
        let total = rng.random_range(1..100usize);
        let count = rng.random_range(0..total + 1);
        let r = residency(count, total);
        assert!((0.0..=1.0).contains(&r));
        assert!((r * total as f64 - count as f64).abs() < 1e-9);
    }
    assert_eq!(residency(5, 0), 0.0, "zero quanta cannot trip residency");
}
