//! End-to-end integration tests: the full pipeline (simulator → workloads →
//! recsys → dds → runtime) reproducing the paper's headline claims on
//! single colocations.

use baselines::gating::GatingOrder;
use cuttlesys::managers::{
    AsymmetricManager, AsymmetricMode, CoreGatingManager, FlickerManager, FlickerVariant,
    NoGatingManager,
};
use cuttlesys::testbed::run_scenario;
use cuttlesys::types::Scenario;
use cuttlesys::CuttleSysManager;
use simulator::power::CoreKind;
use workloads::batch;
use workloads::latency;
use workloads::loadgen::LoadPattern;

fn scenario(cap: f64) -> Scenario {
    Scenario {
        cap: LoadPattern::Constant(cap),
        duration_slices: 6,
        noise: 0.0,
        phases: false,
        ..Scenario::paper_default()
    }
}

fn fixed(s: &Scenario) -> Scenario {
    Scenario {
        kind: CoreKind::Fixed,
        ..s.clone()
    }
}

#[test]
fn cuttlesys_beats_core_gating_at_tight_caps() {
    let s = scenario(0.6);
    let f = fixed(&s);
    let gating = run_scenario(
        &f,
        &mut CoreGatingManager::new(&f, GatingOrder::DescendingPower, true),
    );
    let cuttle = {
        let mut m = CuttleSysManager::for_scenario(&s);
        run_scenario(&s, &mut m)
    };
    assert!(
        cuttle.batch_instructions() > gating.batch_instructions() * 1.2,
        "cuttlesys {:.2e} should clearly beat gating {:.2e} at a 60% cap",
        cuttle.batch_instructions(),
        gating.batch_instructions()
    );
    assert_eq!(cuttle.qos_violations(), 0);
}

#[test]
fn cuttlesys_pays_the_reconfiguration_tax_at_relaxed_caps() {
    // §VIII-C: at a 90% cap the fixed-core designs can keep every core at
    // full width while reconfigurable cores must shed the 18% energy tax.
    let s = scenario(0.9);
    let f = fixed(&s);
    let nogating = run_scenario(&f, &mut NoGatingManager);
    let cuttle = {
        let mut m = CuttleSysManager::for_scenario(&s);
        run_scenario(&s, &mut m)
    };
    assert!(
        cuttle.batch_instructions() < nogating.batch_instructions(),
        "cuttlesys should trail the unconstrained fixed-core chip at 90%"
    );
}

#[test]
fn cuttlesys_beats_the_asymmetric_oracle_at_the_tightest_cap() {
    let s = scenario(0.5);
    let f = fixed(&s);
    let asym = run_scenario(&f, &mut AsymmetricManager::new(&f, AsymmetricMode::Oracle));
    let cuttle = {
        let mut m = CuttleSysManager::for_scenario(&s);
        run_scenario(&s, &mut m)
    };
    assert!(
        cuttle.batch_instructions() > asym.batch_instructions(),
        "cuttlesys {:.2e} should beat the asymmetric oracle {:.2e} at 50%",
        cuttle.batch_instructions(),
        asym.batch_instructions()
    );
}

#[test]
fn qos_holds_for_every_service_with_noise_and_phases() {
    for svc in latency::services() {
        let s = Scenario {
            cap: LoadPattern::Constant(0.7),
            duration_slices: 6,
            ..Scenario::paper_default()
        }
        .with_service(svc);
        let mut m = CuttleSysManager::for_scenario(&s);
        let record = run_scenario(&s, &mut m);
        assert_eq!(
            record.qos_violations(),
            0,
            "{} violated QoS under the realistic testbed",
            svc.name
        );
    }
}

#[test]
fn flicker_profiling_destroys_the_tail_cuttlesys_does_not() {
    let s = Scenario {
        noise: 0.03,
        phases: true,
        ..scenario(0.7)
    };
    let flicker = run_scenario(&s, &mut FlickerManager::new(&s, FlickerVariant::LcProfiled));
    let cuttle = {
        let mut m = CuttleSysManager::for_scenario(&s);
        run_scenario(&s, &mut m)
    };
    assert!(
        flicker.worst_tail_ratio() > 3.0,
        "flicker-a must blow the tail"
    );
    assert!(cuttle.worst_tail_ratio() <= 1.0, "cuttlesys must hold QoS");
}

#[test]
fn overload_triggers_relocation_and_recovery() {
    let s = Scenario {
        duration_slices: 10,
        noise: 0.0,
        phases: false,
        ..Scenario::paper_default()
    }
    .with_load(LoadPattern::paper_spike());
    let mut m = CuttleSysManager::for_scenario(&s);
    let record = run_scenario(&s, &mut m);
    let max_cores = record.slices.iter().map(|sl| sl.lc_cores()).max().unwrap();
    assert!(max_cores > 16, "the spike must force core reclamation");
    let last = record.slices.last().unwrap();
    assert_eq!(last.lc_cores(), 16, "reclaimed cores must be yielded back");
    assert!(!last.qos_violation(), "QoS must recover after the spike");
}

#[test]
fn runs_are_deterministic_for_a_fixed_seed() {
    // Wall-clock stage timings are measured from the host and legitimately
    // vary between runs; every decision (and every telemetry work counter)
    // must not. The evaluation-cache hit/miss split is the one other
    // scheduling-dependent counter: the cache releases its lock during the
    // underlying evaluation, so two threads racing on the same fresh point
    // both count a miss. The *values* returned stay bit-identical.
    fn strip_wall_clock(mut r: cuttlesys::types::RunRecord) -> cuttlesys::types::RunRecord {
        for slice in &mut r.slices {
            if let Some(t) = &mut slice.telemetry {
                t.profile_wall_ms = 0.0;
                t.reconstruct_wall_ms = 0.0;
                t.qos_wall_ms = 0.0;
                t.search_wall_ms = 0.0;
                t.repair_wall_ms = 0.0;
                t.cache_hits = 0;
                t.cache_misses = 0;
            }
        }
        r
    }
    let s = scenario(0.7);
    let a = {
        let mut m = CuttleSysManager::for_scenario(&s);
        run_scenario(&s, &mut m)
    };
    let b = {
        let mut m = CuttleSysManager::for_scenario(&s);
        run_scenario(&s, &mut m)
    };
    assert_eq!(strip_wall_clock(a), strip_wall_clock(b));
}

#[test]
fn different_mixes_give_different_but_valid_runs() {
    let base = scenario(0.7);
    let other = base.clone().with_mix(batch::mix(16, 999));
    let a = {
        let mut m = CuttleSysManager::for_scenario(&base);
        run_scenario(&base, &mut m)
    };
    let b = {
        let mut m = CuttleSysManager::for_scenario(&other);
        run_scenario(&other, &mut m)
    };
    assert_ne!(a.batch_instructions(), b.batch_instructions());
    assert_eq!(b.qos_violations(), 0);
}

#[test]
fn every_manager_respects_the_slice_protocol() {
    let s = scenario(0.7);
    let f = fixed(&s);
    let records = vec![
        run_scenario(&f, &mut NoGatingManager),
        run_scenario(
            &f,
            &mut CoreGatingManager::new(&f, GatingOrder::DescendingPower, false),
        ),
        run_scenario(
            &f,
            &mut AsymmetricManager::new(&f, AsymmetricMode::FixedBig(16)),
        ),
        run_scenario(&s, &mut FlickerManager::new(&s, FlickerVariant::LcPinned)),
    ];
    for r in records {
        assert_eq!(r.slices.len(), s.duration_slices, "{}", r.scheme);
        for sl in &r.slices {
            assert!(
                sl.total_instructions > 0.0,
                "{}: no work executed",
                r.scheme
            );
            assert!(sl.chip_watts > 0.0);
            assert_eq!(sl.batch_configs.len(), 16);
        }
    }
}
