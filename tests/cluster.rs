//! Cluster determinism and equivalence tests — the acceptance properties
//! for the two-level (coordinator over per-node agents) control plane:
//!
//! * a one-node cluster replays the single-node run bit-for-bit (the
//!   paper-default golden record pins that run in `tests/multi_tenant.rs`,
//!   and `tests/control_plane.rs` pins the core path against it);
//! * the same seed yields a bit-identical [`ClusterRecord`] whichever
//!   direction the serial stepper walks the node table and at every
//!   worker-pool width — nodes share nothing within a quantum, and the
//!   cross-node phases run serially in node-id order;
//! * a cross-node migration equals an explicit drain plus a directed
//!   admit after the modeled cost — the migration engine's two halves are
//!   literally those calls;
//! * 64 nodes × 10 tenants complete a full scenario inside tier-1 test
//!   time.
//!
//! Wall-clock stage timings are zeroed before comparison via
//! [`ClusterRecord::comparable`] — the same convention as
//! `tests/determinism.rs`.

use cluster::{
    BalanceConfig, ClusterConfig, ClusterCoordinator, ClusterError, ClusterRecord, ClusterScenario,
    NodeId, RelocationTarget,
};
use cuttlesys::control::ControlCore;
use cuttlesys::lifecycle::LifecycleState;
use cuttlesys::types::Scenario;
use util::WorkerPool;
use workloads::batch;
use workloads::loadgen::LoadPattern;

fn quiet(slices: usize) -> Scenario {
    Scenario {
        noise: 0.0,
        phases: false,
        duration_slices: slices,
        ..Scenario::quick_demo()
    }
}

/// A quiet base with admission headroom, so churn tests can move a tenant
/// between nodes without tripping the power budget.
fn roomy(slices: usize) -> Scenario {
    Scenario {
        cap: LoadPattern::Constant(2.0),
        ..quiet(slices)
    }
}

#[test]
fn a_one_node_cluster_replays_the_single_node_run_bit_for_bit() {
    let base = Scenario::paper_default();
    let scenario = ClusterScenario::uniform(&base, 1);

    let mut coordinator = ClusterCoordinator::new(&scenario);
    for _ in 0..base.duration_slices {
        coordinator.step_quantum().expect("cluster quantum");
    }
    coordinator.shutdown().expect("fleet drain");
    let record = coordinator.into_record();
    assert_eq!(record.quanta, base.duration_slices);
    assert_eq!(record.nodes.len(), 1);

    // The exact run the golden record pins: a bare control core on the
    // same scenario (node 0's seed salt is zero by construction).
    let mut core = ControlCore::new(&base);
    for _ in 0..base.duration_slices {
        core.step_quantum().expect("core quantum");
    }
    core.shutdown().expect("core drain");

    let node = record.nodes.into_iter().next().expect("one node");
    assert_eq!(
        node.comparable(),
        core.into_record().comparable(),
        "N=1 must be the exact degenerate case of the cluster"
    );
}

/// Builds a churny 4-node cluster — balancing on, one manual migration
/// mid-run — and drives it to completion with the given stepper.
fn churny_record(
    stepper: impl Fn(&mut ClusterCoordinator) -> Result<(), ClusterError>,
) -> ClusterRecord {
    let scenario = ClusterScenario::uniform(&roomy(4), 4);
    let config = ClusterConfig {
        balance: Some(BalanceConfig::default()),
        ..ClusterConfig::default()
    };
    let mut coordinator = ClusterCoordinator::with_config(&scenario, config);
    let app = batch::mix(1, 0xBEEF).apps[0];
    let mover = coordinator
        .register_batch_on(NodeId::from_index(0), "mover", app)
        .expect("roomy cap admits the mover");
    stepper(&mut coordinator).expect("quantum 0");
    coordinator
        .migrate(mover, NodeId::from_index(2))
        .expect("mover is live and movable");
    for _ in 1..4 {
        stepper(&mut coordinator).expect("quantum");
    }
    coordinator.shutdown().expect("fleet drain");
    coordinator.into_record().comparable()
}

#[test]
fn step_order_and_pool_width_are_immaterial() {
    let forward = churny_record(|c| c.step_quantum());
    let reverse = churny_record(|c| c.step_quantum_ordered(cluster::StepOrder::Reverse));
    assert_eq!(
        forward, reverse,
        "walking the node table backwards must not perturb the record"
    );
    for width in [1, 2, 4] {
        let pool = WorkerPool::new(width);
        let pooled = churny_record(|c| c.step_quantum_pooled(&pool));
        assert_eq!(
            forward, pooled,
            "a {width}-thread pool must match the serial stepper bit-for-bit"
        );
    }
}

#[test]
fn a_migration_equals_an_explicit_drain_plus_directed_admit() {
    let base = roomy(6);
    let scenario = ClusterScenario::uniform(&base, 2);
    let app = batch::mix(1, 0xBEEF).apps[0];
    let (n0, n1) = (NodeId::from_index(0), NodeId::from_index(1));
    // ClusterConfig::default() models a 2-quantum migration cost.
    let cost = cluster::MigrationConfig::default().cost_quanta;

    // Twin A: the migration engine.
    let mut a = ClusterCoordinator::new(&scenario);
    let mover = a.register_batch_on(n0, "mover", app).expect("admit");
    a.step_quantum().expect("q0");
    a.step_quantum().expect("q1");
    a.migrate(mover, n1).expect("mover is live and movable");
    assert_eq!(
        a.tenant_state(mover),
        Some(LifecycleState::Relocating(RelocationTarget::Node(n1))),
        "in flight, the cluster-visible state names the destination"
    );
    for q in 2..base.duration_slices {
        a.step_quantum().unwrap_or_else(|e| panic!("q{q}: {e}"));
    }
    assert_eq!(a.tenant_node(mover), Some(n1), "the move completed");
    a.shutdown().expect("fleet drain");
    let record_a = a.into_record().comparable();

    // Twin B: the same two halves, issued by hand — drain on the source,
    // wait out the modeled cost, admit on the destination.
    let mut b = ClusterCoordinator::new(&scenario);
    let mover_b = b.register_batch_on(n0, "mover", app).expect("admit");
    b.step_quantum().expect("q0");
    b.step_quantum().expect("q1");
    b.deregister(mover_b).expect("drain half");
    for q in 0..cost {
        b.step_quantum()
            .unwrap_or_else(|e| panic!("cost q{q}: {e}"));
    }
    b.register_batch_on(n1, "mover", app).expect("admit half");
    for q in 2 + cost..base.duration_slices {
        b.step_quantum().unwrap_or_else(|e| panic!("q{q}: {e}"));
    }
    b.shutdown().expect("fleet drain");
    let record_b = b.into_record().comparable();

    assert_eq!(
        record_a.nodes, record_b.nodes,
        "per-node records must agree: a migration IS a drain plus a directed admit"
    );
}

#[test]
fn sixty_four_nodes_with_ten_tenants_complete_a_full_scenario() {
    // 1 LC service + 9 batch jobs = 10 tenants per node; a short, quiet
    // horizon keeps 64 nodes inside tier-1 test time.
    let base = quiet(2).with_mix(batch::mix(9, 0xA5));
    assert_eq!(1 + base.num_batch(), 10);
    let scenario = ClusterScenario::uniform(&base, 64);

    let mut coordinator = ClusterCoordinator::new(&scenario);
    let pool = WorkerPool::new(4);
    while !coordinator.is_done() {
        coordinator.step_quantum_pooled(&pool).expect("quantum");
    }
    assert_eq!(coordinator.quantum(), base.duration_slices);
    let snapshot = coordinator.snapshot();
    assert_eq!(snapshot.nodes.len(), 64);
    assert!(snapshot.tenants.len() >= 64 * 10);

    coordinator.shutdown().expect("fleet drain");
    let record = coordinator.into_record();
    assert_eq!(record.nodes.len(), 64);
    for node in &record.nodes {
        assert_eq!(node.slices.len(), base.duration_slices);
    }
}
