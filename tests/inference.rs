//! Cross-crate inference tests: collaborative filtering against the
//! simulator's ground truth, and the SGD-vs-RBF comparison of Fig. 9.

use baselines::rbf::{job_features, RbfModel};
use cuttlesys::matrices::JobMatrices;
use recsys::{hogwild, sgd, RatingMatrix, Reconstructor, SgdConfig, ValueTransform};
use simulator::power::CoreKind;
use simulator::{Chip, JobConfig, SystemParams, NUM_JOB_CONFIGS};
use workloads::batch;
use workloads::oracle::Oracle;

fn oracle() -> Oracle {
    Oracle::new(Chip::new(SystemParams::default(), CoreKind::Reconfigurable))
}

fn mean_abs_pct(pred: &[f64], truth: &[f64]) -> f64 {
    pred.iter()
        .zip(truth)
        .map(|(p, t)| 100.0 * (p - t).abs() / t)
        .sum::<f64>()
        / truth.len() as f64
}

#[test]
fn two_samples_reconstruct_every_test_app_within_budget() {
    let o = oracle();
    let training: Vec<_> = batch::training_set().iter().map(|b| b.profile).collect();
    let hi = JobConfig::profiling_high().index();
    let lo = JobConfig::profiling_low().index();
    for app in batch::testing_set() {
        let truth_b = o.bips_row(&app.profile);
        let truth_w = o.power_row(&app.profile);
        let mut m = JobMatrices::new(o, &training, 1, 1);
        m.record_sample(1, hi, truth_b[hi], truth_w[hi]);
        m.record_sample(1, lo, truth_b[lo], truth_w[lo]);
        let preds = m.reconstruct(&Reconstructor::default(), &[0.8]);
        let err_b = mean_abs_pct(&preds.batch_bips[0], &truth_b);
        let err_w = mean_abs_pct(&preds.batch_watts[0], &truth_w);
        assert!(err_b < 20.0, "{}: throughput error {err_b:.1}%", app.name);
        assert!(err_w < 8.0, "{}: power error {err_w:.1}%", app.name);
    }
}

#[test]
fn sgd_beats_rbf_at_comparable_sample_budgets() {
    // Fig. 9: RBF with one extra sample still loses badly.
    let o = oracle();
    let training: Vec<_> = batch::training_set().iter().map(|b| b.profile).collect();
    let hi = JobConfig::profiling_high();
    let lo = JobConfig::profiling_low();
    let mid = JobConfig::from_index(NUM_JOB_CONFIGS / 2);

    let mut sgd_total = 0.0;
    let mut rbf_total = 0.0;
    for app in batch::testing_set() {
        let truth = o.bips_row(&app.profile);
        let truth_w = o.power_row(&app.profile);

        let xs: Vec<Vec<f64>> = [hi, lo, mid].iter().map(|c| job_features(*c)).collect();
        let ys: Vec<f64> = [hi, lo, mid].iter().map(|c| truth[c.index()]).collect();
        let rbf = RbfModel::fit(&xs, &ys).expect("3 samples fit");
        let rbf_pred: Vec<f64> = JobConfig::all()
            .map(|c| rbf.predict(&job_features(c)))
            .collect();
        rbf_total += mean_abs_pct(&rbf_pred, &truth);

        let mut m = JobMatrices::new(o, &training, 1, 1);
        m.record_sample(1, hi.index(), truth[hi.index()], truth_w[hi.index()]);
        m.record_sample(1, lo.index(), truth[lo.index()], truth_w[lo.index()]);
        let preds = m.reconstruct(&Reconstructor::default(), &[0.8]);
        sgd_total += mean_abs_pct(&preds.batch_bips[0], &truth);
    }
    assert!(
        rbf_total > sgd_total * 1.5,
        "RBF ({rbf_total:.0}) should be far worse than SGD ({sgd_total:.0})"
    );
}

#[test]
fn hogwild_quality_matches_serial_on_oracle_data() {
    // Build a real throughput matrix from the oracle, sparse live rows.
    let o = oracle();
    let training = batch::training_set();
    let testing = batch::testing_set();
    let mut m = RatingMatrix::new(training.len() + testing.len(), NUM_JOB_CONFIGS);
    for (r, app) in training.iter().enumerate() {
        m.fill_row(r, &o.bips_row(&app.profile));
    }
    let hi = JobConfig::profiling_high().index();
    let lo = JobConfig::profiling_low().index();
    for (i, app) in testing.iter().enumerate() {
        let truth = o.bips_row(&app.profile);
        m.set(training.len() + i, hi, truth[hi]);
        m.set(training.len() + i, lo, truth[lo]);
    }
    let logm = m.map(|v| v.ln());
    let config = SgdConfig {
        max_iters: 80,
        ..SgdConfig::default()
    };
    let serial = sgd::fit(
        &logm,
        &SgdConfig {
            convergence_tol: 0.0,
            ..config
        },
    );
    let parallel = hogwild::fit_parallel(&logm, &config, 4);
    // The dense training rows make every worker hammer the same column
    // factors, so the race penalty is larger than on sparse data; the
    // model must still land in the same quality regime.
    assert!(
        parallel.train_rmse <= serial.train_rmse * 4.0 + 1e-3,
        "hogwild RMSE {} vs serial {}",
        parallel.train_rmse,
        serial.train_rmse
    );
}

#[test]
fn tail_bucket_predictions_track_load() {
    let o = oracle();
    let training: Vec<_> = batch::training_set().iter().map(|b| b.profile).collect();
    let mut m = JobMatrices::new(o, &training, 1, 1);
    let narrow = JobConfig::profiling_low().index();
    let p_20 = m.reconstruct(&Reconstructor::default(), &[0.2]);
    let p_90 = m.reconstruct(&Reconstructor::default(), &[0.9]);
    assert!(
        p_90.lc[0].tail[narrow] > p_20.lc[0].tail[narrow] * 2.0,
        "the narrow config must look far worse at high load: {} vs {}",
        p_90.lc[0].tail[narrow],
        p_20.lc[0].tail[narrow]
    );
}

#[test]
fn log_transform_is_the_right_space_for_tails() {
    // Latency-like rows spanning decades: log-space completion must beat
    // linear-space completion.
    let rows = 12;
    let cols = 40;
    let truth =
        |r: usize, c: usize| 0.5 * (1.0 + 0.2 * (r as f64 * 0.7).sin()) * (0.12 * c as f64).exp();
    let mut m = RatingMatrix::new(rows, cols);
    for r in 0..10 {
        for c in 0..cols {
            m.set(r, c, truth(r, c));
        }
    }
    for r in 10..rows {
        m.set(r, 0, truth(r, 0));
        m.set(r, cols - 1, truth(r, cols - 1));
    }
    let rec = Reconstructor::default();
    let log_out = rec.complete(&m, ValueTransform::Log);
    let lin_out = rec.complete(&m, ValueTransform::Linear);
    let err = |out: &recsys::DenseMatrix| {
        let mut total = 0.0;
        for r in 10..rows {
            for c in 0..cols {
                total += (out.get(r, c) - truth(r, c)).abs() / truth(r, c);
            }
        }
        total
    };
    assert!(
        err(&log_out) < err(&lin_out),
        "log space should win on exponentials"
    );
}
