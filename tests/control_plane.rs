//! Control-plane equivalence and churn tests.
//!
//! The refactor contract for the service layer: running the manager as a
//! long-lived service must be *observation-equivalent* to the static
//! batch runs the golden record pins. Concretely:
//!
//! * a recorded registration trace replayed through a fresh
//!   [`ControlCore`] is bit-identical to the same trace driven through a
//!   live [`Service`] in manual pacing (same seed, same request sequence,
//!   same [`RunRecord`]);
//! * a trace whose registrations all land before slice 0 is bit-identical
//!   to the equivalent static [`Scenario`] run via `run_scenario` — the
//!   paper-default golden record therefore also pins the service path;
//! * a mid-run deregistration is bit-identical to declaring the same
//!   departure slice statically (drain removes a row, and row removal
//!   commutes with when it was requested).
//!
//! Mid-run *registration* is deliberately NOT claimed equivalent to a
//! static scenario with the job present from t=0: SGD completes every
//! batch row each quantum, so a row that exists earlier trains earlier.
//! Equivalence holds between live service and trace replay (same request
//! sequence), which is the property operators need for postmortems.
//!
//! Wall-clock stage timings are zeroed before comparison via
//! `service::comparable` — the same convention as `tests/determinism.rs`.

use cuttlesys::control::{ControlCore, TenantKind};
use cuttlesys::lifecycle::LifecycleState;
use cuttlesys::runtime::CuttleSysManager;
use cuttlesys::testbed::run_scenario;
use cuttlesys::types::{BatchJobSpec, JobSpec, Scenario};
use service::trace::RegistrationTrace;
use service::{comparable, ServiceBuilder};
use workloads::loadgen::LoadPattern;

fn quiet() -> Scenario {
    Scenario {
        noise: 0.0,
        phases: false,
        duration_slices: 4,
        ..Scenario::quick_demo()
    }
}

#[test]
fn a_step_only_trace_matches_the_static_scenario_bit_for_bit() {
    let scenario = Scenario::paper_default();
    let mut trace = RegistrationTrace::new();
    for _ in 0..scenario.duration_slices {
        trace.step();
    }

    let static_record = run_scenario(&scenario, &mut CuttleSysManager::for_scenario(&scenario));
    let replayed = trace.replay(&scenario).expect("replay runs");
    assert_eq!(
        comparable(replayed),
        comparable(static_record),
        "the service path must not perturb the golden-record run"
    );
}

#[test]
fn live_service_and_trace_replay_agree_on_a_churny_run() {
    let mut scenario = quiet();
    scenario.cap = LoadPattern::Constant(2.0); // headroom for one admission
    let newcomer = workloads::batch::mix(1, 0xBEEF).apps[0];

    // One registration before slice 0, two quanta, one deregistration of a
    // declared batch tenant, then the rest of the horizon.
    let mut trace = RegistrationTrace::new();
    trace.register("newcomer", newcomer);
    trace.step();
    trace.step();
    let declared_batch = {
        let core = ControlCore::new(&scenario);
        core.tenants()
            .iter()
            .enumerate()
            .find(|(_, t)| matches!(t.kind(), TenantKind::Batch { .. }))
            .map(|(i, _)| cuttlesys::control::TenantId::from_index(i))
            .expect("quick_demo declares a batch job")
    };
    trace.deregister(declared_batch);
    trace.step();
    trace.step();

    let service = ServiceBuilder::new(&scenario).start().expect("service");
    service.apply_trace(&trace).expect("live run");
    let live = service.shutdown().expect("clean shutdown");
    let replayed = trace.replay(&scenario).expect("replay runs");
    assert_eq!(comparable(live), comparable(replayed));
}

#[test]
fn mid_run_drain_matches_the_statically_declared_departure() {
    let scenario = quiet();
    // Find a declared batch tenant and the slice we will drain it at.
    let drain_at = 2usize;

    // Static twin: same scenario, with the batch job's departure declared.
    let mut declared = scenario.clone();
    let mut batch_seen = false;
    for job in declared.jobs.iter_mut() {
        if let JobSpec::Batch(BatchJobSpec { depart_slice, .. }) = job {
            if !batch_seen {
                *depart_slice = Some(drain_at);
                batch_seen = true;
            }
        }
    }
    assert!(batch_seen, "quick_demo declares a batch job");
    let static_record = run_scenario(&declared, &mut CuttleSysManager::for_scenario(&declared));

    // Live twin: same departure requested through the control plane. The
    // driver schedules a deregistration at the *next* slice boundary, so
    // request it after quantum `drain_at - 1`.
    let mut core = ControlCore::new(&scenario);
    let tenant = core
        .tenants()
        .iter()
        .enumerate()
        .find(|(_, t)| matches!(t.kind(), TenantKind::Batch { .. }))
        .map(|(i, _)| cuttlesys::control::TenantId::from_index(i))
        .expect("quick_demo declares a batch job");
    for slice in 0..scenario.duration_slices {
        if slice == drain_at {
            core.deregister(tenant).expect("drain accepted");
        }
        core.step_quantum().expect("quantum");
    }
    assert_eq!(
        core.tenant(tenant).expect("tenant").state(),
        LifecycleState::Retired
    );
    assert_eq!(comparable(core.into_record()), comparable(static_record));
}

#[test]
fn replaying_the_same_trace_twice_is_bit_identical() {
    let scenario = quiet();
    let mut trace = RegistrationTrace::new();
    for _ in 0..scenario.duration_slices {
        trace.step();
    }
    let a = trace.replay(&scenario).expect("first replay");
    let b = trace.replay(&scenario).expect("second replay");
    assert_eq!(comparable(a), comparable(b));
}
