//! Fleet fault-tolerance acceptance tests — the properties PR 8's health
//! layer must hold:
//!
//! * a scheduled node crash replays bit-for-bit whichever direction the
//!   serial stepper walks the node table and at every worker-pool width
//!   (fault injection, detection, and evacuation all live in the serial
//!   node-id-ordered phases, so pooling cannot reorder them);
//! * every tenant homed on a killed node is accounted for by the event
//!   log — evacuated to a surviving node or parked displaced — never
//!   silently dropped;
//! * a deliberate maintenance drain equals a crash the detector catches
//!   in one quantum: same evacuation quantum, same destinations, and the
//!   surviving nodes' records match bit-for-bit;
//! * a blacked-out node (alive but unobservable) is evacuated while
//!   silent, then rejoins without duplicating tenants — the coordinator
//!   reconciles the stale local rows it abandoned;
//! * sustained placement infeasibility after capacity loss engages
//!   degraded mode exactly once (hysteresis, no flapping), shedding
//!   frees capacity for the displaced queue, and the fleet recovers;
//! * [`FleetFaultPlan::none`] is a bit-for-bit no-op against the
//!   single-node golden run.
//!
//! Wall-clock stage timings are zeroed before comparison via
//! [`ClusterRecord::comparable`], as in `tests/cluster.rs`.

use cluster::{
    ClusterConfig, ClusterCoordinator, ClusterError, ClusterEvent, ClusterRecord, ClusterScenario,
    ClusterTenantId, FleetFaultPlan, HealthConfig, NodeHealth, NodeId,
};
use cuttlesys::control::ControlCore;
use cuttlesys::types::{JobSpec, Scenario};
use util::WorkerPool;
use workloads::loadgen::LoadPattern;

fn quiet(slices: usize) -> Scenario {
    Scenario {
        noise: 0.0,
        phases: false,
        duration_slices: slices,
        ..Scenario::quick_demo()
    }
}

/// A quiet base with admission headroom, so evacuees from a dead node
/// fit on the survivors without tripping the power budget.
fn roomy(slices: usize) -> Scenario {
    Scenario {
        cap: LoadPattern::Constant(2.0),
        ..quiet(slices)
    }
}

fn n(index: usize) -> NodeId {
    NodeId::from_index(index)
}

/// Run a whole scenario under a fault plan with the given stepper and
/// return the comparable record plus the full cluster event log.
fn run_with_plan(
    base: &Scenario,
    nodes: usize,
    config: ClusterConfig,
    plan: FleetFaultPlan,
    stepper: impl Fn(&mut ClusterCoordinator) -> Result<(), ClusterError>,
) -> (ClusterRecord, Vec<ClusterEvent>) {
    let scenario = ClusterScenario::uniform(base, nodes);
    let mut coordinator = ClusterCoordinator::with_faults(&scenario, config, plan);
    let mut events = Vec::new();
    for quantum in 0..base.duration_slices {
        stepper(&mut coordinator).unwrap_or_else(|e| panic!("quantum {quantum}: {e}"));
        events.extend(coordinator.drain_events());
    }
    coordinator.shutdown().expect("fleet drain");
    events.extend(coordinator.drain_events());
    (coordinator.into_record().comparable(), events)
}

/// The tenant ids seeded on `node` at construction time, before any
/// stepping (and therefore before any fault can move them).
fn seeded_on(base: &Scenario, nodes: usize, node: NodeId) -> Vec<ClusterTenantId> {
    let scenario = ClusterScenario::uniform(base, nodes);
    let coordinator = ClusterCoordinator::new(&scenario);
    let snapshot = coordinator.snapshot();
    (0..snapshot.tenants.len())
        .filter(|&i| snapshot.tenants[i].node == node)
        .map(ClusterTenantId::from_index)
        .collect()
}

#[test]
fn a_node_crash_replays_bit_for_bit_at_any_step_order_and_pool_width() {
    let base = roomy(8);
    let plan = FleetFaultPlan::none().with_crash(n(1), 2);
    let config = ClusterConfig::default();

    let forward = run_with_plan(&base, 4, config, plan.clone(), |c| {
        c.step_quantum_ordered(cluster::StepOrder::Forward)
    });
    let reverse = run_with_plan(&base, 4, config, plan.clone(), |c| {
        c.step_quantum_ordered(cluster::StepOrder::Reverse)
    });
    assert_eq!(forward, reverse, "step order changed a faulted run");

    for width in [1, 2, 8] {
        let pool = WorkerPool::new(width);
        let pooled = run_with_plan(&base, 4, config, plan.clone(), |c| {
            c.step_quantum_pooled(&pool)
        });
        assert_eq!(forward, pooled, "pool width {width} changed a faulted run");
    }

    // The crashed node froze at the crash quantum and never stepped again.
    assert_eq!(forward.0.nodes[1].slices.len(), 2);
    assert!(forward.0.nodes[0].slices.len() > 2);
}

#[test]
fn a_killed_node_loses_no_tenants_the_event_log_cannot_account_for() {
    let base = roomy(8);
    let doomed = seeded_on(&base, 4, n(1));
    assert!(!doomed.is_empty(), "node 1 seeds no tenants");

    let plan = FleetFaultPlan::none().with_crash(n(1), 2);
    let (_, events) = run_with_plan(&base, 4, ClusterConfig::default(), plan, |c| {
        c.step_quantum()
    });

    for id in &doomed {
        let accounted = events.iter().any(|e| match e {
            ClusterEvent::Evacuated { tenant, from, .. } => tenant == id && *from == n(1),
            ClusterEvent::Displaced { tenant, from, .. } => tenant == id && *from == n(1),
            _ => false,
        });
        assert!(
            accounted,
            "tenant {id:?} vanished from node 1 without a trace"
        );
    }
    // With headroom on three survivors, nothing should stay parked.
    let evacuated = events
        .iter()
        .filter(|e| matches!(e, ClusterEvent::Evacuated { from, .. } if *from == n(1)))
        .count();
    assert_eq!(
        evacuated,
        doomed.len(),
        "a roomy fleet should absorb every evacuee"
    );
}

#[test]
fn a_drain_equals_a_crash_the_detector_catches_in_one_quantum() {
    let base = roomy(8);
    let config = ClusterConfig {
        health: HealthConfig {
            down_after: 1,
            ..HealthConfig::default()
        },
        ..ClusterConfig::default()
    };

    let drained = run_with_plan(
        &base,
        4,
        config,
        FleetFaultPlan::none().with_drain(n(1), 2),
        |c| c.step_quantum(),
    );
    let crashed = run_with_plan(
        &base,
        4,
        config,
        FleetFaultPlan::none().with_crash(n(1), 2),
        |c| c.step_quantum(),
    );

    // Both evacuate in quantum 2 with identical candidate state, so the
    // evacuees land on the same destinations...
    let destinations = |events: &[ClusterEvent]| -> Vec<(ClusterTenantId, NodeId, usize)> {
        events
            .iter()
            .filter_map(|e| match e {
                ClusterEvent::Evacuated {
                    tenant,
                    to,
                    quantum,
                    ..
                } => Some((*tenant, *to, *quantum)),
                _ => None,
            })
            .collect()
    };
    let drain_dests = destinations(&drained.1);
    assert!(!drain_dests.is_empty(), "the drain evacuated nothing");
    assert_eq!(drain_dests, destinations(&crashed.1));

    // ...and the surviving nodes' histories are bit-identical. Only the
    // dead node differs: a drain shuts its control plane down cleanly, a
    // crash freezes it mid-scenario.
    for i in [0, 2, 3] {
        assert_eq!(
            drained.0.nodes[i], crashed.0.nodes[i],
            "survivor node {i} diverged between drain and crash"
        );
    }
    // A deliberate drain is announced and displaces nothing.
    assert!(drained
        .1
        .iter()
        .any(|e| matches!(e, ClusterEvent::NodeDrained { node, quantum } if *node == n(1) && *quantum == 2)));
    assert!(!drained
        .1
        .iter()
        .any(|e| matches!(e, ClusterEvent::Displaced { .. })));
}

#[test]
fn a_blacked_out_node_rejoins_without_duplicate_tenants() {
    let base = roomy(12);
    let config = ClusterConfig {
        health: HealthConfig {
            down_after: 2,
            recover_after: 2,
            ..HealthConfig::default()
        },
        ..ClusterConfig::default()
    };
    let plan = FleetFaultPlan::none().with_blackout(n(1), 2, 5);

    let scenario = ClusterScenario::uniform(&base, 3);
    let mut coordinator = ClusterCoordinator::with_faults(&scenario, config, plan);
    let mut events = Vec::new();
    for quantum in 0..base.duration_slices {
        coordinator
            .step_quantum()
            .unwrap_or_else(|e| panic!("quantum {quantum}: {e}"));
        events.extend(coordinator.drain_events());
    }

    // The silent window walked the whole state machine and came back.
    let transitions: Vec<(NodeHealth, NodeHealth)> = events
        .iter()
        .filter_map(|e| match e {
            ClusterEvent::NodeHealthChanged { node, from, to, .. } if *node == n(1) => {
                Some((*from, *to))
            }
            _ => None,
        })
        .collect();
    assert!(
        transitions.iter().any(|(_, to)| to.is_down()),
        "the blackout was never detected: {transitions:?}"
    );
    assert_eq!(
        coordinator.node_health(n(1)),
        Some(NodeHealth::Up),
        "node 1 never rejoined"
    );

    // While silent the node was evacuated, yet it kept stepping its stale
    // local rows (split brain). After the rejoin reconciliation those
    // stale rows drain, so every live batch tenant owns exactly one live
    // local row fleet-wide.
    assert!(events
        .iter()
        .any(|e| matches!(e, ClusterEvent::Evacuated { from, .. } if *from == n(1))));
    let snapshot = coordinator.snapshot();
    assert_eq!(snapshot.in_flight, 0);
    assert_eq!(snapshot.displaced, 0);
    let cluster_live_batch = snapshot
        .tenants
        .iter()
        .filter(|t| t.kind == "batch" && t.state.is_live())
        .count();
    let local_live_batch: usize = snapshot
        .nodes
        .iter()
        .map(|node| {
            node.tenants
                .iter()
                .filter(|t| t.kind == "batch" && t.state.is_live())
                .count()
        })
        .sum();
    assert_eq!(
        local_live_batch, cluster_live_batch,
        "a rejoined node duplicated (or dropped) batch rows"
    );

    coordinator.shutdown().expect("fleet drain");
}

#[test]
fn sustained_infeasibility_engages_degraded_mode_once_and_recovery_disengages_it() {
    // Tight admission with a small batch population: the survivor absorbs
    // part of the dead node's load, the rest is displaced until degraded
    // mode sheds the survivor's own batch work to make room.
    let mut base = quiet(12);
    let mut batch_kept = 0;
    base.jobs.retain(|job| match job {
        JobSpec::Batch(_) => {
            batch_kept += 1;
            batch_kept <= 4
        }
        _ => true,
    });
    let config = ClusterConfig {
        health: HealthConfig {
            down_after: 2,
            retry_base: 1,
            retry_cap: 2,
            degrade_after: 2,
            restore_after: 2,
            ..HealthConfig::default()
        },
        ..ClusterConfig::default()
    };
    let plan = FleetFaultPlan::none().with_crash(n(1), 2);

    let scenario = ClusterScenario::uniform(&base, 2);
    let mut coordinator = ClusterCoordinator::with_faults(&scenario, config, plan);
    let mut events = Vec::new();
    for quantum in 0..base.duration_slices {
        coordinator
            .step_quantum()
            .unwrap_or_else(|e| panic!("quantum {quantum}: {e}"));
        events.extend(coordinator.drain_events());
    }

    let degraded = events
        .iter()
        .filter(|e| matches!(e, ClusterEvent::FleetDegraded { .. }))
        .count();
    let recovered = events
        .iter()
        .filter(|e| matches!(e, ClusterEvent::FleetRecovered { .. }))
        .count();
    assert_eq!(degraded, 1, "degraded mode flapped: {events:?}");
    assert_eq!(recovered, 1, "the fleet never recovered: {events:?}");
    assert!(!coordinator.is_degraded());
    assert_eq!(coordinator.displaced_tenants(), 0, "tenants left parked");

    // Displacement happened (that is what degraded the fleet), and every
    // displaced tenant was eventually placed somewhere.
    let parked: Vec<ClusterTenantId> = events
        .iter()
        .filter_map(|e| match e {
            ClusterEvent::Displaced { tenant, .. } => Some(*tenant),
            _ => None,
        })
        .collect();
    assert!(
        !parked.is_empty(),
        "nothing was displaced, the test is vacuous"
    );
    for id in &parked {
        assert!(
            events
                .iter()
                .any(|e| matches!(e, ClusterEvent::Evacuated { tenant, .. } if tenant == id)),
            "displaced tenant {id:?} was never re-placed"
        );
    }

    coordinator.shutdown().expect("fleet drain");
}

#[test]
fn a_clean_fault_plan_is_a_bit_for_bit_no_op() {
    let base = Scenario::paper_default();
    let scenario = ClusterScenario::uniform(&base, 1);
    let plan = FleetFaultPlan::none();
    assert!(plan.is_clean());

    let mut coordinator =
        ClusterCoordinator::with_faults(&scenario, ClusterConfig::default(), plan);
    let mut events = Vec::new();
    for _ in 0..base.duration_slices {
        coordinator.step_quantum().expect("cluster quantum");
        events.extend(coordinator.drain_events());
    }
    coordinator.shutdown().expect("fleet drain");
    events.extend(coordinator.drain_events());

    // No health, fault, or displacement traffic on a clean plan — only
    // the per-node control events the single-node run would emit.
    assert!(
        events.iter().all(|e| matches!(e, ClusterEvent::Node(_))),
        "a clean plan emitted fleet events"
    );

    // And node 0 replays the bare single-node golden run bit-for-bit.
    let node = coordinator
        .into_record()
        .nodes
        .into_iter()
        .next()
        .expect("one node");
    let mut core = ControlCore::new(&base);
    for _ in 0..base.duration_slices {
        core.step_quantum().expect("core quantum");
    }
    core.shutdown().expect("core drain");
    assert_eq!(
        node.comparable(),
        core.into_record().comparable(),
        "a clean fault plan perturbed the single-node run"
    );
}
