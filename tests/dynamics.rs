//! Integration tests for the dynamic behaviours of §VIII-D and the
//! additional baselines: load following, cap steps, trace-driven load, and
//! the open-loop vs closed-loop comparison.

use cuttlesys::managers::FeedbackManager;
use cuttlesys::testbed::run_scenario;
use cuttlesys::types::Scenario;
use cuttlesys::CuttleSysManager;
use simulator::power::CoreKind;
use workloads::loadgen::LoadPattern;

fn base() -> Scenario {
    Scenario {
        duration_slices: 10,
        noise: 0.0,
        phases: false,
        ..Scenario::paper_default()
    }
}

#[test]
fn diurnal_load_following_widens_and_narrows_the_service() {
    let s = base().with_load(LoadPattern::paper_diurnal());
    let mut m = CuttleSysManager::for_scenario(&s);
    let record = run_scenario(&s, &mut m);
    assert_eq!(record.qos_violations(), 0, "{record:#?}");
    // The LC configuration at the load peak must be wider than in the
    // final low-load slices.
    let peak = &record.slices[5];
    let quiet = record.slices.last().unwrap();
    assert!(
        peak.lc_config().core.total_lanes() > quiet.lc_config().core.total_lanes(),
        "peak {} vs quiet {}",
        peak.lc_config(),
        quiet.lc_config()
    );
    // Freed power flows to the batch jobs when the service is quiet.
    assert!(quiet.batch_gmean_bips > peak.batch_gmean_bips);
}

#[test]
fn cap_steps_shift_power_between_phases() {
    let s = Scenario {
        cap: LoadPattern::Steps(vec![(0.0, 0.9), (0.3, 0.6), (0.7, 0.9)]),
        ..base()
    };
    let mut m = CuttleSysManager::for_scenario(&s);
    let record = run_scenario(&s, &mut m);
    // During the 60% phase, chip power must come down to the new cap.
    for sl in &record.slices[4..7] {
        assert!(
            sl.chip_watts <= sl.cap_watts * 1.03,
            "power {} must track the reduced cap {}",
            sl.chip_watts,
            sl.cap_watts
        );
    }
    // And the batch jobs recover when the cap is restored.
    let during = record.slices[5].batch_instructions;
    let after = record.slices[9].batch_instructions;
    assert!(after > during * 1.2, "restored cap must restore throughput");
    assert_eq!(record.qos_violations(), 0);
}

#[test]
fn trace_driven_load_is_followed() {
    let s = base().with_load(LoadPattern::from_trace(
        0.1,
        vec![0.3, 0.3, 0.5, 0.7, 0.9, 0.9, 0.6, 0.4, 0.3, 0.3],
    ));
    let mut m = CuttleSysManager::for_scenario(&s);
    let record = run_scenario(&s, &mut m);
    assert_eq!(record.qos_violations(), 0);
    // Load values recorded per slice must match the trace.
    assert!((record.slices[0].load() - 0.3).abs() < 1e-9);
    assert!((record.slices[4].load() - 0.9).abs() < 1e-9);
}

#[test]
fn feedback_controller_lags_cap_steps_where_cuttlesys_does_not() {
    let cap = LoadPattern::Steps(vec![(0.0, 0.9), (0.3, 0.6), (0.7, 0.9)]);
    let s = Scenario {
        cap: cap.clone(),
        ..base()
    };
    let fixed = Scenario {
        kind: CoreKind::Fixed,
        cap,
        ..base()
    };
    let pid = run_scenario(&fixed, &mut FeedbackManager::new(&fixed));
    let cuttle = {
        let mut m = CuttleSysManager::for_scenario(&s);
        run_scenario(&s, &mut m)
    };
    let overs = |r: &cuttlesys::types::RunRecord| {
        r.slices
            .iter()
            .filter(|sl| sl.chip_watts > sl.cap_watts * 1.02)
            .count()
    };
    assert!(
        overs(&pid) > overs(&cuttle),
        "the PID must spend more slices above the cap (pid {}, cuttlesys {})",
        overs(&pid),
        overs(&cuttle)
    );
}

#[test]
fn transition_costs_are_negligible_at_the_paper_quantum() {
    let mut cheap = base();
    cheap.params.reconfig_transition_us = 0.0;
    let mut costly = base();
    costly.params.reconfig_transition_us = 100.0;
    let a = {
        let mut m = CuttleSysManager::for_scenario(&cheap);
        run_scenario(&cheap, &mut m)
    };
    let b = {
        let mut m = CuttleSysManager::for_scenario(&costly);
        run_scenario(&costly, &mut m)
    };
    let ratio = b.batch_instructions() / a.batch_instructions();
    assert!(
        ratio > 0.98,
        "100 us transitions must cost <2% at 100 ms quanta: {ratio}"
    );
}

#[test]
fn dvfs_ladder_integrates_with_the_batch_catalog() {
    // Smoke-level integration of the DVFS substrate against real profiles:
    // monotone frontiers for every catalog application.
    let params = simulator::SystemParams::default();
    let model = simulator::DvfsModel::new(params);
    let ladder = simulator::DvfsLadder::modern(&params);
    for app in workloads::batch::catalog() {
        let frontier = model.frontier(&app.profile, simulator::CacheAlloc::Two, &ladder);
        for pair in frontier.windows(2) {
            assert!(
                pair[0].0 >= pair[1].0 - 1e-9,
                "{}: bips not monotone",
                app.name
            );
            assert!(
                pair[0].1 >= pair[1].1 - 1e-9,
                "{}: watts not monotone",
                app.name
            );
        }
    }
}
