//! Integration tests for the multi-tenant job model: several
//! latency-critical services with independent QoS targets, batch-job churn,
//! and the guarantee that the paper's single-service setup is reproduced
//! *exactly* as the N=1 special case.

use baselines::gating::GatingOrder;
use cuttlesys::managers::CoreGatingManager;
use cuttlesys::testbed::run_scenario;
use cuttlesys::types::{BatchJobSpec, JobSpec, Scenario};
use cuttlesys::CuttleSysManager;
use simulator::power::CoreKind;
use workloads::batch;

#[test]
fn two_services_hold_their_own_qos_targets_under_a_tight_cap() {
    let s = Scenario::two_service();
    let mut m = CuttleSysManager::for_scenario(&s);
    let record = run_scenario(&s, &mut m);

    // Every slice reports ground truth for both tenants, against each
    // tenant's own QoS target.
    for sl in &record.slices {
        assert_eq!(sl.lc.len(), 2);
        assert_eq!(sl.lc[0].service, "xapian");
        assert_eq!(sl.lc[1].service, "masstree");
        assert_ne!(sl.lc[0].qos_ms, sl.lc[1].qos_ms);
    }
    assert_eq!(record.qos_violations_for(0), 0, "xapian violated QoS");
    assert_eq!(record.qos_violations_for(1), 0, "masstree violated QoS");
    assert!(record.batch_instructions() > 0.0);
}

#[test]
fn cuttlesys_beats_core_gating_with_two_tenants() {
    // A full chip — two 8-core tenants plus 16 batch jobs — makes the 70%
    // cap bind, so core gating has to switch whole jobs off while
    // CuttleSys shaves partial cores from both tenants instead.
    let s = Scenario::two_service().with_mix(batch::mix(16, 0xC0FFEE));
    let f = Scenario {
        kind: CoreKind::Fixed,
        ..s.clone()
    };
    let gating = run_scenario(
        &f,
        &mut CoreGatingManager::new(&f, GatingOrder::DescendingPower, true),
    );
    let cuttle = {
        let mut m = CuttleSysManager::for_scenario(&s);
        run_scenario(&s, &mut m)
    };
    assert!(
        cuttle.batch_instructions() > gating.batch_instructions(),
        "cuttlesys {:.2e} must beat core gating {:.2e} with two tenants",
        cuttle.batch_instructions(),
        gating.batch_instructions()
    );
    assert_eq!(cuttle.qos_violations(), 0);
}

#[test]
fn batch_churn_frees_and_reuses_resources() {
    // Job 0 departs after slice 3; a fresh job arrives at slice 3.
    let mut s = Scenario {
        duration_slices: 6,
        ..Scenario::paper_default()
    };
    let mut batch_seen = 0;
    for job in &mut s.jobs {
        if let JobSpec::Batch(b) = job {
            if batch_seen == 0 {
                b.depart_slice = Some(3);
            }
            batch_seen += 1;
        }
    }
    let newcomer = batch::mix(1, 0xBEEF).apps[0];
    s.jobs.push(JobSpec::Batch(BatchJobSpec {
        arrive_slice: 3,
        ..BatchJobSpec::resident(newcomer)
    }));

    let mut m = CuttleSysManager::for_scenario(&s);
    let record = run_scenario(&s, &mut m);
    let last_new = s.num_batch() - 1;

    for (i, sl) in record.slices.iter().enumerate() {
        // Global job indexing: 1 LC tenant, then the batch jobs.
        let departed_instr = sl.per_job_instructions[1];
        let newcomer_instr = sl.per_job_instructions[1 + last_new];
        if i < 3 {
            assert!(departed_instr > 0.0, "slice {i}: job 0 should run");
            assert_eq!(newcomer_instr, 0.0, "slice {i}: newcomer not yet here");
            assert!(sl.batch_configs[0].is_some());
        } else {
            assert_eq!(departed_instr, 0.0, "slice {i}: departed job must stop");
            assert!(
                sl.batch_configs[0].is_none(),
                "slice {i}: departed job's core and cache ways must be reclaimed"
            );
            assert!(newcomer_instr > 0.0, "slice {i}: newcomer should run");
        }
    }
    assert_eq!(record.qos_violations(), 0);
}

/// The paper's setup as the exact N=1 special case: the decisions, the
/// measured tail, the chip power, and the executed instructions of
/// `Scenario::paper_default()` are pinned bit-for-bit. Any change to the
/// multi-tenant generalization that perturbs the single-service path —
/// an RNG draw reordered, a seed derived differently, a loop refactored —
/// trips this immediately.
#[test]
fn paper_default_run_is_bit_identical_to_the_pinned_golden_record() {
    // (lc_cores, lc_config, batch configs (-1 = gated), tail bits,
    //  chip-watts bits, total-instruction bits) per slice.
    #[rustfmt::skip]
    let golden: [(usize, usize, [i64; 16], u64, u64, u64); 10] = [
        (16, 107, [5, 4, 17, 55, 20, 6, 21, 17, 54, 55, 8, 19, 4, 54, 10, 42],
         0x400e5a12c118ceb2, 0x40550a6471b35980, 0x41f9471811e5f3a2),
        (16, 55, [70, 59, 68, 57, 106, 106, 107, 34, 58, 104, 69, 33, 105, 69, 94, 70],
         0x401316614f1a461b, 0x4055b67e39c9ab68, 0x41fdc0a65b191fd6),
        (16, 55, [91, 106, 69, 54, 70, 70, 106, 93, 105, 105, 105, 105, 105, 55, 70, 57],
         0x401316614f1a461b, 0x40562f18fc6d279a, 0x41ffe2a09490016f),
        (16, 55, [103, 70, 105, 54, 54, 105, 106, 66, 105, 105, 105, 105, 106, 54, 106, 70],
         0x401316614f1a461b, 0x40570a5cbc495b5c, 0x420090a4a58e950f),
        (16, 55, [102, 58, 107, 66, 94, 69, 70, 67, 105, 104, 66, 105, 93, 94, 104, 105],
         0x401316614f1a461b, 0x4056a7b9b10290dc, 0x41ff6e43f72241ce),
        (16, 55, [103, 93, 54, 66, 95, 106, 93, 33, 105, 104, 14, 105, 105, 68, 107, 57],
         0x401316614f1a461b, 0x4055f9e305ef7092, 0x41fe516d685c052a),
        (16, 55, [66, 58, 107, 106, 94, 93, 70, 67, 105, 94, 104, 105, 93, 94, 104, 93],
         0x401316614f1a461b, 0x4056510ea2e94763, 0x41fe96844c0e4e42),
        (16, 55, [103, 93, 54, 66, 71, 106, 105, 104, 94, 104, 67, 105, 106, 92, 104, 57],
         0x401316614f1a461b, 0x4056702a82b0fd1a, 0x4200b6ccd02d7e6c),
        (16, 55, [106, 22, 33, 70, 95, 107, 104, 59, 94, 104, 65, 105, 92, 105, 106, 56],
         0x401316614f1a461b, 0x4055f7c940c7bc4a, 0x41fd7c424c29c7fd),
        (16, 55, [102, 93, 92, 66, 95, 107, 105, 94, 94, 93, 105, 106, 93, 104, 10, 70],
         0x401316614f1a461b, 0x40568ddcd8374936, 0x4200410dd77cbb87),
    ];

    let s = Scenario::paper_default();
    let mut m = CuttleSysManager::for_scenario(&s);
    let record = run_scenario(&s, &mut m);
    assert_eq!(record.slices.len(), golden.len());
    for (i, (sl, g)) in record.slices.iter().zip(&golden).enumerate() {
        assert_eq!(sl.lc_cores(), g.0, "slice {i}: LC core count drifted");
        assert_eq!(
            sl.lc_config().index(),
            g.1,
            "slice {i}: LC configuration drifted"
        );
        let batch: Vec<i64> = sl
            .batch_configs
            .iter()
            .map(|c| c.map_or(-1, |c| c.index() as i64))
            .collect();
        assert_eq!(batch, g.2.to_vec(), "slice {i}: batch decisions drifted");
        assert_eq!(
            sl.tail_ms().to_bits(),
            g.3,
            "slice {i}: measured tail drifted"
        );
        assert_eq!(
            sl.chip_watts.to_bits(),
            g.4,
            "slice {i}: chip power drifted"
        );
        assert_eq!(
            sl.total_instructions.to_bits(),
            g.5,
            "slice {i}: executed instructions drifted"
        );
    }
}
