//! The sweep runner against the checked-in scenario fixtures.
//!
//! Three fixtures cover the contract from three sides:
//!
//! * `scenarios/smoke.json` — a 2-node cluster under clean and
//!   node-crash fleet profiles whose `summary.json` is pinned
//!   byte-for-byte against `tests/golden/sweep_smoke_summary.json`.
//! * `scenarios/collapse.json` — an engineered overload (flash crowd
//!   past saturation under a tight cap with flaky reconfiguration)
//!   that MUST trip detectors: a sweep that can't fail can't verify.
//! * `scenarios/soak.json` — the ≥100-run statistical fleet: every
//!   seeded run completes and every detector stays quiet.
//!
//! The residency-agreement test closes the loop between the detector
//! layer and the core runtime: the fraction the detector reports is
//! exactly `RunRecord::safe_mode_quanta / quanta` for the same run.

use cuttlesys::{run_scenario, CuttleSysManager};
use sweep::detectors::residency;
use sweep::{load_spec, run_sweep, summary_json};
use util::WorkerPool;

fn load_fixture(name: &str) -> sweep::SweepSpec {
    let path = format!("{}/scenarios/{name}.json", env!("CARGO_MANIFEST_DIR"));
    let text = std::fs::read_to_string(&path).expect("fixture exists");
    load_spec(&text).expect("fixture loads")
}

#[test]
fn smoke_summary_matches_the_pinned_golden_bytes() {
    let spec = load_fixture("smoke");
    let pool = WorkerPool::new(4);
    let outcome = run_sweep(&spec, &pool);
    let summary = format!("{}\n", summary_json(&spec, &outcome));
    let golden = include_str!("golden/sweep_smoke_summary.json");
    assert_eq!(
        summary, golden,
        "smoke summary drifted from tests/golden/sweep_smoke_summary.json; \
         every byte of a sweep summary is part of the determinism contract"
    );
    assert!(!outcome.tripped(), "the smoke fixture must pass");
}

#[test]
fn collapse_fixture_trips_detectors() {
    let spec = load_fixture("collapse");
    let pool = WorkerPool::new(2);
    let outcome = run_sweep(&spec, &pool);
    assert!(
        outcome.tripped(),
        "the engineered collapse must trip at least one detector"
    );
    // Specifically: sustained QoS violation under overload, and the
    // throughput cliff when the flash crowd hits.
    let tripped: Vec<&str> = outcome.cells[0].runs[0]
        .findings
        .iter()
        .filter(|f| f.tripped)
        .map(|f| f.detector)
        .collect();
    assert!(
        tripped.contains(&"qos_violation_streak"),
        "tripped: {tripped:?}"
    );
    let summary = summary_json(&spec, &outcome);
    assert_eq!(
        summary.get("verdict").and_then(|v| v.as_str()),
        Some("fail")
    );
}

#[test]
fn soak_fixture_executes_at_least_100_clean_runs() {
    let spec = load_fixture("soak");
    assert!(
        spec.total_runs() >= 100,
        "the soak fixture must describe at least 100 runs, got {}",
        spec.total_runs()
    );
    let pool = WorkerPool::new(4);
    let outcome = run_sweep(&spec, &pool);
    assert_eq!(outcome.total_runs(), spec.total_runs());
    for cell in &outcome.cells {
        assert_eq!(cell.runs.len(), spec.seeds.len());
        for run in &cell.runs {
            assert_eq!(run.metrics.quanta, spec.quanta, "every run completed");
            assert!(run.metrics.series.error.is_none());
        }
    }
    assert!(
        !outcome.tripped(),
        "the soak fleet must stay detector-quiet"
    );
}

#[test]
fn residency_detector_agrees_with_the_run_record() {
    // One lossy-sensors point from the soak grid, run twice: once
    // through the sweep and once directly through the core runtime.
    let spec = load_fixture("soak");
    let shape = &spec.load_shapes[0];
    let scenario = spec.scenario_for(shape, spec.caps[0], "lossy-sensors", 13);
    let mut manager = CuttleSysManager::for_scenario(&scenario)
        .with_perf(spec.overrides.perf)
        .with_resilience(spec.overrides.resilience);
    let record = run_scenario(&scenario, &mut manager);

    let mut probe = spec.clone();
    probe.seeds = vec![13];
    probe.fault_profiles = vec!["lossy-sensors".to_string()];
    probe.load_shapes = vec![shape.clone()];
    let pool = WorkerPool::new(1);
    let outcome = run_sweep(&probe, &pool);
    let run = &outcome.cells[0].runs[0];

    assert_eq!(run.metrics.safe_mode_quanta, record.safe_mode_quanta());
    assert_eq!(run.metrics.degraded_quanta, record.degraded_quanta());
    let finding = run
        .findings
        .iter()
        .find(|f| f.detector == "safe_mode_residency")
        .expect("residency finding present");
    let expected = residency(record.safe_mode_quanta(), record.slices.len());
    assert!(
        (finding.value - expected).abs() < 1e-12,
        "detector residency {} != record residency {expected}",
        finding.value
    );
}
