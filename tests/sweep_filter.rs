//! `sweep run --filter`: re-running a slice of the grid.
//!
//! The contract has three parts:
//!
//! * *selection* — the filter is a plain substring match against the
//!   exact cell label the pass/fail table prints, so a row copied out
//!   of a failing CI log re-runs that cell verbatim;
//! * *projection* — a filtered sweep's surviving cells are bit-identical
//!   to the same cells of the full sweep (same grid order, same seeds,
//!   same runs), because filtering happens before execution and every
//!   run is deterministic;
//! * *marking* — a filtered summary carries `"partial": true` and the
//!   filter text, and is therefore never byte-comparable with the
//!   golden full `summary.json`.

use sweep::{
    filter_grid, load_spec, run_sweep, run_sweep_cells, summary_json, summary_json_partial,
};
use util::WorkerPool;

fn smoke() -> sweep::SweepSpec {
    let path = format!("{}/scenarios/smoke.json", env!("CARGO_MANIFEST_DIR"));
    let text = std::fs::read_to_string(&path).expect("fixture exists");
    load_spec(&text).expect("fixture loads")
}

#[test]
fn filter_selects_by_label_substring() {
    let spec = smoke();
    // The smoke grid is steady × 0.7 × clean × {clean, node-crash}.
    let crash = filter_grid(&spec, "fleet=node-crash");
    assert_eq!(crash.len(), 1, "{:?}", crash);
    assert_eq!(crash[0].label(), "steady cap=0.7 fault=clean fleet=node-crash");
    // An empty filter keeps the whole grid; a miss keeps nothing.
    assert_eq!(filter_grid(&spec, "").len(), 2);
    assert!(filter_grid(&spec, "no such cell").is_empty());
}

#[test]
fn filtered_sweep_is_a_projection_of_the_full_sweep() {
    let spec = smoke();
    let pool = WorkerPool::new(2);
    let full = run_sweep(&spec, &pool);
    let partial = run_sweep_cells(&spec, &pool, filter_grid(&spec, "fleet=node-crash"));
    assert_eq!(partial.cells.len(), 1);
    let full_cell = full
        .cells
        .iter()
        .find(|c| c.cell.fleet_fault == "node-crash")
        .expect("the full sweep ran the node-crash cell");
    // Bit-identical: RunMetrics and findings derive PartialEq, and every
    // run is deterministic, so the filtered cell must match exactly.
    assert_eq!(&partial.cells[0], full_cell);
}

#[test]
fn partial_summary_is_marked_and_distinct_from_the_golden_shape() {
    let spec = smoke();
    let pool = WorkerPool::new(2);
    let cells = filter_grid(&spec, "fleet=node-crash");
    let outcome = run_sweep_cells(&spec, &pool, cells);
    let partial = summary_json_partial(&spec, &outcome, "fleet=node-crash");
    assert_eq!(partial.get("partial").and_then(|v| v.as_bool()), Some(true));
    assert_eq!(
        partial.get("filter").and_then(|v| v.as_str()),
        Some("fleet=node-crash")
    );
    // The marker fields sit right after the name, so even a filter that
    // happens to match the full grid yields a document that can never be
    // byte-equal to the golden summary.
    let text = partial.to_string();
    assert!(
        text.starts_with("{\"name\":\"smoke\",\"partial\":true,\"filter\":"),
        "marker fields must lead the document: {}",
        &text[..text.len().min(120)]
    );
    // And the unfiltered document stays exactly as the golden test pins it.
    let full = summary_json(&spec, &run_sweep(&spec, &pool));
    assert!(full.get("partial").is_none());
    assert!(full.get("filter").is_none());
}

#[test]
fn filtered_summary_counts_only_the_surviving_runs() {
    let spec = smoke();
    let pool = WorkerPool::new(2);
    let outcome = run_sweep_cells(&spec, &pool, filter_grid(&spec, "fleet=clean"));
    let doc = summary_json_partial(&spec, &outcome, "fleet=clean");
    assert_eq!(
        doc.get("total_runs").and_then(|v| v.as_usize()),
        Some(spec.seeds.len()),
        "one cell x three seeds"
    );
}
