//! Property-based tests over the core data structures and invariants,
//! spanning the simulator, queueing, search, and inference crates.
//!
//! The harness is a deterministic seeded-input loop (crates.io — and hence
//! `proptest` — is unavailable in the build container): each property runs
//! against `CASES` pseudo-random inputs from a fixed seed, so failures
//! reproduce exactly.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use recsys::{RatingMatrix, Reconstructor, ValueTransform};
use simulator::power::CoreKind;
use simulator::{
    AppProfile, CacheAlloc, Chip, CoreConfig, JobConfig, PerfModel, PowerModel, SystemParams,
    NUM_JOB_CONFIGS,
};
use workloads::queueing::MmcQueue;

/// Cases per property; inputs are drawn from a per-property fixed seed.
const CASES: usize = 128;

fn rng_for(property: &str) -> StdRng {
    // Stable per-property stream: hash the name into the master seed.
    let tag = property
        .bytes()
        .fold(0u64, |h, b| h.wrapping_mul(31).wrapping_add(b as u64));
    StdRng::seed_from_u64(0xC0FFEE ^ tag)
}

/// A valid application profile spanning the calibrated space.
fn arb_profile(rng: &mut StdRng) -> AppProfile {
    AppProfile {
        ilp: rng.random_range(0.5..5.5),
        fe_sensitivity: rng.random_range(0.0..1.0),
        be_sensitivity: rng.random_range(0.0..1.0),
        ls_sensitivity: rng.random_range(0.0..1.0),
        mem_fraction: rng.random_range(0.05..0.6),
        l1_miss_rate: rng.random_range(0.005..0.5),
        llc_miss_floor: rng.random_range(0.0..0.9),
        llc_working_set_ways: rng.random_range(0.2..12.0),
        mlp: rng.random_range(1.0..9.0),
        activity: rng.random_range(0.4..1.4),
    }
}

#[test]
fn job_config_index_roundtrips() {
    for idx in 0..NUM_JOB_CONFIGS {
        let jc = JobConfig::from_index(idx);
        assert_eq!(jc.index(), idx);
    }
}

#[test]
fn generated_profiles_validate() {
    let mut rng = rng_for("generated_profiles_validate");
    for _ in 0..CASES {
        let profile = arb_profile(&mut rng);
        assert!(
            profile.validate().is_ok(),
            "profile failed validation: {profile:?}"
        );
    }
}

#[test]
fn ipc_is_positive_and_within_structural_caps() {
    let mut rng = rng_for("ipc_is_positive_and_within_structural_caps");
    let perf = PerfModel::new(SystemParams::default());
    for _ in 0..CASES {
        let profile = arb_profile(&mut rng);
        let jc = JobConfig::from_index(rng.random_range(0..NUM_JOB_CONFIGS));
        let contention = rng.random_range(0.0..6.0);
        let ipc = perf.ipc(&profile, jc.core, jc.cache.ways(), contention);
        assert!(ipc > 0.0);
        assert!(ipc <= f64::from(jc.core.fe.lanes()) + 1e-9);
        assert!(ipc <= f64::from(jc.core.be.lanes()) + 1e-9);
    }
}

#[test]
fn widest_config_dominates_every_other() {
    let mut rng = rng_for("widest_config_dominates_every_other");
    let perf = PerfModel::new(SystemParams::default());
    for _ in 0..CASES {
        let profile = arb_profile(&mut rng);
        let jc = JobConfig::from_index(rng.random_range(0..NUM_JOB_CONFIGS));
        let this = perf.ipc(&profile, jc.core, jc.cache.ways(), 0.0);
        let widest = perf.ipc(&profile, CoreConfig::widest(), CacheAlloc::Four.ways(), 0.0);
        assert!(widest >= this - 1e-9, "widest {widest} < {this} at {jc:?}");
    }
}

#[test]
fn power_is_positive_and_increases_with_width() {
    let mut rng = rng_for("power_is_positive_and_increases_with_width");
    let power = PowerModel::new(SystemParams::default(), CoreKind::Reconfigurable);
    for _ in 0..CASES {
        let profile = arb_profile(&mut rng);
        let ipc = rng.random_range(0.0..6.0);
        let narrow = power
            .core_watts(&profile, CoreConfig::narrowest(), ipc)
            .get();
        let wide = power.core_watts(&profile, CoreConfig::widest(), ipc).get();
        assert!(narrow > 0.0);
        assert!(wide > narrow);
    }
}

#[test]
fn contention_never_helps() {
    let mut rng = rng_for("contention_never_helps");
    let perf = PerfModel::new(SystemParams::default());
    for _ in 0..CASES {
        let profile = arb_profile(&mut rng);
        let jc = JobConfig::from_index(rng.random_range(0..NUM_JOB_CONFIGS));
        let (c1, c2) = (rng.random_range(0.0..3.0), rng.random_range(0.0..3.0));
        let (lo, hi) = if c1 <= c2 { (c1, c2) } else { (c2, c1) };
        let ipc_lo = perf.ipc(&profile, jc.core, jc.cache.ways(), lo);
        let ipc_hi = perf.ipc(&profile, jc.core, jc.cache.ways(), hi);
        assert!(ipc_hi <= ipc_lo + 1e-12);
    }
}

#[test]
fn queue_p99_exceeds_median_and_grows_with_load() {
    let mut rng = rng_for("queue_p99_exceeds_median_and_grows_with_load");
    for _ in 0..CASES {
        let servers = rng.random_range(1..32);
        let mu = rng.random_range(0.1..5.0);
        let (rho1, rho2) = (rng.random_range(0.05..0.9), rng.random_range(0.05..0.9));
        let (lo, hi) = if rho1 <= rho2 {
            (rho1, rho2)
        } else {
            (rho2, rho1)
        };
        let k = servers as f64;
        let q_lo = MmcQueue::new(servers, mu, lo * k * mu);
        let q_hi = MmcQueue::new(servers, mu, hi * k * mu);
        assert!(q_hi.p99_ms().get() >= q_lo.p99_ms().get() - 1e-9);
        assert!(q_lo.p99_ms().get() >= q_lo.response_quantile(0.5).get());
    }
}

#[test]
fn frame_power_and_instructions_are_consistent() {
    let mut rng = rng_for("frame_power_and_instructions_are_consistent");
    let chip = Chip::new(SystemParams::default(), CoreKind::Reconfigurable);
    // Frame simulation is the hot path; a reduced case count keeps the test
    // under a second without losing input diversity.
    for _ in 0..CASES / 4 {
        let profile = arb_profile(&mut rng);
        let jc = JobConfig::from_index(rng.random_range(0..NUM_JOB_CONFIGS));
        let ms = rng.random_range(0.5..100.0);
        let cores = vec![simulator::CoreState::Active {
            job: simulator::JobId(0),
            config: jc.core,
        }];
        let partition: simulator::LlcPartition =
            [(simulator::JobId(0), jc.cache)].into_iter().collect();
        let r = chip.simulate_frame(&cores, &[profile], &partition, ms);
        assert!(r.chip_watts.get() > 0.0);
        assert!(r.total_instructions() > 0.0);
        // Instructions scale linearly with duration.
        let r2 = chip.simulate_frame(&cores, &[profile], &partition, ms * 2.0);
        let ratio = r2.total_instructions() / r.total_instructions();
        assert!((ratio - 2.0).abs() < 1e-6);
    }
}

#[test]
fn completion_preserves_observations_and_stays_finite() {
    let mut rng = rng_for("completion_preserves_observations_and_stays_finite");
    for _ in 0..CASES / 8 {
        let seed_vals: Vec<f64> = (0..19).map(|_| rng.random_range(0.5..10.0)).collect();
        // 4 dense rows, 2 sparse rows over 4 columns.
        let mut m = RatingMatrix::new(6, 4);
        for (i, v) in seed_vals.iter().take(16).enumerate() {
            m.set(i / 4, i % 4, *v);
        }
        m.set(4, 0, seed_vals[16]);
        m.set(4, 3, seed_vals[17]);
        m.set(5, 1, seed_vals[18]);
        let out = Reconstructor::default().complete(&m, ValueTransform::Log);
        for (r, c, v) in m.observed() {
            assert_eq!(out.get(r, c), v);
        }
        for r in 0..6 {
            for c in 0..4 {
                assert!(out.get(r, c).is_finite());
                assert!(out.get(r, c) > 0.0);
            }
        }
    }
}

#[test]
fn dds_results_are_always_in_bounds() {
    let mut rng = rng_for("dds_results_are_always_in_bounds");
    for _ in 0..CASES / 4 {
        let dims = rng.random_range(1..20);
        let choices = rng.random_range(1..200);
        let seed = rng.random_range(0..1000) as u64;
        let space = dds::SearchSpace::new(dims, choices);
        let objective = move |x: &[usize]| -(x.iter().sum::<usize>() as f64);
        let params = dds::serial::DdsParams {
            max_iters: 30,
            initial_points: 5,
            seed,
            ..Default::default()
        };
        let result = dds::serial::search(&space, &objective, &params);
        assert!(space.contains(&result.best_point));
    }
}

#[test]
fn reflection_maps_any_value_into_range() {
    let mut rng = rng_for("reflection_maps_any_value_into_range");
    for _ in 0..CASES {
        let choices = rng.random_range(1..500);
        let value = rng.random_range(-1e4..1e4);
        let space = dds::SearchSpace::new(1, choices);
        assert!(
            space.reflect(value) < choices,
            "reflect({value}) out of range"
        );
    }
}
