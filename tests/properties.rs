//! Property-based tests over the core data structures and invariants,
//! spanning the simulator, queueing, search, and inference crates.

use proptest::prelude::*;
use recsys::{RatingMatrix, Reconstructor, ValueTransform};
use simulator::power::CoreKind;
use simulator::{
    AppProfile, CacheAlloc, Chip, CoreConfig, JobConfig, PerfModel, PowerModel, SystemParams,
    NUM_JOB_CONFIGS,
};
use workloads::queueing::MmcQueue;

/// A generator of valid application profiles spanning the calibrated space.
fn arb_profile() -> impl Strategy<Value = AppProfile> {
    (
        0.5..5.5f64,
        0.0..1.0f64,
        0.0..1.0f64,
        0.0..1.0f64,
        0.05..0.6f64,
        0.005..0.5f64,
        (0.0..0.9f64, 0.2..12.0f64, 1.0..9.0f64, 0.4..1.4f64),
    )
        .prop_map(|(ilp, fe, be, ls, mem, l1m, (floor, ws, mlp, act))| AppProfile {
            ilp,
            fe_sensitivity: fe,
            be_sensitivity: be,
            ls_sensitivity: ls,
            mem_fraction: mem,
            l1_miss_rate: l1m,
            llc_miss_floor: floor,
            llc_working_set_ways: ws,
            mlp,
            activity: act,
        })
}

proptest! {
    #[test]
    fn job_config_index_roundtrips(idx in 0..NUM_JOB_CONFIGS) {
        let jc = JobConfig::from_index(idx);
        prop_assert_eq!(jc.index(), idx);
    }

    #[test]
    fn generated_profiles_validate(profile in arb_profile()) {
        prop_assert!(profile.validate().is_ok());
    }

    #[test]
    fn ipc_is_positive_and_within_structural_caps(
        profile in arb_profile(),
        idx in 0..NUM_JOB_CONFIGS,
        contention in 0.0..6.0f64,
    ) {
        let perf = PerfModel::new(SystemParams::default());
        let jc = JobConfig::from_index(idx);
        let ipc = perf.ipc(&profile, jc.core, jc.cache.ways(), contention);
        prop_assert!(ipc > 0.0);
        prop_assert!(ipc <= f64::from(jc.core.fe.lanes()) + 1e-9);
        prop_assert!(ipc <= f64::from(jc.core.be.lanes()) + 1e-9);
    }

    #[test]
    fn widest_config_dominates_every_other(
        profile in arb_profile(),
        idx in 0..NUM_JOB_CONFIGS,
    ) {
        let perf = PerfModel::new(SystemParams::default());
        let jc = JobConfig::from_index(idx);
        let this = perf.ipc(&profile, jc.core, jc.cache.ways(), 0.0);
        let widest = perf.ipc(&profile, CoreConfig::widest(), CacheAlloc::Four.ways(), 0.0);
        prop_assert!(widest >= this - 1e-9);
    }

    #[test]
    fn power_is_positive_and_increases_with_width(
        profile in arb_profile(),
        ipc in 0.0..6.0f64,
    ) {
        let power = PowerModel::new(SystemParams::default(), CoreKind::Reconfigurable);
        let narrow = power.core_watts(&profile, CoreConfig::narrowest(), ipc).get();
        let wide = power.core_watts(&profile, CoreConfig::widest(), ipc).get();
        prop_assert!(narrow > 0.0);
        prop_assert!(wide > narrow);
    }

    #[test]
    fn contention_never_helps(
        profile in arb_profile(),
        idx in 0..NUM_JOB_CONFIGS,
        c1 in 0.0..3.0f64,
        c2 in 0.0..3.0f64,
    ) {
        let perf = PerfModel::new(SystemParams::default());
        let jc = JobConfig::from_index(idx);
        let (lo, hi) = if c1 <= c2 { (c1, c2) } else { (c2, c1) };
        let ipc_lo = perf.ipc(&profile, jc.core, jc.cache.ways(), lo);
        let ipc_hi = perf.ipc(&profile, jc.core, jc.cache.ways(), hi);
        prop_assert!(ipc_hi <= ipc_lo + 1e-12);
    }

    #[test]
    fn queue_p99_exceeds_median_and_grows_with_load(
        servers in 1usize..32,
        mu in 0.1..5.0f64,
        rho1 in 0.05..0.9f64,
        rho2 in 0.05..0.9f64,
    ) {
        let (lo, hi) = if rho1 <= rho2 { (rho1, rho2) } else { (rho2, rho1) };
        let k = servers as f64;
        let q_lo = MmcQueue::new(servers, mu, lo * k * mu);
        let q_hi = MmcQueue::new(servers, mu, hi * k * mu);
        prop_assert!(q_hi.p99_ms().get() >= q_lo.p99_ms().get() - 1e-9);
        prop_assert!(q_lo.p99_ms().get() >= q_lo.response_quantile(0.5).get());
    }

    #[test]
    fn frame_power_and_instructions_are_consistent(
        profile in arb_profile(),
        idx in 0..NUM_JOB_CONFIGS,
        ms in 0.5..100.0f64,
    ) {
        let chip = Chip::new(SystemParams::default(), CoreKind::Reconfigurable);
        let jc = JobConfig::from_index(idx);
        let cores = vec![simulator::CoreState::Active {
            job: simulator::JobId(0),
            config: jc.core,
        }];
        let partition: simulator::LlcPartition =
            [(simulator::JobId(0), jc.cache)].into_iter().collect();
        let r = chip.simulate_frame(&cores, &[profile], &partition, ms);
        prop_assert!(r.chip_watts.get() > 0.0);
        prop_assert!(r.total_instructions() > 0.0);
        // Instructions scale linearly with duration.
        let r2 = chip.simulate_frame(&cores, &[profile], &partition, ms * 2.0);
        let ratio = r2.total_instructions() / r.total_instructions();
        prop_assert!((ratio - 2.0).abs() < 1e-6);
    }

    #[test]
    fn completion_preserves_observations_and_stays_finite(
        seed_vals in proptest::collection::vec(0.5..10.0f64, 24),
    ) {
        // 4 dense rows, 2 sparse rows over 4 columns.
        let mut m = RatingMatrix::new(6, 4);
        for (i, v) in seed_vals.iter().take(16).enumerate() {
            m.set(i / 4, i % 4, *v);
        }
        m.set(4, 0, seed_vals[16]);
        m.set(4, 3, seed_vals[17]);
        m.set(5, 1, seed_vals[18]);
        let out = Reconstructor::default().complete(&m, ValueTransform::Log);
        for (r, c, v) in m.observed() {
            prop_assert_eq!(out.get(r, c), v);
        }
        for r in 0..6 {
            for c in 0..4 {
                prop_assert!(out.get(r, c).is_finite());
                prop_assert!(out.get(r, c) > 0.0);
            }
        }
    }

    #[test]
    fn dds_results_are_always_in_bounds(
        dims in 1usize..20,
        choices in 1usize..200,
        seed in 0u64..1000,
    ) {
        let space = dds::SearchSpace::new(dims, choices);
        let objective = move |x: &[usize]| -(x.iter().sum::<usize>() as f64);
        let params = dds::serial::DdsParams {
            max_iters: 30,
            initial_points: 5,
            seed,
            ..Default::default()
        };
        let result = dds::serial::search(&space, &objective, &params);
        prop_assert!(space.contains(&result.best_point));
    }

    #[test]
    fn reflection_maps_any_value_into_range(
        choices in 1usize..500,
        value in -1e4..1e4f64,
    ) {
        let space = dds::SearchSpace::new(1, choices);
        prop_assert!(space.reflect(value) < choices);
    }
}
