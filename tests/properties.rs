//! Property-based tests over the core data structures and invariants,
//! spanning the simulator, queueing, search, and inference crates.
//!
//! The harness is a deterministic seeded-input loop (crates.io — and hence
//! `proptest` — is unavailable in the build container): each property runs
//! against `CASES` pseudo-random inputs from a fixed seed, so failures
//! reproduce exactly.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use recsys::{RatingMatrix, Reconstructor, ValueTransform};
use simulator::power::CoreKind;
use simulator::{
    AppProfile, CacheAlloc, Chip, CoreConfig, JobConfig, PerfModel, PowerModel, SystemParams,
    NUM_JOB_CONFIGS,
};
use workloads::queueing::MmcQueue;

/// Cases per property; inputs are drawn from a per-property fixed seed.
const CASES: usize = 128;

fn rng_for(property: &str) -> StdRng {
    // Stable per-property stream: hash the name into the master seed.
    let tag = property
        .bytes()
        .fold(0u64, |h, b| h.wrapping_mul(31).wrapping_add(b as u64));
    StdRng::seed_from_u64(0xC0FFEE ^ tag)
}

/// A valid application profile spanning the calibrated space.
fn arb_profile(rng: &mut StdRng) -> AppProfile {
    AppProfile {
        ilp: rng.random_range(0.5..5.5),
        fe_sensitivity: rng.random_range(0.0..1.0),
        be_sensitivity: rng.random_range(0.0..1.0),
        ls_sensitivity: rng.random_range(0.0..1.0),
        mem_fraction: rng.random_range(0.05..0.6),
        l1_miss_rate: rng.random_range(0.005..0.5),
        llc_miss_floor: rng.random_range(0.0..0.9),
        llc_working_set_ways: rng.random_range(0.2..12.0),
        mlp: rng.random_range(1.0..9.0),
        activity: rng.random_range(0.4..1.4),
    }
}

#[test]
fn job_config_index_roundtrips() {
    for idx in 0..NUM_JOB_CONFIGS {
        let jc = JobConfig::from_index(idx);
        assert_eq!(jc.index(), idx);
    }
}

#[test]
fn generated_profiles_validate() {
    let mut rng = rng_for("generated_profiles_validate");
    for _ in 0..CASES {
        let profile = arb_profile(&mut rng);
        assert!(
            profile.validate().is_ok(),
            "profile failed validation: {profile:?}"
        );
    }
}

#[test]
fn ipc_is_positive_and_within_structural_caps() {
    let mut rng = rng_for("ipc_is_positive_and_within_structural_caps");
    let perf = PerfModel::new(SystemParams::default());
    for _ in 0..CASES {
        let profile = arb_profile(&mut rng);
        let jc = JobConfig::from_index(rng.random_range(0..NUM_JOB_CONFIGS));
        let contention = rng.random_range(0.0..6.0);
        let ipc = perf.ipc(&profile, jc.core, jc.cache.ways(), contention);
        assert!(ipc > 0.0);
        assert!(ipc <= f64::from(jc.core.fe.lanes()) + 1e-9);
        assert!(ipc <= f64::from(jc.core.be.lanes()) + 1e-9);
    }
}

#[test]
fn widest_config_dominates_every_other() {
    let mut rng = rng_for("widest_config_dominates_every_other");
    let perf = PerfModel::new(SystemParams::default());
    for _ in 0..CASES {
        let profile = arb_profile(&mut rng);
        let jc = JobConfig::from_index(rng.random_range(0..NUM_JOB_CONFIGS));
        let this = perf.ipc(&profile, jc.core, jc.cache.ways(), 0.0);
        let widest = perf.ipc(&profile, CoreConfig::widest(), CacheAlloc::Four.ways(), 0.0);
        assert!(widest >= this - 1e-9, "widest {widest} < {this} at {jc:?}");
    }
}

#[test]
fn power_is_positive_and_increases_with_width() {
    let mut rng = rng_for("power_is_positive_and_increases_with_width");
    let power = PowerModel::new(SystemParams::default(), CoreKind::Reconfigurable);
    for _ in 0..CASES {
        let profile = arb_profile(&mut rng);
        let ipc = rng.random_range(0.0..6.0);
        let narrow = power
            .core_watts(&profile, CoreConfig::narrowest(), ipc)
            .get();
        let wide = power.core_watts(&profile, CoreConfig::widest(), ipc).get();
        assert!(narrow > 0.0);
        assert!(wide > narrow);
    }
}

#[test]
fn contention_never_helps() {
    let mut rng = rng_for("contention_never_helps");
    let perf = PerfModel::new(SystemParams::default());
    for _ in 0..CASES {
        let profile = arb_profile(&mut rng);
        let jc = JobConfig::from_index(rng.random_range(0..NUM_JOB_CONFIGS));
        let (c1, c2) = (rng.random_range(0.0..3.0), rng.random_range(0.0..3.0));
        let (lo, hi) = if c1 <= c2 { (c1, c2) } else { (c2, c1) };
        let ipc_lo = perf.ipc(&profile, jc.core, jc.cache.ways(), lo);
        let ipc_hi = perf.ipc(&profile, jc.core, jc.cache.ways(), hi);
        assert!(ipc_hi <= ipc_lo + 1e-12);
    }
}

#[test]
fn queue_p99_exceeds_median_and_grows_with_load() {
    let mut rng = rng_for("queue_p99_exceeds_median_and_grows_with_load");
    for _ in 0..CASES {
        let servers = rng.random_range(1..32);
        let mu = rng.random_range(0.1..5.0);
        let (rho1, rho2) = (rng.random_range(0.05..0.9), rng.random_range(0.05..0.9));
        let (lo, hi) = if rho1 <= rho2 {
            (rho1, rho2)
        } else {
            (rho2, rho1)
        };
        let k = servers as f64;
        let q_lo = MmcQueue::new(servers, mu, lo * k * mu);
        let q_hi = MmcQueue::new(servers, mu, hi * k * mu);
        assert!(q_hi.p99_ms().get() >= q_lo.p99_ms().get() - 1e-9);
        assert!(q_lo.p99_ms().get() >= q_lo.response_quantile(0.5).get());
    }
}

#[test]
fn frame_power_and_instructions_are_consistent() {
    let mut rng = rng_for("frame_power_and_instructions_are_consistent");
    let chip = Chip::new(SystemParams::default(), CoreKind::Reconfigurable);
    // Frame simulation is the hot path; a reduced case count keeps the test
    // under a second without losing input diversity.
    for _ in 0..CASES / 4 {
        let profile = arb_profile(&mut rng);
        let jc = JobConfig::from_index(rng.random_range(0..NUM_JOB_CONFIGS));
        let ms = rng.random_range(0.5..100.0);
        let cores = vec![simulator::CoreState::Active {
            job: simulator::JobId(0),
            config: jc.core,
        }];
        let partition: simulator::LlcPartition =
            [(simulator::JobId(0), jc.cache)].into_iter().collect();
        let r = chip.simulate_frame(&cores, &[profile], &partition, ms);
        assert!(r.chip_watts.get() > 0.0);
        assert!(r.total_instructions() > 0.0);
        // Instructions scale linearly with duration.
        let r2 = chip.simulate_frame(&cores, &[profile], &partition, ms * 2.0);
        let ratio = r2.total_instructions() / r.total_instructions();
        assert!((ratio - 2.0).abs() < 1e-6);
    }
}

#[test]
fn completion_preserves_observations_and_stays_finite() {
    let mut rng = rng_for("completion_preserves_observations_and_stays_finite");
    for _ in 0..CASES / 8 {
        let seed_vals: Vec<f64> = (0..19).map(|_| rng.random_range(0.5..10.0)).collect();
        // 4 dense rows, 2 sparse rows over 4 columns.
        let mut m = RatingMatrix::new(6, 4);
        for (i, v) in seed_vals.iter().take(16).enumerate() {
            m.set(i / 4, i % 4, *v);
        }
        m.set(4, 0, seed_vals[16]);
        m.set(4, 3, seed_vals[17]);
        m.set(5, 1, seed_vals[18]);
        let out = Reconstructor::default().complete(&m, ValueTransform::Log);
        for (r, c, v) in m.observed() {
            assert_eq!(out.get(r, c), v);
        }
        for r in 0..6 {
            for c in 0..4 {
                assert!(out.get(r, c).is_finite());
                assert!(out.get(r, c) > 0.0);
            }
        }
    }
}

#[test]
fn dds_results_are_always_in_bounds() {
    let mut rng = rng_for("dds_results_are_always_in_bounds");
    for _ in 0..CASES / 4 {
        let dims = rng.random_range(1..20);
        let choices = rng.random_range(1..200);
        let seed = rng.random_range(0..1000) as u64;
        let space = dds::SearchSpace::new(dims, choices);
        let objective = move |x: &[usize]| -(x.iter().sum::<usize>() as f64);
        let params = dds::serial::DdsParams {
            max_iters: 30,
            initial_points: 5,
            seed,
            ..Default::default()
        };
        let result = dds::serial::search(&space, &objective, &params);
        assert!(space.contains(&result.best_point));
    }
}

#[test]
fn reflection_maps_any_value_into_range() {
    let mut rng = rng_for("reflection_maps_any_value_into_range");
    for _ in 0..CASES {
        let choices = rng.random_range(1..500);
        let value = rng.random_range(-1e4..1e4);
        let space = dds::SearchSpace::new(1, choices);
        assert!(
            space.reflect(value) < choices,
            "reflect({value}) out of range"
        );
    }
}

/// Pinned-LC constraints reach DDS as frozen dimensions: no point the
/// search returns — or even evaluates — may move them, on either the
/// spawning or the pooled backend.
#[test]
fn parallel_dds_honors_frozen_dimensions_pooled_and_unpooled() {
    let mut rng = rng_for("parallel_dds_honors_frozen_dimensions_pooled_and_unpooled");
    let pool = util::WorkerPool::new(2);
    for _ in 0..CASES / 16 {
        let dims = rng.random_range(2..8);
        let choices = rng.random_range(2..30);
        let mut space = dds::SearchSpace::new(dims, choices);
        let mut frozen = Vec::new();
        for d in 0..dims {
            if rng.random_range(0.0..1.0) < 0.4 {
                let v = rng.random_range(0..choices);
                space.freeze(d, v);
                frozen.push((d, v));
            }
        }
        let objective = move |x: &[usize]| x.iter().map(|&c| (c as f64).sin()).sum::<f64>();
        let params = dds::ParallelDdsParams {
            max_iters: 10,
            initial_points: 4,
            seed: rng.random_range(0..1000) as u64,
            record_explored: true,
            ..Default::default()
        };
        for pool in [None, Some(&pool)] {
            let result = dds::parallel_search_in(pool, &space, &objective, &params);
            assert!(space.contains(&result.best_point));
            for (point, _) in &result.explored {
                assert!(space.contains(point), "explored point escaped the space");
                for &(d, v) in &frozen {
                    assert_eq!(point[d], v, "frozen dimension {d} moved");
                }
            }
        }
    }
}

/// With an overwhelming penalty weight, DDS must never *prefer* an
/// infeasible plan: the returned point satisfies the power and way-capacity
/// constraints unless no evaluated point was feasible at all.
#[test]
fn overwhelming_penalty_never_prefers_an_infeasible_plan() {
    let mut rng = rng_for("overwhelming_penalty_never_prefers_an_infeasible_plan");
    for _ in 0..CASES / 16 {
        let dims = rng.random_range(2..6);
        let choices = rng.random_range(3..12);
        let watts: Vec<Vec<f64>> = (0..dims)
            .map(|_| (0..choices).map(|_| rng.random_range(1.0..10.0)).collect())
            .collect();
        let ways: Vec<Vec<f64>> = (0..dims)
            .map(|_| (0..choices).map(|_| rng.random_range(0.5..8.0)).collect())
            .collect();
        // A cap somewhere between all-minimum and all-maximum demand, so
        // feasibility actually bites on most cases.
        let min_watts: f64 = watts
            .iter()
            .map(|row| row.iter().cloned().fold(f64::INFINITY, f64::min))
            .sum();
        let max_watts: f64 = watts
            .iter()
            .map(|row| row.iter().cloned().fold(0.0, f64::max))
            .sum();
        let max_power = rng.random_range(min_watts..max_watts.max(min_watts + 1e-9));
        let max_ways = rng.random_range(2.0..(8.0 * dims as f64));
        let watts_t = &watts;
        let ways_t = &ways;
        let objective = dds::SoftPenalty {
            benefit: |x: &[usize]| {
                x.iter()
                    .enumerate()
                    .map(|(d, &c)| (c as f64 + 1.0) / (d as f64 + 1.0))
                    .sum::<f64>()
            },
            power: |x: &[usize]| x.iter().enumerate().map(|(d, &c)| watts_t[d][c]).sum(),
            cache_ways: |x: &[usize]| x.iter().enumerate().map(|(d, &c)| ways_t[d][c]).sum(),
            max_power,
            max_ways,
            penalty_power: 1e6,
            penalty_cache: 1e6,
        };
        let space = dds::SearchSpace::new(dims, choices);
        let params = dds::ParallelDdsParams {
            max_iters: 12,
            initial_points: 6,
            seed: rng.random_range(0..1000) as u64,
            record_explored: true,
            ..Default::default()
        };
        let result = dds::parallel_search_in(None, &space, &objective, &params);
        let any_feasible = result
            .explored
            .iter()
            .any(|(point, _)| objective.is_feasible(point));
        assert!(
            objective.is_feasible(&result.best_point) || !any_feasible,
            "returned an infeasible plan while a feasible one was evaluated"
        );
    }
}

/// The evaluation cache must be numerically invisible: over a thousand
/// random candidates (drawn with repeats so hits occur), every cached score
/// is bit-identical to the uncached objective's.
#[test]
fn evaluation_cache_scores_are_bit_identical_to_uncached() {
    use dds::Objective;
    let mut rng = rng_for("evaluation_cache_scores_are_bit_identical_to_uncached");
    let dims = 6;
    let choices = 10;
    let objective = |x: &[usize]| {
        x.iter()
            .enumerate()
            .map(|(d, &c)| ((c * 31 + d * 7) as f64).sin() * (c as f64 + 0.5).ln())
            .sum::<f64>()
    };
    let cached = dds::CachedObjective::new(&objective);
    // A small pool of distinct points sampled 1000 times forces both cold
    // misses and hot hits through the comparison.
    let pool: Vec<Vec<usize>> = (0..100)
        .map(|_| (0..dims).map(|_| rng.random_range(0..choices)).collect())
        .collect();
    for _ in 0..1000 {
        let point = &pool[rng.random_range(0..pool.len())];
        assert_eq!(
            cached.evaluate(point).to_bits(),
            objective.evaluate(point).to_bits(),
            "cached score diverged at {point:?}"
        );
    }
    assert!(cached.hits() >= 900, "repeated candidates must hit");
}

/// Warm-started SGD may never train materially worse than a cold solve on
/// the same matrix: across random incremental-update workloads its RMSE
/// stays within epsilon of the full-schedule cold fit.
#[test]
fn warm_sgd_rmse_stays_within_epsilon_of_cold() {
    let mut rng = rng_for("warm_sgd_rmse_stays_within_epsilon_of_cold");
    for case in 0..CASES / 16 {
        let rows = rng.random_range(8..16);
        let cols = rng.random_range(10..24);
        let dense_rows = rows - 2;
        let mut m = RatingMatrix::new(rows, cols);
        for r in 0..rows {
            for c in 0..cols {
                let v = 1.0 + (r as f64 * 0.3) + (c as f64 * 0.2) + rng.random_range(0.0..0.1);
                // Sparse rows start with a handful of observations.
                if r < dense_rows || (r * 13 + c * 5) % 7 == 0 {
                    m.set(r, c, v);
                }
            }
        }
        let config = recsys::SgdConfig {
            seed: case as u64,
            ..recsys::SgdConfig::default()
        };
        let prior = recsys::sgd::fit(&m, &config);
        // Next quantum: a few more samples land on the sparse rows.
        for r in dense_rows..rows {
            let c = (r * 3 + case) % cols;
            m.set(r, c, 1.0 + (r as f64 * 0.3) + (c as f64 * 0.2));
        }
        let warm_cfg = recsys::WarmStartConfig::default();
        let warm = recsys::sgd::fit_warm(&m, &config, &warm_cfg, &prior).expect("shapes match");
        let cold = recsys::sgd::fit(&m, &config);
        assert!(warm.epochs <= warm_cfg.max_epochs);
        assert!(
            warm.train_rmse <= cold.train_rmse + 0.01,
            "case {case}: warm RMSE {} vs cold RMSE {}",
            warm.train_rmse,
            cold.train_rmse
        );
    }
}
