//! The sweep determinism contract: one scenario, one byte sequence.
//!
//! `summary.json` must be bit-identical (1) at any worker-pool width,
//! because results land in pre-assigned slots regardless of scheduling;
//! (2) for any on-disk seed ordering, because seeds are canonicalized
//! (sorted, deduplicated) at load time; and (3) between parallel and
//! serial execution, which is the width-1 case of (1). The fixture is
//! the same `scenarios/smoke.json` the golden test pins, so this file
//! and `tests/sweep.rs` together say: every width and every ordering
//! reproduces the golden bytes.

use sweep::{load_spec, run_sweep, summary_json};
use util::WorkerPool;

fn smoke_text() -> String {
    let path = format!("{}/scenarios/smoke.json", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(path).expect("fixture exists")
}

#[test]
fn summary_bytes_are_identical_at_widths_1_2_and_8() {
    let spec = load_spec(&smoke_text()).expect("fixture loads");
    let mut summaries = Vec::new();
    for width in [1usize, 2, 8] {
        let pool = WorkerPool::new(width);
        let outcome = run_sweep(&spec, &pool);
        summaries.push(summary_json(&spec, &outcome).to_string());
    }
    assert_eq!(
        summaries[0], summaries[1],
        "serial (width 1) and width-2 sweeps must agree byte-for-byte"
    );
    assert_eq!(
        summaries[1], summaries[2],
        "width-2 and width-8 sweeps must agree byte-for-byte"
    );
}

#[test]
fn shuffled_and_duplicated_seed_orderings_load_to_the_same_sweep() {
    let text = smoke_text();
    assert!(
        text.contains("[7, 11, 23]"),
        "test assumes the smoke fixture's seed list"
    );
    let shuffled = text.replace("[7, 11, 23]", "[23, 7, 11, 7, 23]");
    let a = load_spec(&text).expect("fixture loads");
    let b = load_spec(&shuffled).expect("shuffled fixture loads");
    assert_eq!(a.seeds, b.seeds, "seeds canonicalize at load time");

    let pool = WorkerPool::new(2);
    let sa = summary_json(&a, &run_sweep(&a, &pool)).to_string();
    let sb = summary_json(&b, &run_sweep(&b, &pool)).to_string();
    assert_eq!(
        sa, sb,
        "seed ordering on disk must not change a single summary byte"
    );
}
