//! Integration tests for fault injection and the degradation ladder:
//! deterministic replay under a seeded [`FaultPlan`], zero panics through a
//! mid-run reconstruction blackout, bounded QoS damage, and circuit-breaker
//! open/recover cycles.
//!
//! Records are compared through extracted bit-level tuples rather than
//! `PartialEq` on whole records: stage telemetry carries wall-clock floats
//! that legitimately differ between runs, and corrupted samples may carry
//! NaNs (`NaN != NaN`).

use cuttlesys::faults::FaultPlan;
use cuttlesys::testbed::run_scenario;
use cuttlesys::types::{RunRecord, Scenario};
use cuttlesys::CuttleSysManager;

/// Everything decision-relevant about a run, as exact bits. Two runs with
/// the same scenario and fault plan must produce identical fingerprints.
fn fingerprint(record: &RunRecord) -> Vec<String> {
    record
        .slices
        .iter()
        .map(|s| {
            let lc: Vec<String> =
                s.lc.iter()
                    .map(|l| {
                        format!(
                            "{}:{}c:{:?}:tail={:016x}",
                            l.service,
                            l.cores,
                            l.config,
                            l.tail_ms.to_bits()
                        )
                    })
                    .collect();
            format!(
                "t={:016x} chip={:016x} batch={:016x} lc=[{}] cfgs={:?} fault={:?} deg={:?}",
                s.t_s.to_bits(),
                s.chip_watts.to_bits(),
                s.batch_instructions.to_bits(),
                lc.join(","),
                s.batch_configs,
                s.fault,
                s.telemetry.as_ref().map(|t| &t.degradation),
            )
        })
        .collect()
}

fn run(scenario: &Scenario) -> RunRecord {
    let mut manager = CuttleSysManager::for_scenario(scenario);
    run_scenario(scenario, &mut manager)
}

#[test]
fn same_fault_seed_replays_bit_identically() {
    let scenario = Scenario::paper_default().with_faults(FaultPlan::lossy_sensors(7));
    let a = run(&scenario);
    let b = run(&scenario);
    assert_eq!(fingerprint(&a), fingerprint(&b));
    // The plan must actually bite — otherwise this test proves nothing.
    assert!(a.injected_fault_slices() > 0, "no faults were injected");
    let summary = a.stage_summary().expect("cuttlesys reports telemetry");
    assert!(
        summary.samples_rejected > 0,
        "corrupted samples left no telemetry trace"
    );
}

#[test]
fn different_fault_seeds_diverge() {
    let a = run(&Scenario::paper_default().with_faults(FaultPlan::lossy_sensors(7)));
    let b = run(&Scenario::paper_default().with_faults(FaultPlan::lossy_sensors(8)));
    assert_ne!(
        fingerprint(&a),
        fingerprint(&b),
        "different fault seeds must perturb the run differently"
    );
}

#[test]
fn disabled_faults_are_a_bitwise_noop() {
    let clean = run(&Scenario::paper_default());
    let explicit = run(&Scenario::paper_default().with_faults(FaultPlan::none()));
    assert_eq!(fingerprint(&clean), fingerprint(&explicit));
    assert!(clean.slices.iter().all(|s| s.fault.is_none()));
    assert_eq!(clean.degraded_quanta(), 0);
}

#[test]
fn lossy_sensors_stay_within_twice_the_clean_tail() {
    let clean = run(&Scenario::paper_default());
    let lossy = run(&Scenario::paper_default().with_faults(FaultPlan::lossy_sensors(7)));
    assert!(
        lossy.worst_tail_ratio() <= 2.0 * clean.worst_tail_ratio().max(1e-9),
        "lossy-sensors worst tail {:.3} vs clean {:.3}",
        lossy.worst_tail_ratio(),
        clean.worst_tail_ratio()
    );
}

#[test]
fn mid_run_reconstruction_blackout_degrades_gracefully() {
    let blackout = FaultPlan {
        reconstruct_diverge: 1.0,
        ..FaultPlan::none()
    }
    .with_window(3, 6);
    let mut scenario = Scenario::paper_default().with_faults(blackout);
    scenario.duration_slices = 12;
    let mut clean_scenario = scenario.clone();
    clean_scenario.faults = FaultPlan::none();

    let clean = run(&clean_scenario);
    let faulty = run(&scenario); // must not panic

    // Every quantum in the window leaves a degradation trace: the sanity
    // gate rejects the diverged reconstruction and the ladder falls back.
    for slice in 3..6 {
        let tel = faulty.slices[slice]
            .telemetry
            .as_ref()
            .expect("cuttlesys always reports telemetry");
        assert!(
            tel.degradation.degraded(),
            "slice {slice} inside the blackout window shows no degradation"
        );
    }
    // Outside the window the run is healthy again.
    let tail_degraded = faulty.slices[8..]
        .iter()
        .filter(|s| {
            s.telemetry
                .as_ref()
                .is_some_and(|t| t.degradation.degraded())
        })
        .count();
    assert_eq!(tail_degraded, 0, "degradation persisted past the window");
    // Bounded damage: at worst the windowed quanta themselves violate QoS.
    assert!(
        faulty.qos_violations() <= clean.qos_violations() + 4,
        "blackout cost {} extra QoS violations",
        faulty.qos_violations() - clean.qos_violations()
    );
}

#[test]
fn persistent_divergence_opens_the_breaker_and_recovery_closes_it() {
    // Divergence from the very first quantum: no last-good predictions
    // exist, so every decision fails outright until the window closes.
    let plan = FaultPlan {
        reconstruct_diverge: 1.0,
        ..FaultPlan::none()
    }
    .with_window(0, 8);
    let mut scenario = Scenario::paper_default().with_faults(plan);
    scenario.duration_slices = 24;

    let mut manager = CuttleSysManager::for_scenario(&scenario);
    let record = run_scenario(&scenario, &mut manager);

    let (opens, closes) = manager.breaker_cycles();
    assert!(opens >= 1, "breaker never opened under persistent failure");
    assert!(closes >= 1, "breaker never closed after the faults cleared");
    assert!(!manager.breaker_open(), "breaker still open at run end");

    let safe = record.safe_mode_quanta();
    assert!(safe > 0, "persistent failure never reached safe mode");
    assert!(
        safe < record.slices.len(),
        "safe mode must not consume the whole run"
    );
    // Once recovered, decisions are clean again for the rest of the run.
    let last = record
        .slices
        .last()
        .and_then(|s| s.telemetry.as_ref())
        .expect("telemetry on final slice");
    assert!(!last.degradation.degraded());
}

#[test]
fn flaky_reconfig_leaves_cores_stuck_but_run_completes() {
    let scenario = Scenario::paper_default().with_faults(FaultPlan::flaky_reconfig(11));
    let record = run(&scenario);
    let stuck = record
        .slices
        .iter()
        .filter(|s| s.fault.is_some_and(|f| f.reconfig_failed))
        .count();
    assert!(
        stuck > 0,
        "flaky-reconfig plan never failed a reconfiguration"
    );
    // Ground truth still accounts every slice. Cores stuck at a wide
    // configuration — or plans replayed from stale predictions after a
    // diverged reconstruction — can legitimately overshoot the cap, but
    // only on slices the fault plan actually touched.
    assert_eq!(record.slices.len(), scenario.duration_slices);
    let touched = record
        .slices
        .iter()
        .filter(|s| {
            s.fault.is_some_and(|f| f.any())
                || s.telemetry
                    .as_ref()
                    .is_some_and(|t| t.degradation.degraded())
        })
        .count();
    assert!(
        record.power_violations() <= touched,
        "{} power violations from {} fault-touched slices",
        record.power_violations(),
        touched
    );
}
